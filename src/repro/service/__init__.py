"""Long-running experiment service: async job queue + worker fleet.

The service layer turns one-shot experiment execution into a
submit/poll workflow:

* :class:`~repro.service.daemon.ExperimentService` — the daemon: a
  unix-socket front end over a crash-consistent JSONL job journal
  (:class:`~repro.service.queue.JobQueue`), drained by a supervised
  worker fleet into ordinary (optionally sharded) campaign stores.
* :class:`~repro.service.client.ServiceClient` — submit experiments or
  campaigns, poll status, stream progress heartbeats, cancel queued
  jobs, fetch finished results (no live daemon needed for reads).
* :class:`~repro.service.backend.ServiceBackend` — the ``"service"``
  entry in :data:`~repro.api.session.BACKENDS`; lets
  ``Session.run(backend="service")`` route transparently through a
  daemon.

CLI verbs: ``repro serve``, ``repro submit``, ``repro jobs``,
``repro cancel``, ``repro fetch``.  See ``docs/service.md``.
"""

from .backend import ServiceBackend
from .client import ServiceClient
from .daemon import (
    ENV_SERVICE_DIR,
    ExperimentService,
    campaign_job_id,
    campaign_job_payload,
    default_service_root,
)
from .queue import (
    JOB_KINDS,
    JOB_STATUSES,
    TERMINAL_STATUSES,
    JobQueue,
    JobRecord,
)

__all__ = [
    "ENV_SERVICE_DIR",
    "JOB_KINDS",
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "ExperimentService",
    "JobQueue",
    "JobRecord",
    "ServiceBackend",
    "ServiceClient",
    "campaign_job_id",
    "campaign_job_payload",
    "default_service_root",
]
