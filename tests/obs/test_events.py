"""Schema contract: constructors and the validator agree, bytes round-trip.

The event schema is the one format every observability artefact speaks
(run traces, the cache event log's counters, BENCH benchmark records),
so the writer-side constructors and the reader-side
:func:`~repro.obs.events.validate_event` must stay in lock-step — and a
payload must survive a JSON round-trip unchanged.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.errors import ObsError
from repro.obs import load_events, load_trace, render_report
from repro.obs.events import (
    SCHEMA_VERSION,
    histogram_summary,
    metric_event,
    run_event,
    span_event,
    validate_event,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _sample_events() -> list[dict]:
    return [
        run_event("run-1", "demo", t=100.0, pid=7, attrs={"kind": "test"}),
        span_event(
            "run-1", span="7.1", parent=None, name="outer",
            t=100.0, dur_s=0.5, pid=7, attrs={"step": 1},
        ),
        span_event(
            "run-1", span="7.2", parent="7.1", name="inner",
            t=100.1, dur_s=0.2, pid=7, status="failed",
            error="ValueError: boom",
        ),
        metric_event("run-1", "items", "counter", 3.0, t=100.5, pid=7),
        metric_event("run-1", "rate", "gauge", 12.5, t=100.5, pid=7),
        metric_event(
            "run-1", "latency_s", "histogram",
            histogram_summary(4, 0.8, 0.1, 0.3), t=100.5, pid=7,
        ),
    ]


def test_constructors_satisfy_validator():
    for event in _sample_events():
        assert validate_event(event) == [], event


def test_events_round_trip_json():
    for event in _sample_events():
        assert json.loads(json.dumps(event)) == event


def test_run_event_carries_schema_version():
    assert _sample_events()[0]["v"] == SCHEMA_VERSION


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda e: e.pop("trace"), "trace"),
        (lambda e: e.update(event="bogus"), "unknown event kind"),
        (lambda e: e.update(t="yesterday"), "'t'"),
        (lambda e: e.update(pid="seven"), "pid"),
    ],
)
def test_validator_rejects_common_corruption(mutate, fragment):
    event = _sample_events()[1]
    mutate(event)
    problems = validate_event(event)
    assert problems and any(fragment in p for p in problems)


def test_validator_rejects_kind_specific_corruption():
    run = _sample_events()[0]
    run["v"] = SCHEMA_VERSION + 1
    assert validate_event(run)

    span = _sample_events()[1]
    span["status"] = "maybe"
    assert validate_event(span)

    hist = _sample_events()[5]
    hist["value"] = {"count": 4}  # missing sum/min/max
    assert validate_event(hist)

    counter = _sample_events()[3]
    counter["value"] = "three"
    assert validate_event(counter)

    assert validate_event("not an object") == ["event is not a JSON object"]


def test_span_cpu_s_is_optional_but_must_be_numeric():
    # Pre-1.5 span events (no cpu_s at all) stay valid forever.
    bare = _sample_events()[1]
    assert "cpu_s" not in bare
    assert validate_event(bare) == []

    timed = span_event(
        "run-1", span="7.3", parent=None, name="timed",
        t=100.0, dur_s=0.5, pid=7, cpu_s=0.25,
    )
    assert timed["cpu_s"] == 0.25
    assert validate_event(timed) == []

    timed["cpu_s"] = "fast"
    problems = validate_event(timed)
    assert problems and any("cpu_s" in p for p in problems)


def test_load_trace_round_trips_and_rejects_malformed(tmp_path):
    good = tmp_path / "good.jsonl"
    events = _sample_events()
    good.write_text(
        "".join(json.dumps(e) + "\n" for e in events), encoding="utf-8"
    )
    assert load_trace(good) == events

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"event": "span"}\n', encoding="utf-8")
    with pytest.raises(ObsError, match="bad.jsonl:1"):
        load_trace(bad)

    garbled = tmp_path / "garbled.jsonl"
    garbled.write_text("{not json\n", encoding="utf-8")
    with pytest.raises(ObsError, match="not valid JSON"):
        load_trace(garbled)


def test_render_report_covers_all_sections():
    text = render_report(_sample_events())
    assert "run-1" in text
    assert "outer" in text and "inner" in text
    assert "items" in text and "rate" in text and "latency_s" in text
    assert "Failures" in text and "ValueError: boom" in text


def test_render_report_resilience_section():
    events = _sample_events() + [
        metric_event(
            "run-1", "work.retries", "counter", 3.0, t=100.6, pid=7
        ),
        metric_event(
            "run-1", "worker.restarts", "counter", 1.0, t=100.6, pid=7
        ),
    ]
    text = render_report(events)
    assert "Resilience (supervised execution):" in text
    assert "retries" in text and "restarts" in text
    # Resilience counters render in their own section only, with
    # human labels — the raw names stay out of the generic Metrics list.
    assert "work.retries" not in text
    assert "worker.restarts" not in text


def test_render_report_omits_resilience_section_when_clean():
    # No counters at all, and all-zero counters, both stay silent: an
    # undisturbed run's report is byte-stable across the PR.
    assert "Resilience" not in render_report(_sample_events())
    zeroed = _sample_events() + [
        metric_event(
            "run-1", "work.retries", "counter", 0.0, t=100.6, pid=7
        ),
    ]
    assert "Resilience" not in render_report(zeroed)


def test_bench_artefacts_speak_the_same_schema(tmp_path, monkeypatch):
    """write_bench output loads through the trace reader unchanged."""
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import _harness
    finally:
        sys.path.pop(0)
    monkeypatch.setattr(_harness, "RESULTS_DIR", tmp_path)
    path = _harness.write_bench(
        "schema_roundtrip",
        metrics={"speedup": 3.0, "elapsed_s": 0.5},
        gate=("speedup",),
        meta={"note": "round-trip"},
    )
    events = load_events(path)
    assert [e["event"] for e in events] == ["run", "metric", "metric"]
    assert all(validate_event(e) == [] for e in events)
    # Gauges carry the host fingerprint as attrs, so a measurement
    # stays interpretable after it is separated from the artefact's
    # env block; the run marker's attrs stay the caller's meta.
    import platform as _platform

    from repro import __version__

    assert events[0]["attrs"] == {"note": "round-trip"}
    for gauge in events[1:]:
        assert gauge["attrs"]["python"] == _platform.python_version()
        assert gauge["attrs"]["repro"] == __version__
        assert gauge["attrs"]["cpus"] >= 1
        assert "platform" in gauge["attrs"]
    # The regression gate reconstructs the legacy metrics dict from the
    # same events the report renderer reads.
    benches = _harness.load_benches(tmp_path)
    assert benches["schema_roundtrip"]["metrics"] == {
        "speedup": 3.0, "elapsed_s": 0.5,
    }
    assert "speedup" in render_report(events)
