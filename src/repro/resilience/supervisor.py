"""The supervised worker pool behind both fan-out seams.

``multiprocessing.Pool`` hangs forever if a worker is OOM-killed while
holding a task, and offers no per-task deadline.  :class:`SupervisedPool`
replaces it at the campaign-runner and cohort-fleet seams with explicit
supervision:

* **claim/done protocol** — a worker announces each task it picks up
  before evaluating it, so the owner always knows which unit of work a
  dead pid was holding;
* **dead-worker detection** — pid liveness is polled every tick; a dead
  worker's claimed task is requeued and a replacement process spawned
  (``worker.restarts``);
* **deadlines** — with ``RetryPolicy.timeout_s`` set, a task that
  overstays its claim gets its worker SIGKILLed and is requeued
  (``work.timeouts``);
* **bounded retry** — crash/timeout/transient faults requeue with
  exponential backoff and deterministic jitter (``work.retries``), up
  to ``max_attempts``;
* **quarantine** — work that exhausts its attempts comes back as a
  ``quarantined`` outcome carrying the full attempt history
  (``work.quarantined``) — it never hangs the drain;
* **graceful cancellation** — SIGINT/SIGTERM (or an injected
  ``interrupt:N`` chaos clause) stops dispatch, drains results that
  already completed so the caller can persist them, and raises
  :class:`~repro.errors.RunInterrupted`.

Determinism: the pool never touches work keys, payloads, or seeds — a
retried unit re-runs the same pure function on the same payload, so its
result is bit-identical to a first-try result.  Evaluator-level
failures (a ``status == "failed"`` record) are *results*, not faults:
they complete normally and are not retried within a run, exactly as
before this layer existed.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import signal
import threading
import time
import traceback
from multiprocessing.connection import wait as _conn_wait
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from .. import obs
from ..errors import ResilienceError, RunInterrupted
from .chaos import active_chaos
from .retry import RetryPolicy

__all__ = ["SupervisedPool", "WorkOutcome", "retry_serial"]

#: How long shutdown waits for workers to exit before terminating them.
_JOIN_TIMEOUT_S = 1.0

#: How long a cancellation drains already-completed results.
_CANCEL_DRAIN_S = 0.25


@dataclass
class WorkOutcome:
    """What the pool hands back for one unit of work.

    Attributes:
        key: the unit's key (campaign point hash, ``patient-<i>``, ...).
        value: the worker function's return value, or ``None`` when the
            unit was quarantined.
        status: ``"completed"`` (the function returned — its value may
            itself describe an evaluation failure) or ``"quarantined"``
            (every attempt died on an infrastructure fault).
        attempts: attempts consumed (1 = clean first try).
        history: one entry per faulted attempt — ``{"attempt",
            "outcome" ("crash" | "timeout" | "error"), "error",
            "elapsed_s"}`` plus ``"traceback"`` when one was captured.
    """

    key: str
    value: Any
    status: str
    attempts: int = 1
    history: list[dict] = field(default_factory=list)

    @property
    def quarantined(self) -> bool:
        return self.status == "quarantined"


def _worker_main(
    fn: Callable[[Any], Any],
    initializer: Callable | None,
    initargs: tuple,
    tasks: Any,
    conn: Any,
) -> None:
    """Worker process body: claim, (maybe) suffer chaos, evaluate.

    Messages travel over this worker's own pipe, and ``Connection.send``
    writes in the calling thread — once it returns, the bytes are in
    the kernel and survive a SIGKILL.  (A ``multiprocessing.Queue``
    buffers puts in a feeder thread, so a killed worker could die with
    its claim unsent and the owner would never learn which unit it
    held.)  A private pipe also means a worker killed mid-write can
    only tear its own channel, never wedge a sibling's.
    """
    try:
        # The owner coordinates cancellation; a terminal Ctrl-C reaches
        # the whole process group, and workers dying to it would turn
        # one interrupt into a storm of crash-faults.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    if initializer is not None:
        initializer(*initargs)
    chaos = active_chaos()
    while True:
        task = tasks.get()
        if task is None:
            return
        key, payload, attempt = task
        try:
            # Claim before evaluating: if this process dies mid-task,
            # the owner knows exactly which unit it was holding.
            conn.send(("claim", key, attempt, os.getpid()))
            started = time.perf_counter()
            try:
                chaos.inject_worker(key, attempt)
                value = fn(payload)
                # Probe picklability here so an untransportable result
                # becomes an honest fault instead of tearing the pipe.
                pickle.dumps(value)
            except BaseException as exc:  # noqa: BLE001 - fault transport
                conn.send(
                    (
                        "error",
                        key,
                        attempt,
                        {
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": traceback.format_exc(limit=20),
                        },
                        time.perf_counter() - started,
                    )
                )
                continue
            conn.send(
                ("done", key, attempt, value, time.perf_counter() - started)
            )
        except OSError:  # pragma: no cover - owner vanished
            return


class SupervisedPool:
    """Crash-tolerant replacement for ``multiprocessing.Pool`` drains.

    Args:
        fn: module-level worker function, called as ``fn(payload)``;
            expected to capture its own failures (never raise).
        n_workers: worker processes (capped at the number of items).
        policy: retry/timeout/backoff policy (default:
            :meth:`RetryPolicy.from_env`).
        initializer / initargs: per-worker initialisation, exactly as
            ``multiprocessing.Pool`` takes them.
        name: label used in retry spans and error text.
        tick_s: supervision cadence — how often liveness and deadlines
            are checked while waiting for results.
        daemon: whether worker processes are daemonic (the default, as
            before this flag existed).  Pass ``False`` when units of
            work spawn *nested* pools — daemonic processes cannot have
            children, and the service fleet's jobs (whole experiments)
            fan out internally.
        on_claim: optional callback ``on_claim(key, pid)`` invoked when
            a worker announces it picked up a unit — the seam a job
            service uses to record queued -> running transitions (with
            the executing worker's pid) in its journal.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        n_workers: int,
        policy: RetryPolicy | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
        name: str = "work",
        tick_s: float = 0.05,
        daemon: bool = True,
        on_claim: Callable[[str, int], None] | None = None,
    ) -> None:
        if n_workers < 1:
            raise ResilienceError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        self.fn = fn
        self.n_workers = n_workers
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        self.initializer = initializer
        self.initargs = initargs
        self.name = name
        self.tick_s = tick_s
        self.daemon = daemon
        self.on_claim = on_claim

    def run(
        self, items: Sequence[tuple[str, Any]] | Iterable[tuple[str, Any]]
    ) -> Iterator[list[WorkOutcome]]:
        """Supervise ``items`` to completion, yielding outcome batches.

        Each yielded batch is every unit that finished since the last
        tick — callers persist a batch per tick (one locked store
        append), exactly the cadence the ``apply_async`` drain had.
        Cancellation (signal or injected) raises
        :class:`RunInterrupted` *after* the final batch of completed
        work has been yielded, so everything done is absorbed first.
        """
        items = list(items)
        if len({key for key, _ in items}) != len(items):
            raise ResilienceError(
                f"duplicate work keys passed to supervised pool {self.name!r}"
            )
        if not items:
            return
        yield from self._supervise(
            items, min(self.n_workers, len(items)), feed=None, stop=None
        )

    def serve(
        self,
        feed: Callable[[], Sequence[tuple[str, Any]]],
        stop: Callable[[], bool] | None = None,
    ) -> Iterator[list[WorkOutcome]]:
        """Continuously supervise work arriving over time.

        The streaming mode behind the experiment service's scheduler:
        ``feed()`` is polled every supervision tick for newly available
        ``(key, payload)`` units (return an empty sequence when there
        is nothing to hand out), and outcome batches are yielded with
        :meth:`run`'s exact cadence and retry/requeue/quarantine
        semantics.  A key already accepted in this serve (in flight or
        finished) is ignored — re-delivery by a stateless feed is safe.

        ``stop()`` is consulted once per tick: when it returns true the
        pool stops *feeding* but keeps supervising until everything in
        flight has completed — a graceful drain — then shuts the
        workers down and returns.  With ``stop=None`` the pool serves
        until cancelled.  Cancellation (SIGINT/SIGTERM or an injected
        interrupt) raises :class:`RunInterrupted` after yielding the
        final batch of completed work, exactly like :meth:`run` — the
        caller requeues whatever was still in flight.
        """
        yield from self._supervise([], self.n_workers, feed=feed, stop=stop)

    def _supervise(
        self,
        items: list[tuple[str, Any]],
        n_spawn: int,
        feed: Callable[[], Sequence[tuple[str, Any]]] | None,
        stop: Callable[[], bool] | None,
    ) -> Iterator[list[WorkOutcome]]:
        """Shared supervision core behind :meth:`run` and :meth:`serve`."""
        policy = self.policy
        chaos = active_chaos()
        ctx = multiprocessing.get_context()
        tasks: Any = ctx.Queue()
        workers: dict[int, Any] = {}
        conns: dict[int, Any] = {}

        payloads = {key: payload for key, payload in items}
        attempt_of = {key: 1 for key, _ in items}
        history: dict[str, list[dict]] = {key: [] for key, _ in items}
        claimed: dict[str, tuple[int, float]] = {}
        finished: set[str] = set()
        retry_heap: list[tuple[float, str]] = []
        outstanding = len(items)
        completed_total = 0
        stopping = False
        batch: list[WorkOutcome] = []

        def _admit(fresh: Sequence[tuple[str, Any]]) -> None:
            """Accept newly fed units (serve mode); known keys ignored."""
            nonlocal outstanding
            for key, payload in fresh:
                if key in payloads or key in finished:
                    continue
                payloads[key] = payload
                attempt_of[key] = 1
                history[key] = []
                outstanding += 1
                tasks.put((key, payload, 1))

        def _spawn() -> None:
            reader, writer = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    self.fn, self.initializer, self.initargs,
                    tasks, writer,
                ),
                daemon=self.daemon,
            )
            proc.start()
            # Drop the parent's copy of the write end so EOF on the
            # reader means exactly "this worker is gone".
            writer.close()
            workers[proc.pid] = proc
            conns[proc.pid] = reader

        def _fault(
            key: str,
            attempt: int,
            outcome: str,
            error: str,
            elapsed_s: float,
            tb: str | None = None,
        ) -> None:
            """One attempt died; retry with backoff or quarantine."""
            nonlocal outstanding
            entry = {
                "attempt": attempt,
                "outcome": outcome,
                "error": error,
                "elapsed_s": round(elapsed_s, 6),
            }
            if tb:
                entry["traceback"] = tb
            history[key].append(entry)
            if attempt >= policy.max_attempts:
                finished.add(key)
                outstanding -= 1
                obs.counter("work.quarantined")
                batch.append(
                    WorkOutcome(
                        key=key,
                        value=None,
                        status="quarantined",
                        attempts=attempt,
                        history=history[key],
                    )
                )
                return
            attempt_of[key] = attempt + 1
            obs.counter("work.retries")
            # A zero-duration marker span: retries show up in the trace
            # tree under the campaign/fleet span that owns this drain.
            with obs.span(
                "retry",
                work=key[:12],
                attempt=attempt + 1,
                cause=outcome,
                pool=self.name,
            ):
                pass
            due = time.monotonic() + policy.backoff_s(key, attempt + 1)
            heapq.heappush(retry_heap, (due, key))

        def _finish(key: str, attempt: int, value: Any) -> None:
            nonlocal outstanding
            finished.add(key)
            claimed.pop(key, None)
            outstanding -= 1
            batch.append(
                WorkOutcome(
                    key=key,
                    value=value,
                    status="completed",
                    attempts=attempt,
                    history=history[key],
                )
            )

        def _handle(msg: tuple) -> None:
            kind, key = msg[0], msg[1]
            if key in finished:
                return
            if kind == "claim":
                _, _, attempt, pid = msg
                if attempt == attempt_of[key]:
                    claimed[key] = (pid, time.monotonic())
                    if self.on_claim is not None:
                        self.on_claim(key, pid)
            elif kind == "done":
                # A completed result is accepted even if a raced retry
                # of the same key is pending — results are bit-identical
                # by construction, and first-done wins.
                _, _, attempt, value, _elapsed = msg
                _finish(key, attempt, value)
            elif kind == "error":
                _, _, attempt, data, elapsed_s = msg
                if attempt != attempt_of[key]:
                    return  # stale fault from a superseded attempt
                claimed.pop(key, None)
                _fault(
                    key, attempt, "error",
                    data["error"], elapsed_s, data.get("traceback"),
                )

        def _drain_conn(conn: Any) -> None:
            """Absorb every ready message; on EOF retire the channel."""
            while True:
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # The worker hung up (death closes its write end).
                    # Only the channel is retired here — requeueing what
                    # the pid still held is _check_workers' job.
                    for pid, open_conn in list(conns.items()):
                        if open_conn is conn:
                            del conns[pid]
                    conn.close()
                    return
                _handle(msg)
                if not conn.poll():
                    return

        def _check_workers() -> None:
            """Requeue work held by dead pids; respawn replacements."""
            now = time.monotonic()
            dead = [
                pid for pid, proc in workers.items() if not proc.is_alive()
            ]
            for pid in dead:
                workers.pop(pid).join(timeout=0)
                conn = conns.pop(pid, None)
                if conn is not None:
                    # Absorb everything the worker managed to send
                    # before dying — possibly the done message itself —
                    # so only truly lost work is requeued.
                    try:
                        while conn.poll(0):
                            _handle(conn.recv())
                    except (EOFError, OSError):
                        pass
                    conn.close()
                lost = [
                    key for key, (cpid, _) in claimed.items() if cpid == pid
                ]
                for key in lost:
                    _, claimed_at = claimed.pop(key)
                    _fault(
                        key, attempt_of[key], "crash",
                        f"worker pid {pid} died holding the task",
                        now - claimed_at,
                    )
                if outstanding or (feed is not None and not stopping):
                    obs.counter("worker.restarts")
                    _spawn()

        def _check_deadlines() -> None:
            if policy.timeout_s is None:
                return
            now = time.monotonic()
            for key, (pid, claimed_at) in list(claimed.items()):
                if now - claimed_at <= policy.timeout_s:
                    continue
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:  # pragma: no cover - already gone
                    pass
                claimed.pop(key, None)
                obs.counter("work.timeouts")
                _fault(
                    key, attempt_of[key], "timeout",
                    f"timed out after {policy.timeout_s}s "
                    f"(worker pid {pid} killed)",
                    now - claimed_at,
                )
                # The pid stays in ``workers`` on purpose: the next
                # _check_workers pass drains its pipe (it may have been
                # mid-send of a *different* key's claim), requeues
                # whatever it held, and spawns the replacement.

        def _release_due_retries() -> None:
            now = time.monotonic()
            while retry_heap and retry_heap[0][0] <= now:
                _, key = heapq.heappop(retry_heap)
                if key in finished:
                    continue
                tasks.put((key, payloads[key], attempt_of[key]))

        cancelled = threading.Event()
        restored: list[tuple[int, Any]] = []
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                previous = signal.signal(
                    signum, lambda *_args: cancelled.set()
                )
                restored.append((signum, previous))
        except ValueError:
            # Not the main thread: signal-based cancellation is the
            # owner process's job; injected interrupts still work.
            restored = []

        try:
            for _ in range(n_spawn):
                _spawn()
            for key, payload in items:
                tasks.put((key, payload, 1))

            while True:
                # A drain that just emptied exits *before* the signal
                # check: completed work beats a late Ctrl-C, exactly as
                # the historical `while outstanding:` loop behaved.
                if feed is not None and not stopping:
                    stopping = stop is not None and stop()
                if not outstanding and (feed is None or stopping):
                    break
                if cancelled.is_set():
                    self._drain_completed(conns, _handle)
                    if batch:
                        yield list(batch)
                    raise RunInterrupted(
                        f"{self.name} pool cancelled by signal; "
                        f"{completed_total + len(batch)} completed units "
                        "persisted"
                    )
                batch.clear()
                if feed is not None and not stopping:
                    _admit(feed())
                _release_due_retries()
                if conns:
                    for conn in _conn_wait(
                        list(conns.values()), timeout=self.tick_s
                    ):
                        _drain_conn(conn)
                else:  # every worker dead at once; respawn below
                    time.sleep(self.tick_s)
                _check_workers()
                _check_deadlines()
                if batch:
                    completed_total += len(batch)
                    yield list(batch)
                    # Owner-side chaos site: a deterministic stand-in
                    # for mid-run SIGINT, checked after the caller has
                    # absorbed the batch (the generator resumes here).
                    chaos.check_interrupt(completed_total)
        finally:
            for signum, previous in restored:
                signal.signal(signum, previous)
            self._shutdown(tasks, workers)
            for conn in conns.values():
                conn.close()

    @staticmethod
    def _drain_completed(conns: dict[int, Any], handle: Callable) -> None:
        """Briefly absorb results that finished before a cancellation."""
        deadline = time.monotonic() + _CANCEL_DRAIN_S
        for conn in list(conns.values()):
            while time.monotonic() < deadline:
                try:
                    if not conn.poll(0):
                        break
                    handle(conn.recv())
                except (EOFError, OSError):
                    break

    @staticmethod
    def _shutdown(tasks: Any, workers: dict[int, Any]) -> None:
        for _ in workers:
            tasks.put(None)
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        for proc in workers.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in workers.values():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - terminate ignored
                proc.kill()
                proc.join(timeout=_JOIN_TIMEOUT_S)
        tasks.cancel_join_thread()


def retry_serial(
    fn: Callable[[Any], Any],
    key: str,
    payload: Any,
    policy: RetryPolicy | None = None,
    name: str = "work",
) -> WorkOutcome:
    """In-process equivalent of one supervised unit of work.

    The serial execution paths (``n_workers == 1``) share the retry and
    chaos semantics of the pool, minus the sites that need a separate
    process: injected kills are skipped (killing the only process is a
    real crash, not a drill) and there are no deadlines.
    """
    policy = policy if policy is not None else RetryPolicy.from_env()
    chaos = active_chaos()
    history: list[dict] = []
    attempt = 1
    while True:
        started = time.perf_counter()
        try:
            chaos.inject_worker(key, attempt, allow_kill=False)
            value = fn(payload)
        except RunInterrupted:
            raise
        except Exception as exc:  # noqa: BLE001 - fault capture
            history.append(
                {
                    "attempt": attempt,
                    "outcome": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "elapsed_s": round(time.perf_counter() - started, 6),
                    "traceback": traceback.format_exc(limit=20),
                }
            )
            if attempt >= policy.max_attempts:
                obs.counter("work.quarantined")
                return WorkOutcome(
                    key=key,
                    value=None,
                    status="quarantined",
                    attempts=attempt,
                    history=history,
                )
            obs.counter("work.retries")
            with obs.span(
                "retry",
                work=key[:12],
                attempt=attempt + 1,
                cause="error",
                pool=name,
            ):
                pass
            time.sleep(policy.backoff_s(key, attempt + 1))
            attempt += 1
            continue
        return WorkOutcome(
            key=key,
            value=value,
            status="completed",
            attempts=attempt,
            history=history,
        )
