"""Supervised execution: crash-tolerant pools, retry, and chaos.

The paper explores energy/reliability trade-offs under *injected*
faults; this package applies the same discipline to the infrastructure
that runs those experiments.  Three pieces:

* :mod:`~repro.resilience.retry` — :class:`RetryPolicy`: bounded
  attempts, per-unit timeouts, exponential backoff with deterministic
  jitter.
* :mod:`~repro.resilience.chaos` — a deterministic fault-injection
  layer driven by ``REPRO_CHAOS=<spec>`` (or ``repro --chaos``): worker
  kills, transient exceptions, evaluation delays, ENOSPC-style store
  write errors, and owner-side interrupts, all drawn from a seeded
  schedule so every recovery path is reproducible in CI.
* :mod:`~repro.resilience.supervisor` — :class:`SupervisedPool`: the
  worker pool both fan-out seams (campaign runner, cohort fleet) run
  through.  Detects dead workers (pid liveness) and stuck work
  (per-unit deadlines), respawns and requeues, retries transient
  faults with backoff, quarantines poison work after ``max_attempts``
  with a full attempt history, and drains gracefully on cancellation.

Work keys, seeds, and content hashes are never touched by any of this:
a retried unit of work is bit-identical to a first-try unit.
"""

from __future__ import annotations

from .chaos import (
    ENV_CHAOS,
    ChaosSpec,
    active_chaos,
    chaos_draw,
    parse_chaos,
)
from .retry import RetryPolicy
from .supervisor import SupervisedPool, WorkOutcome, retry_serial

__all__ = [
    "ENV_CHAOS",
    "ChaosSpec",
    "RetryPolicy",
    "SupervisedPool",
    "WorkOutcome",
    "active_chaos",
    "chaos_draw",
    "parse_chaos",
    "retry_serial",
]
