"""Extension bench — per-buffer fault sensitivity (Fig 2 refinement).

Re-runs the Fig 2 injection with the stuck bit confined to one named
buffer at a time, ranking each application's buffers by criticality —
the data a selective-placement deployment of significance-based
computing would need.
"""

from __future__ import annotations

import pytest

from repro.exp.buffers import run_buffer_sensitivity
from repro.exp.common import ExperimentConfig

APP_NAMES = ("dwt", "matrix_filter", "morphology", "delineation")


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_buffer_sensitivity(benchmark, app_name, report_sink, bench_config):
    config = ExperimentConfig(
        records=bench_config.records,
        duration_s=bench_config.duration_s,
        n_runs=1,  # deterministic injection, no Monte Carlo needed
    )
    result = benchmark.pedantic(
        lambda: run_buffer_sensitivity(app_name, position=14, config=config),
        rounds=1,
        iterations=1,
    )

    rows = report_sink.shared.setdefault("buffer_rows", [])
    ranked = sorted(result.snr_db.items(), key=lambda item: item[1])
    rows.append(f"{app_name} (bit 14 stuck-at-1):")
    for name, snr in ranked:
        base, length = result.layout[name]
        rows.append(f"   {name:18s} {snr:7.1f} dB   [{base:5d}+{length:5d}]")
    report_sink.add(
        "extension_buffer_sensitivity",
        "per-buffer injection, most critical first:\n" + "\n".join(rows),
    )

    # Every buffer's corruption must degrade the output at this MSB-area
    # position (none of the buffers is dead weight).
    assert all(snr < 96.0 for snr in result.snr_db.values())
