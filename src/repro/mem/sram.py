"""Bit-accurate faulty SRAM with access accounting.

:class:`FaultySRAM` stores raw bit patterns and applies its
:class:`~repro.mem.faults.FaultMap` on **write**, mirroring the physics of
a stuck-at defect: the cell ignores the written value, so every subsequent
read returns the stuck value.  (Applying the map on write rather than read
is observationally equivalent for reads, but also makes read-after-write
of *uncorrupted* neighbours exact, and keeps repeated reads idempotent.)

Access counters feed the energy model (reads/writes per array) and, when
a trace sink is attached, the MPSoC crossbar simulator.
"""

from __future__ import annotations

import numpy as np

from .._bitops import bit_mask
from ..errors import MemoryModelError
from .faults import FaultMap, empty_fault_map, normalize_slice
from .layout import AddressMap, MemoryGeometry

__all__ = ["FaultySRAM"]


class FaultySRAM:
    """A banked SRAM array with permanent stuck-at defects.

    Args:
        geometry: array organisation (words, width, banks).
        fault_map: permanent defects over *physical* words; defaults to a
            defect-free array.
        address_map: logical-to-physical scrambling; defaults to identity.

    Example:
        >>> import numpy as np
        >>> from repro.mem import FaultySRAM, MemoryGeometry, position_fault_map
        >>> geo = MemoryGeometry(n_words=16, word_bits=16, n_banks=4)
        >>> sram = FaultySRAM(geo, position_fault_map(16, 16, 15, 1))
        >>> sram.write(np.array([0]), np.array([0x0001]))
        >>> hex(int(sram.read(np.array([0]))[0]))
        '0x8001'
    """

    def __init__(
        self,
        geometry: MemoryGeometry,
        fault_map: FaultMap | None = None,
        address_map: AddressMap | None = None,
    ) -> None:
        self.geometry = geometry
        if fault_map is None:
            fault_map = empty_fault_map(geometry.n_words, geometry.word_bits)
        if fault_map.n_words != geometry.n_words:
            raise MemoryModelError(
                f"fault map covers {fault_map.n_words} words but the array "
                f"has {geometry.n_words}"
            )
        if fault_map.word_bits != geometry.word_bits:
            raise MemoryModelError(
                f"fault map width {fault_map.word_bits} does not match "
                f"array width {geometry.word_bits}"
            )
        if address_map is not None and address_map.geometry.n_words != geometry.n_words:
            raise MemoryModelError("address map geometry mismatch")
        self.fault_map = fault_map
        self.address_map = address_map
        # A batched map stacks one independent cell array per trial; all
        # trials share addressing, so one write/read pass covers them all.
        # Defective cells hold their stuck value even before first write:
        # on all-zero cells ``(0 | set) & ~clear`` reduces to the set
        # mask itself (set and clear are disjoint), one copy instead of
        # a zero-fill plus a full apply pass.
        self._cells = fault_map.set_mask.copy()
        self.read_count = 0
        self.write_count = 0

    @property
    def n_trials(self) -> int:
        """Stacked Monte-Carlo trials this array simulates (1 = classic)."""
        return self.fault_map.n_trials

    @property
    def is_batched(self) -> bool:
        """Whether the cell array carries a leading trial axis."""
        return self.fault_map.is_batched

    def _physical(
        self, addresses: np.ndarray | slice
    ) -> tuple[np.ndarray | slice, int]:
        """Resolve logical addresses; returns ``(physical, count)``.

        Contiguous ``slice`` addressing (what the fabric's static
        buffers always produce) stays a slice on an unscrambled array —
        downstream cell and mask accesses are then views instead of
        gather copies, the hot-path form of the trial-batched pipeline.
        """
        n_words = self.geometry.n_words
        if isinstance(addresses, slice):
            start, stop = normalize_slice(addresses, n_words)
            if self.address_map is None:
                return slice(start, stop), stop - start
            addresses = np.arange(start, stop)
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.size and (
            int(addr.min()) < 0 or int(addr.max()) >= n_words
        ):
            raise MemoryModelError(
                f"address out of range [0, {n_words})"
            )
        if self.address_map is None:
            return addr, int(addr.size)
        return self.address_map.physical(addr), int(addr.size)

    def write(
        self,
        addresses: np.ndarray | slice,
        patterns: np.ndarray,
        checked: bool = False,
    ) -> None:
        """Store bit patterns; stuck cells retain their stuck values.

        On a batched array ``patterns`` is ``(n_trials, k)`` — or 1-D,
        in which case the same values are written to every trial (the
        first write of a batch, before corruption diverges the trials).
        ``addresses`` may be a contiguous ``slice`` (the fabric's static
        buffers), which skips the per-access gather copies entirely.
        ``checked=True`` marks patterns a caller already guarantees to
        fit the word width (the fabric's EMT-encoded codewords do by
        construction), skipping the per-write min/max scan.
        """
        addr, count = self._physical(addresses)
        values = np.asarray(patterns, dtype=np.int64)
        if self.is_batched:
            if values.ndim == 1:
                values = np.broadcast_to(
                    values, (self.n_trials, values.shape[0])
                )
            expected = (self.n_trials, count)
        else:
            expected = (count,)
        if values.shape != expected:
            raise MemoryModelError(
                f"patterns shape {values.shape} does not match addresses "
                f"shape {expected}"
            )
        if not checked:
            limit = bit_mask(self.geometry.word_bits)
            if values.size and (
                int(values.min()) < 0 or int(values.max()) > limit
            ):
                raise MemoryModelError(
                    f"pattern exceeds the {self.geometry.word_bits}-bit word"
                )
        self._cells[..., addr] = self.fault_map.apply(values, addr)
        self.write_count += int(values.size)

    def write_readback_stacked(
        self, addresses: slice, patterns: np.ndarray
    ) -> np.ndarray:
        """Write-then-read a ``(n_trials, n_windows, k)`` window stack.

        Semantically equivalent to looping ``write(w); read(w)`` over
        the window axis: corruption-on-write means every window reads
        back its applied pattern, and the cells retain the *last*
        window — the end state a sequential loop leaves.  One
        vectorised pass instead of ``2 * n_windows`` calls; access
        counters advance exactly as the loop would advance them.
        Requires a batched, unscrambled array (the caller guards).
        """
        if not self.is_batched or self.address_map is not None:
            raise MemoryModelError(
                "stacked write-readback needs a batched, unscrambled array"
            )
        start, stop = normalize_slice(addresses, self.geometry.n_words)
        corrupted = self.fault_map.apply_stacked(patterns, addresses)
        # Persist the final window: the state a sequential loop leaves.
        self._cells[:, start:stop] = corrupted[:, -1, :]
        self.write_count += int(patterns.size)
        self.read_count += int(patterns.size)
        return corrupted

    def read(
        self, addresses: np.ndarray | slice, copy: bool = True
    ) -> np.ndarray:
        """Read back stored (possibly corrupted) bit patterns.

        Returns ``(n_trials, k)`` on a batched array, ``(k,)`` otherwise.
        ``copy=False`` may return a view of the cell array for sliced
        reads — valid until the next write; the fabric uses it because
        every EMT decoder derives fresh output arrays immediately.
        """
        addr, count = self._physical(addresses)
        self.read_count += count * self.n_trials
        stored = self._cells[..., addr]
        if copy and not stored.flags.owndata:
            return stored.copy()
        return stored

    def reset_counters(self) -> None:
        """Zero the access counters (energy accounting epochs)."""
        self.read_count = 0
        self.write_count = 0

    @property
    def n_faults(self) -> int:
        """Number of stuck bits in the array."""
        return self.fault_map.n_faults
