"""Dynamical ECG synthesis (ECGSYN-style sum-of-Gaussians model).

Each heartbeat is modelled as a sum of Gaussian waves — one per fiducial
wave (P, Q, R, S, T) — positioned relative to the R peak and scaled by the
beat's morphology.  Beat-to-beat timing comes from an RR-interval tachogram
with the classic bimodal LF/HF spectrum (Mayer waves plus respiratory sinus
arrhythmia), following the construction of the ECGSYN generator of
McSharry et al. (IEEE T-BME 2003) in discrete form.

The model is deliberately parametric: the pathology presets in
:mod:`repro.signals.pathologies` are just alternative
:class:`BeatMorphology` instances, which is how the synthetic corpus covers
"different ECG signals with different pathologies" as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import SignalError

__all__ = [
    "WaveParams",
    "BeatMorphology",
    "NORMAL_MORPHOLOGY",
    "rr_tachogram",
    "render_beats",
    "ECGGenerator",
]


@dataclass(frozen=True)
class WaveParams:
    """One Gaussian component of a heartbeat.

    Attributes:
        amplitude_mv: peak amplitude in millivolts (signed).
        width_s: Gaussian standard deviation in seconds.
        offset_s: centre position relative to the R peak, in seconds
            (negative = before the R peak).
    """

    amplitude_mv: float
    width_s: float
    offset_s: float

    def __post_init__(self) -> None:
        if self.width_s <= 0:
            raise SignalError(f"wave width must be positive, got {self.width_s}")


@dataclass(frozen=True)
class BeatMorphology:
    """The full P-QRS-T shape of one beat class.

    ``waves`` maps wave labels (``"P"``, ``"Q"``, ``"R"``, ``"S"``, ``"T"``)
    to their Gaussian parameters.  A wave may be absent (e.g. PVC beats have
    no P wave).  ``label`` is the beat-annotation symbol used by the dataset
    (MIT-BIH style: ``N``, ``V``, ``A``, ``L``, ``R``, ``/``).
    """

    label: str
    waves: dict[str, WaveParams] = field(default_factory=dict)

    def scaled(self, gain: float) -> "BeatMorphology":
        """Return a copy with every wave amplitude multiplied by ``gain``."""
        return BeatMorphology(
            label=self.label,
            waves={
                name: replace(w, amplitude_mv=w.amplitude_mv * gain)
                for name, w in self.waves.items()
            },
        )


#: Textbook lead-II normal sinus beat (amplitudes in mV, timings in s).
NORMAL_MORPHOLOGY = BeatMorphology(
    label="N",
    waves={
        "P": WaveParams(amplitude_mv=0.15, width_s=0.025, offset_s=-0.18),
        "Q": WaveParams(amplitude_mv=-0.12, width_s=0.010, offset_s=-0.035),
        "R": WaveParams(amplitude_mv=1.20, width_s=0.011, offset_s=0.0),
        "S": WaveParams(amplitude_mv=-0.25, width_s=0.012, offset_s=0.035),
        "T": WaveParams(amplitude_mv=0.30, width_s=0.055, offset_s=0.30),
    },
)


def rr_tachogram(
    n_beats: int,
    mean_hr_bpm: float = 72.0,
    std_hr_bpm: float = 2.5,
    lf_hf_ratio: float = 0.5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate ``n_beats`` RR intervals (seconds) with an LF/HF spectrum.

    The tachogram is synthesised in the frequency domain as two Gaussian
    spectral lobes — LF (Mayer waves, 0.1 Hz) and HF (respiration, 0.25 Hz)
    — with power ratio ``lf_hf_ratio``, then inverse-transformed and scaled
    to the requested heart-rate mean and standard deviation.  This is the
    RR-process construction used by ECGSYN.

    Args:
        n_beats: number of intervals to produce (must be positive).
        mean_hr_bpm: mean heart rate in beats per minute.
        std_hr_bpm: heart-rate standard deviation in beats per minute.
        lf_hf_ratio: ratio of low-frequency to high-frequency power.
        rng: optional numpy Generator for reproducibility.

    Returns:
        Array of ``n_beats`` positive RR intervals in seconds.
    """
    if n_beats <= 0:
        raise SignalError(f"n_beats must be positive, got {n_beats}")
    if mean_hr_bpm <= 0:
        raise SignalError(f"mean heart rate must be positive, got {mean_hr_bpm}")
    rng = rng if rng is not None else np.random.default_rng()

    # Build a one-sided power spectrum sampled at the mean beat rate.
    n_fft = max(256, 1 << (n_beats - 1).bit_length())
    beat_rate_hz = mean_hr_bpm / 60.0
    freqs = np.fft.rfftfreq(n_fft, d=1.0 / beat_rate_hz)
    lf = np.exp(-0.5 * ((freqs - 0.10) / 0.01) ** 2)
    hf = np.exp(-0.5 * ((freqs - 0.25) / 0.01) ** 2)
    power = lf_hf_ratio * lf + hf
    amplitude = np.sqrt(power)
    phases = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
    spectrum = amplitude * np.exp(1j * phases)
    spectrum[0] = 0.0
    series = np.fft.irfft(spectrum, n=n_fft)[:n_beats]

    std = float(series.std())
    if std > 0:
        series = series / std
    mean_rr = 60.0 / mean_hr_bpm
    std_rr = std_hr_bpm * mean_rr / mean_hr_bpm
    rr = mean_rr + std_rr * series
    # Physiological floor: never let an interval collapse below 250 ms.
    return np.maximum(rr, 0.25)


def render_beats(
    r_times_s: np.ndarray,
    morphologies: list[BeatMorphology],
    fs_hz: float,
    duration_s: float,
) -> np.ndarray:
    """Render a beat train to a sampled voltage trace.

    Args:
        r_times_s: R-peak instants in seconds, one per beat.
        morphologies: beat morphology for each R peak (same length).
        fs_hz: sampling rate in Hz.
        duration_s: total trace duration in seconds.

    Returns:
        Float array of ``round(duration_s * fs_hz)`` samples in millivolts.
    """
    r_times = np.asarray(r_times_s, dtype=np.float64)
    if len(r_times) != len(morphologies):
        raise SignalError(
            f"{len(r_times)} R times but {len(morphologies)} morphologies"
        )
    if fs_hz <= 0:
        raise SignalError(f"sampling rate must be positive, got {fs_hz}")
    n_samples = int(round(duration_s * fs_hz))
    t = np.arange(n_samples, dtype=np.float64) / fs_hz
    signal = np.zeros(n_samples, dtype=np.float64)
    for r_time, morph in zip(r_times, morphologies):
        for wave in morph.waves.values():
            centre = r_time + wave.offset_s
            # Only evaluate the Gaussian on its +/- 5 sigma support.
            lo = max(0, int((centre - 5 * wave.width_s) * fs_hz))
            hi = min(n_samples, int((centre + 5 * wave.width_s) * fs_hz) + 1)
            if lo >= hi:
                continue
            window = t[lo:hi] - centre
            signal[lo:hi] += wave.amplitude_mv * np.exp(
                -0.5 * (window / wave.width_s) ** 2
            )
    return signal


class ECGGenerator:
    """Seedable generator of multi-beat ECG traces.

    Example:
        >>> gen = ECGGenerator(seed=7)
        >>> trace = gen.generate(duration_s=10.0)
        >>> trace.fs_hz
        360.0
    """

    def __init__(self, seed: int | None = None, fs_hz: float = 360.0) -> None:
        if fs_hz <= 0:
            raise SignalError(f"sampling rate must be positive, got {fs_hz}")
        self._rng = np.random.default_rng(seed)
        self.fs_hz = float(fs_hz)

    @property
    def rng(self) -> np.random.Generator:
        """The generator's random source (exposed for rhythm models)."""
        return self._rng

    def generate(
        self,
        duration_s: float,
        mean_hr_bpm: float = 72.0,
        std_hr_bpm: float = 2.5,
        morphology: BeatMorphology = NORMAL_MORPHOLOGY,
    ) -> "GeneratedTrace":
        """Generate a single-morphology trace of the requested duration."""
        if duration_s <= 0:
            raise SignalError(f"duration must be positive, got {duration_s}")
        n_beats = int(np.ceil(duration_s * mean_hr_bpm / 60.0)) + 2
        rr = rr_tachogram(n_beats, mean_hr_bpm, std_hr_bpm, rng=self._rng)
        r_times = np.cumsum(rr) - rr[0] + 0.35
        keep = r_times < duration_s
        morphs = [morphology] * int(keep.sum())
        signal = render_beats(r_times[keep], morphs, self.fs_hz, duration_s)
        return GeneratedTrace(
            signal_mv=signal,
            fs_hz=self.fs_hz,
            r_times_s=r_times[keep],
            labels=[morphology.label] * int(keep.sum()),
        )


@dataclass(frozen=True)
class GeneratedTrace:
    """A rendered ECG trace plus its ground-truth beat annotations."""

    signal_mv: np.ndarray
    fs_hz: float
    r_times_s: np.ndarray
    labels: list[str]

    @property
    def r_samples(self) -> np.ndarray:
        """R-peak positions in samples (rounded)."""
        return np.round(self.r_times_s * self.fs_hz).astype(np.int64)
