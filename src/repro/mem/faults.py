"""Stuck-at fault maps for the voltage-scaled data memory.

The paper's error model (Section V): "Data corruption is caused by
permanent errors that occur at random positions and set the affected
memory bits to '1' or '0'."  A :class:`FaultMap` captures one such set of
permanent defects as two per-word bit masks — bits stuck at one and bits
stuck at zero — which makes applying the corruption to a whole buffer two
vectorised bitwise operations (design decision D1).

Maps come in two shapes:

* **1-D** ``(n_words,)`` masks describe one physical array — the classic
  single-trial form;
* **2-D** ``(n_trials, n_words)`` masks stack one independent defect
  sample per Monte-Carlo trial, so an entire batch of trials flows
  through the memory fabric in single numpy passes (the trial-batched
  hot path; see PERFORMANCE.md).

Two constructors cover the paper's two methodologies:

* :func:`sample_fault_map` — independent per-bit failures at a given BER,
  each stuck value drawn uniformly (Fig 4's Monte-Carlo runs);
* :func:`position_fault_map` — every word's bit ``k`` stuck at a chosen
  value (Fig 2's per-bit significance sweep);

plus their trial-batched counterparts :func:`sample_fault_map_batch`
(bit-identical to ``n_trials`` sequential :func:`sample_fault_map` draws
from the same generator — the stacked draw consumes the stream in the
exact per-trial order) and :func:`position_fault_map_batch` (one trial
per (position, stuck value) configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from .._bitops import bit_mask, popcount
from ..errors import MemoryModelError

__all__ = [
    "FaultMap",
    "empty_fault_map",
    "sample_fault_map",
    "sample_fault_map_batch",
    "position_fault_map",
    "position_fault_map_batch",
]


def normalize_slice(indices: slice, n_words: int) -> tuple[int, int]:
    """Validate a contiguous forward slice against an array of words.

    The memory layers (fault masks and the SRAM) address static buffers
    with plain slices; both validate through this single helper so they
    can never disagree on which slices are legal.  Returns
    ``(start, stop)``.
    """
    start = indices.start or 0
    stop = n_words if indices.stop is None else indices.stop
    if (
        indices.step not in (None, 1)
        or start < 0
        or stop > n_words
        or start > stop
    ):
        raise MemoryModelError(
            f"slice {indices} is not a forward range inside [0, {n_words}]"
        )
    return start, stop


@dataclass(frozen=True)
class FaultMap:
    """Permanent stuck-at defects of one physical memory array.

    Attributes:
        word_bits: width of each word the map covers.
        set_mask: per-word mask of bits stuck at '1' — ``(n_words,)`` for
            a single trial, ``(n_trials, n_words)`` for a stacked batch
            of independent defect samples.
        clear_mask: per-word mask of bits stuck at '0' (same shape).

    A bit cannot be stuck at both values; the constructor rejects
    overlapping masks.
    """

    word_bits: int
    set_mask: np.ndarray
    clear_mask: np.ndarray

    @classmethod
    def _trusted(
        cls, word_bits: int, set_mask: np.ndarray, clear_mask: np.ndarray
    ) -> "FaultMap":
        """Construct without re-validating provably well-formed masks.

        The module's own constructors (sampling, position maps, trial
        slicing, width restriction) build masks that are disjoint and
        in-range *by construction*; skipping ``__post_init__``'s full
        min/max/overlap scans there removes several whole-array passes
        from the batched hot path.  External callers must use the
        public constructor.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "word_bits", word_bits)
        object.__setattr__(self, "set_mask", set_mask)
        object.__setattr__(self, "clear_mask", clear_mask)
        return self

    def __post_init__(self) -> None:
        if self.word_bits < 1:
            raise MemoryModelError(
                f"word_bits must be positive, got {self.word_bits}"
            )
        set_arr = np.asarray(self.set_mask, dtype=np.int64)
        clear_arr = np.asarray(self.clear_mask, dtype=np.int64)
        if set_arr.shape != clear_arr.shape:
            raise MemoryModelError(
                f"mask shapes differ: {set_arr.shape} vs {clear_arr.shape}"
            )
        if set_arr.ndim not in (1, 2):
            raise MemoryModelError(
                f"masks must be 1-D (n_words,) or 2-D (n_trials, n_words), "
                f"got shape {set_arr.shape}"
            )
        if set_arr.ndim == 2 and set_arr.shape[0] < 1:
            raise MemoryModelError("a batched map needs at least one trial")
        limit = bit_mask(self.word_bits)
        for name, arr in (("set_mask", set_arr), ("clear_mask", clear_arr)):
            if arr.size and (int(arr.min()) < 0 or int(arr.max()) > limit):
                raise MemoryModelError(
                    f"{name} exceeds the {self.word_bits}-bit word width"
                )
        if np.any(np.bitwise_and(set_arr, clear_arr)):
            raise MemoryModelError(
                "a bit cannot be stuck at both '0' and '1'"
            )
        object.__setattr__(self, "set_mask", set_arr)
        object.__setattr__(self, "clear_mask", clear_arr)

    @property
    def n_words(self) -> int:
        """Number of words covered by this map (per trial when batched)."""
        return int(self.set_mask.shape[-1])

    @property
    def n_trials(self) -> int:
        """Number of stacked trials (1 for a classic single-trial map)."""
        return int(self.set_mask.shape[0]) if self.set_mask.ndim == 2 else 1

    @property
    def is_batched(self) -> bool:
        """Whether the masks carry a leading trial axis."""
        return self.set_mask.ndim == 2

    def trial(self, index: int) -> "FaultMap":
        """The single-trial map of one row of a batched map.

        For a 1-D map only ``index == 0`` is valid and the map itself is
        returned (the sequential fallback path uses this uniformly).
        """
        if not self.is_batched:
            if index != 0:
                raise MemoryModelError(
                    f"single-trial map has no trial {index}"
                )
            return self
        if not 0 <= index < self.n_trials:
            raise MemoryModelError(
                f"trial index {index} outside [0, {self.n_trials})"
            )
        return FaultMap._trusted(
            self.word_bits, self.set_mask[index], self.clear_mask[index]
        )

    @property
    def n_faults(self) -> int:
        """Total number of stuck bits in the array (all trials)."""
        return int(
            popcount(self.set_mask).sum() + popcount(self.clear_mask).sum()
        )

    def _inv_clear(self) -> np.ndarray:
        """``~clear_mask``, computed once and cached.

        Every :meth:`apply` needs the complement; caching it halves the
        mask traffic of a pipeline that round-trips dozens of buffers
        through the same map.
        """
        cached = getattr(self, "_inv_clear_cache", None)
        if cached is None:
            cached = ~self.clear_mask
            object.__setattr__(self, "_inv_clear_cache", cached)
        return cached

    def apply(
        self,
        words: np.ndarray,
        indices: np.ndarray | slice | None = None,
    ) -> np.ndarray:
        """Corrupt stored bit patterns as the defective cells would.

        Args:
            words: bit patterns being read back.  For a batched map,
                shape ``(n_trials, k)`` — row ``t`` is corrupted by
                trial ``t``'s defects.
            indices: physical word indices each element maps to — an
                index vector, or a ``slice`` for the contiguous ranges
                the fabric's static buffers always produce (a view, no
                gather copy: the hot-path form).  For a batched map the
                same addresses are touched in every trial.  When
                omitted, ``words`` must cover the full array (all
                trials) in order.

        Returns:
            ``(words | set_mask) & ~clear_mask`` element-wise.
        """
        arr = np.asarray(words, dtype=np.int64)
        inv_clear = self._inv_clear()
        if indices is None:
            if arr.shape != self.set_mask.shape:
                raise MemoryModelError(
                    f"expected full-array shape {self.set_mask.shape}, "
                    f"got {arr.shape}"
                )
            set_mask, inv = self.set_mask, inv_clear
        elif isinstance(indices, slice):
            start, stop = normalize_slice(indices, self.n_words)
            count = stop - start
            expected = (
                (self.n_trials, count) if self.is_batched else (count,)
            )
            if expected != arr.shape:
                raise MemoryModelError(
                    f"slice of {count} words does not match words "
                    f"shape {arr.shape}"
                )
            set_mask = self.set_mask[..., indices]
            inv = inv_clear[..., indices]
        else:
            idx = np.asarray(indices, dtype=np.int64)
            if self.is_batched and idx.ndim != 1:
                raise MemoryModelError(
                    "batched maps take a 1-D index vector (the same "
                    "addresses are touched in every trial)"
                )
            expected = (
                (self.n_trials, idx.shape[-1]) if self.is_batched else idx.shape
            )
            if expected != arr.shape:
                raise MemoryModelError(
                    f"indices shape {idx.shape} does not match words "
                    f"shape {arr.shape}"
                )
            if idx.size and (int(idx.min()) < 0 or int(idx.max()) >= self.n_words):
                raise MemoryModelError("physical index out of range")
            set_mask = self.set_mask[..., idx]
            inv = inv_clear[..., idx]
        return self._corrupt(arr, set_mask, inv)

    @staticmethod
    def _corrupt(
        words: np.ndarray, set_mask: np.ndarray, inv_clear: np.ndarray
    ) -> np.ndarray:
        """The stuck-at rule, ``(words | set) & ~clear``, in one place."""
        out = np.bitwise_or(words, set_mask)
        np.bitwise_and(out, inv_clear, out=out)
        return out

    def apply_stacked(self, words: np.ndarray, indices: slice) -> np.ndarray:
        """Corrupt a ``(n_trials, n_windows, k)`` window stack.

        Every window of trial ``t`` sees trial ``t``'s defects at the
        sliced addresses — the window-stacked hot path of the batched
        fabric.  Same stuck-at rule as :meth:`apply`, with the masks
        broadcast across the window axis.
        """
        if not self.is_batched:
            raise MemoryModelError(
                "stacked application requires a batched (2-D) map"
            )
        arr = np.asarray(words, dtype=np.int64)
        if arr.ndim != 3 or arr.shape[0] != self.n_trials:
            raise MemoryModelError(
                f"expected ({self.n_trials}, n_windows, k) words, "
                f"got shape {arr.shape}"
            )
        start, stop = normalize_slice(indices, self.n_words)
        if arr.shape[-1] != stop - start:
            raise MemoryModelError(
                f"words cover {arr.shape[-1]} columns but the slice "
                f"spans {stop - start}"
            )
        return self._corrupt(
            arr,
            self.set_mask[:, None, start:stop],
            self._inv_clear()[:, None, start:stop],
        )

    def restricted_to(self, word_bits: int) -> "FaultMap":
        """Project the map onto a narrower word (drop faults above it).

        Used when a hybrid system provisions the memory for the widest
        EMT but a narrower technique only occupies the low columns.
        """
        if word_bits < 1:
            raise MemoryModelError(
                f"word_bits must be positive, got {word_bits}"
            )
        if word_bits > self.word_bits:
            raise MemoryModelError(
                f"cannot widen a fault map from {self.word_bits} to {word_bits} bits"
            )
        keep = bit_mask(word_bits)
        return FaultMap._trusted(
            word_bits,
            np.bitwise_and(self.set_mask, keep),
            np.bitwise_and(self.clear_mask, keep),
        )

    def restricted_to_words(self, start: int, length: int) -> "FaultMap":
        """Keep only the faults inside the word range [start, start+length).

        Used by the buffer-sensitivity analysis: combined with the
        fabric's static allocation it confines injection to one named
        buffer (e.g. "faults in the input buffer only").
        """
        if not 0 <= start <= self.n_words:
            raise MemoryModelError(
                f"range start {start} outside [0, {self.n_words}]"
            )
        if length < 0 or start + length > self.n_words:
            raise MemoryModelError(
                f"range [{start}, {start + length}) exceeds the "
                f"{self.n_words}-word array"
            )
        inside = np.zeros(self.n_words, dtype=bool)
        inside[start : start + length] = True
        return FaultMap._trusted(
            self.word_bits,
            np.where(inside, self.set_mask, 0),
            np.where(inside, self.clear_mask, 0),
        )


def empty_fault_map(n_words: int, word_bits: int) -> FaultMap:
    """A defect-free array (nominal supply voltage)."""
    if word_bits < 1:
        raise MemoryModelError(f"word_bits must be positive, got {word_bits}")
    if n_words < 0:
        raise MemoryModelError(f"n_words must be non-negative, got {n_words}")
    zeros = np.zeros(n_words, dtype=np.int64)
    return FaultMap._trusted(word_bits, zeros, zeros.copy())


def sample_fault_map(
    n_words: int,
    word_bits: int,
    ber: float,
    rng: np.random.Generator,
) -> FaultMap:
    """Draw one Monte-Carlo fault map at bit error rate ``ber``.

    Every bit cell fails independently with probability ``ber``; each
    failed cell is stuck at '1' or '0' with equal probability — the
    paper's Section V error model.
    """
    if word_bits < 1:
        raise MemoryModelError(f"word_bits must be positive, got {word_bits}")
    if not 0.0 <= ber <= 1.0:
        raise MemoryModelError(f"BER must be in [0, 1], got {ber}")
    if n_words < 0:
        raise MemoryModelError(f"n_words must be non-negative, got {n_words}")
    if ber == 0.0 or n_words == 0:
        return empty_fault_map(n_words, word_bits)

    failed = rng.random((n_words, word_bits)) < ber
    stuck_high = rng.random((n_words, word_bits)) < 0.5
    set_mask, clear_mask = _pack_masks(failed, stuck_high)
    return FaultMap._trusted(word_bits, set_mask, clear_mask)


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(..., word_bits)`` boolean array into int64 bit masks.

    ``np.packbits`` with little-endian bit order makes byte ``c`` of
    word ``i`` exactly ``bits[i, 8c:8c+8]`` — one C pass over the
    boolean block — and the bytes then assemble into int64 words with a
    shift-or per byte column.  Bit ``j`` of the result equals
    ``bits[..., j]``, the same mapping the historical
    ``np.where(weights).sum(axis)`` reduction produced.
    """
    packed = np.packbits(bits, axis=-1, bitorder="little")
    out = packed[..., 0].astype(np.int64)
    for column in range(1, packed.shape[-1]):
        out |= packed[..., column].astype(np.int64) << np.int64(8 * column)
    return out


def _pack_masks(
    failed: np.ndarray, stuck_high: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-bit failure booleans into per-word set/clear masks.

    A failed cell is stuck high where ``stuck_high`` holds, stuck low
    otherwise: ``clear = failed - set`` avoids packing a third boolean
    block.  Mask packing was the single largest line of the Monte-Carlo
    sampling profile; this form is bit-identical to the historical
    weighted ``np.where(...).sum(axis)`` reduction at a fraction of its
    cost.
    """
    set_mask = _pack_bits(failed & stuck_high)
    failed_mask = _pack_bits(failed)
    return set_mask, failed_mask - set_mask


def sample_fault_map_batch(
    n_trials: int,
    n_words: int,
    word_bits: int,
    ber: float,
    rng: np.random.Generator,
) -> FaultMap:
    """Draw ``n_trials`` Monte-Carlo fault maps as one stacked batch.

    Bit-identical to ``n_trials`` sequential :func:`sample_fault_map`
    calls on the same generator: each sequential call consumes two
    ``(n_words, word_bits)`` uniform blocks (failure sites, then stuck
    values), and numpy fills a ``(n_trials, 2, n_words, word_bits)``
    request from the same stream in exactly that per-trial order — so
    trial ``t`` of the batch sees the very doubles the ``t``-th
    sequential call would have seen (property-tested).
    """
    if n_trials < 1:
        raise MemoryModelError(f"n_trials must be >= 1, got {n_trials}")
    if word_bits < 1:
        raise MemoryModelError(f"word_bits must be positive, got {word_bits}")
    if not 0.0 <= ber <= 1.0:
        raise MemoryModelError(f"BER must be in [0, 1], got {ber}")
    if n_words < 0:
        raise MemoryModelError(f"n_words must be non-negative, got {n_words}")
    if ber == 0.0 or n_words == 0:
        # Sequential draws at BER 0 consume no randomness; neither may we.
        zeros = np.zeros((n_trials, n_words), dtype=np.int64)
        return FaultMap._trusted(word_bits, zeros, zeros.copy())

    set_mask = np.empty((n_trials, n_words), dtype=np.int64)
    clear_mask = np.empty((n_trials, n_words), dtype=np.int64)
    # Draw and pack per trial: the uniform block of one trial (~2.9 MB
    # at the paper's geometry) stays cache-resident, where a monolithic
    # (n_trials, 2, n_words, word_bits) request would transiently hold
    # >1 GB for a 200-run batch and thrash every level of cache.  The
    # stream is unchanged — numpy fills requests C-order, so per-trial
    # draws consume exactly the doubles the sequential loop consumed.
    for trial in range(n_trials):
        draws = rng.random((2, n_words, word_bits))
        failed = draws[0] < ber
        stuck_high = draws[1] < 0.5
        set_mask[trial], clear_mask[trial] = _pack_masks(failed, stuck_high)
    return FaultMap._trusted(word_bits, set_mask, clear_mask)


def position_fault_map(
    n_words: int,
    word_bits: int,
    position: int,
    stuck_value: int,
) -> FaultMap:
    """Stick bit ``position`` of *every* word at ``stuck_value``.

    This is the Fig 2 methodology: "we successively set to '1' and '0'
    each bit located on the positions 0 to 15 of the 16-bits data
    buffers".
    """
    if not 0 <= position < word_bits:
        raise MemoryModelError(
            f"position must be in [0, {word_bits}), got {position}"
        )
    if stuck_value not in (0, 1):
        raise MemoryModelError(f"stuck_value must be 0 or 1, got {stuck_value}")
    mask = np.full(n_words, np.int64(1) << np.int64(position), dtype=np.int64)
    zeros = np.zeros(n_words, dtype=np.int64)
    if stuck_value == 1:
        return FaultMap(word_bits=word_bits, set_mask=mask, clear_mask=zeros)
    return FaultMap(word_bits=word_bits, set_mask=zeros, clear_mask=mask)


def position_fault_map_batch(
    n_words: int,
    word_bits: int,
    configurations: list[tuple[int, int]] | tuple[tuple[int, int], ...],
) -> FaultMap:
    """Stack one :func:`position_fault_map` trial per configuration.

    Args:
        n_words: words per trial.
        word_bits: word width.
        configurations: ``(position, stuck_value)`` pairs, one trial
            each, in order — the whole Fig 2 sweep of an application
            becomes a single batched pipeline pass.

    The result is memoized per configuration tuple (the map is
    deterministic and immutable): the Fig 2 sweep asks for the same
    32-configuration stack once per application.
    """
    if not configurations:
        raise MemoryModelError(
            "position_fault_map_batch needs at least one configuration"
        )
    return _position_fault_map_batch_cached(
        n_words, word_bits, tuple(tuple(pair) for pair in configurations)
    )


@lru_cache(maxsize=32)
def _position_fault_map_batch_cached(
    n_words: int,
    word_bits: int,
    configurations: tuple[tuple[int, int], ...],
) -> FaultMap:
    """The memoized body of :func:`position_fault_map_batch`."""
    for position, stuck_value in configurations:
        if not 0 <= position < word_bits:
            raise MemoryModelError(
                f"position must be in [0, {word_bits}), got {position}"
            )
        if stuck_value not in (0, 1):
            raise MemoryModelError(
                f"stuck_value must be 0 or 1, got {stuck_value}"
            )
    n_trials = len(configurations)
    positions = np.asarray([p for p, _s in configurations], dtype=np.int64)
    stuck = np.asarray([s for _p, s in configurations], dtype=np.int64)
    bits = np.int64(1) << positions
    # Each trial's mask is one constant per word: a single broadcast
    # assignment per mask materialises the (n_trials, n_words) arrays.
    set_mask = np.empty((n_trials, n_words), dtype=np.int64)
    clear_mask = np.empty((n_trials, n_words), dtype=np.int64)
    set_mask[...] = np.where(stuck == 1, bits, 0)[:, None]
    clear_mask[...] = np.where(stuck == 0, bits, 0)[:, None]
    return FaultMap._trusted(word_bits, set_mask, clear_mask)
