"""The ``service`` execution backend: campaigns via the daemon.

Registering this backend under ``"service"`` in
:data:`~repro.api.session.BACKENDS` routes ``Session.run`` through the
experiment service with zero caller changes: the session still plans
the experiment locally, and each planned campaign is shipped to the
daemon as one campaign job — the spec's JSON form plus its *expanded*
point list (spec filters are arbitrary callables and never cross the
process boundary).  The daemon's fleet executes the job into the very
store the session would have used, over the shared filesystem, so once
the job is terminal the backend simply reads the records back and
rebuilds an ordinary :class:`~repro.campaign.runner.CampaignResult` —
bit-identical to an inline run by the store layer's content-addressed
construction.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable

from ..campaign.runner import CampaignResult
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..errors import ServiceError
from .daemon import campaign_job_payload
from .client import ServiceClient

__all__ = ["ServiceBackend"]


def _store_identity(store: ResultStore) -> tuple[str, str]:
    """``(root, campaign name)`` of a store, plain or sharded."""
    path = store.path
    if path.name.endswith(".shards"):
        return str(path.parent), path.name[: -len(".shards")]
    return str(path.parent), path.stem


class ServiceBackend:
    """Execute campaigns as jobs of a running experiment service.

    Args:
        workers: per-job worker count the daemon's executing worker
            fans each campaign out over (the fleet decides how many
            *jobs* run concurrently; this decides parallelism inside
            one job).
        root: the daemon's service root (default honours
            ``REPRO_SERVICE_DIR``).
        priority: job priority for every campaign this backend submits.
        poll_s / timeout_s: completion-polling cadence and cap
            (``None`` waits indefinitely).
    """

    name = "service"

    def __init__(
        self,
        workers: int = 1,
        root: Path | str | None = None,
        priority: int = 0,
        poll_s: float = 0.2,
        timeout_s: float | None = None,
    ) -> None:
        self.workers = max(1, workers)
        self.priority = priority
        self.poll_s = poll_s
        self.timeout_s = timeout_s
        self.client = ServiceClient(root=root)

    def execute(
        self,
        spec: CampaignSpec,
        store: ResultStore | None = None,
        resume: bool = True,
        progress: Callable[[int, int, dict], None] | None = None,
    ) -> CampaignResult:
        """Submit the campaign as one job, wait, and read results back."""
        points = spec.expand()
        if store is not None:
            store_root, store_name = _store_identity(store)
        else:
            # An ephemeral campaign still needs a store the daemon and
            # this client can both see: park it under the service root,
            # named by the campaign (content-hash records dedupe reruns).
            store_root = str(self.client.root / "stores")
            store_name = spec.name
        payload = campaign_job_payload(
            spec, points, store_name, store_root,
            resume=resume, workers=self.workers,
        )
        job, created = self.client.submit_campaign(
            payload, priority=self.priority
        )
        # Submitting work the service already finished is a dedup hit:
        # nothing runs again, so account for it the way an inline resume
        # would — everything this call returns came from the store.
        deduplicated = not created and job.terminal
        record = self.client.wait(
            job.job_id, timeout_s=self.timeout_s, poll_s=self.poll_s
        )
        summary: dict[str, Any] = record.result or {}
        if record.status == "cancelled":
            raise ServiceError(
                f"campaign job {job.job_id} was cancelled before it ran"
            )
        if record.status == "failed" and "n_points" not in summary:
            # Infrastructure failure (quarantined), not point failures —
            # there are no records to return.
            raise ServiceError(
                f"campaign job {job.job_id} failed in the service: "
                f"{record.error or 'unknown error'}"
            )
        # Re-resolve rather than reuse `store`: the daemon may have
        # created the store sharded, which for_campaign auto-detects.
        readback = ResultStore.for_campaign(store_name, root=store_root)
        stored = readback.load()
        result = CampaignResult(spec_name=spec.name)
        for point in points:
            rec = stored.get(point.content_hash())
            if rec is None:  # pragma: no cover - store torn mid-read
                continue
            result.records.append(rec)
            if rec.get("status") == "failed":
                result.n_failed += 1
            if progress is not None:
                progress(len(result.records), len(points), rec)
        if deduplicated:
            result.n_executed = 0
            result.n_cached = len(result.records)
        else:
            result.n_executed = int(summary.get("n_executed", 0))
            result.n_cached = int(summary.get("n_cached", 0))
        return result
