"""Tests of the DREAM technique — the paper's core contribution.

The load-bearing guarantees (Section IV):

* DREAM's side info is ``1 + log2(data_bits)`` bits (Formula 2);
* any corruption confined to the ``run + 1`` protected MSBs is fully
  repaired, *regardless of how many of those bits flipped* (unlike ECC);
* bits below the protected region pass through untouched (whatever the
  memory returned);
* the all-zeros / all-ones words are reconstructed entirely.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._bitops import sign_run_length, to_signed, to_unsigned
from repro.emt import DecodeStats, DreamEMT
from repro.errors import EMTError

WORD16 = st.integers(min_value=0, max_value=0xFFFF)


@pytest.fixture(scope="module")
def emt():
    return DreamEMT()


class TestGeometry:
    def test_formula2_for_16_bits(self, emt):
        assert emt.side_bits == 5  # 1 + log2(16)
        assert emt.extra_bits == 5
        assert emt.stored_bits == 16

    @pytest.mark.parametrize(
        "bits,expected_side", [(4, 3), (8, 4), (16, 5), (32, 6)]
    )
    def test_formula2_across_word_sizes(self, bits, expected_side):
        assert DreamEMT(data_bits=bits).side_bits == expected_side

    def test_rejects_non_power_of_two(self):
        with pytest.raises(EMTError):
            DreamEMT(data_bits=12)

    def test_rejects_words_beyond_int64_storage(self):
        with pytest.raises(EMTError):
            DreamEMT(data_bits=64)

    def test_mask_lut_shape_and_content(self, emt):
        lut = emt.mask_lut()
        assert lut.shape == (16,)
        # ID i covers the top i+1 bits.
        assert int(lut[0]) == 0x8000
        assert int(lut[3]) == 0xF000
        assert int(lut[15]) == 0xFFFF


class TestEncode:
    def test_stored_word_is_raw_payload(self, emt):
        payload = np.array([0x1234, 0xFFAB])
        stored, _side = emt.encode(payload)
        assert np.array_equal(stored, payload)

    @given(pattern=WORD16)
    def test_side_info_encodes_sign_and_run(self, pattern):
        emt = DreamEMT()
        _, side = emt.encode(np.array([pattern]))
        mask_id = int(side[0]) & 0xF
        sign = (int(side[0]) >> 4) & 1
        assert sign == (pattern >> 15) & 1
        assert mask_id + 1 == int(sign_run_length(np.array([pattern]), 16)[0])

    def test_rejects_out_of_range_payload(self, emt):
        with pytest.raises(EMTError):
            emt.encode(np.array([0x10000]))
        with pytest.raises(EMTError):
            emt.encode(np.array([-1]))


class TestDecode:
    def test_clean_roundtrip(self, emt, rng):
        payload = rng.integers(0, 1 << 16, size=5000, dtype=np.int64)
        stored, side = emt.encode(payload)
        assert np.array_equal(emt.decode(stored, side), payload)

    def test_requires_side_info(self, emt):
        with pytest.raises(EMTError):
            emt.decode(np.array([0]), None)

    def test_side_shape_mismatch(self, emt):
        with pytest.raises(EMTError):
            emt.decode(np.array([0, 1]), np.array([0]))

    @given(pattern=WORD16, corruption=WORD16)
    def test_protected_region_always_recovered(self, pattern, corruption):
        """Any number of faults inside run+1 MSBs is repaired."""
        emt = DreamEMT()
        stored, side = emt.encode(np.array([pattern]))
        run = int(sign_run_length(np.array([pattern]), 16)[0])
        protected = min(run + 1, 16)
        region = ((1 << protected) - 1) << (16 - protected)
        corrupted = (int(stored[0]) ^ (corruption & region)) & 0xFFFF
        decoded = int(emt.decode(np.array([corrupted]), side)[0])
        assert decoded == pattern

    @given(pattern=WORD16, corruption=WORD16)
    def test_unprotected_bits_pass_through(self, pattern, corruption):
        """Bits below the protected region are returned as stored."""
        emt = DreamEMT()
        stored, side = emt.encode(np.array([pattern]))
        run = int(sign_run_length(np.array([pattern]), 16)[0])
        protected = min(run + 1, 16)
        low_mask = (1 << (16 - protected)) - 1
        corrupted = (int(stored[0]) ^ corruption) & 0xFFFF
        decoded = int(emt.decode(np.array([corrupted]), side)[0])
        assert decoded & low_mask == corrupted & low_mask
        # And the protected top is still exact.
        region = ~low_mask & 0xFFFF
        assert decoded & region == pattern & region

    def test_full_word_reconstruction_for_constants(self, emt):
        for value in (0x0000, 0xFFFF):
            stored, side = emt.encode(np.array([value]))
            for corrupted in (0x0000, 0xFFFF, 0x5A5A, 0xA5A5):
                decoded = int(emt.decode(np.array([corrupted]), side)[0])
                assert decoded == value

    def test_decode_stats_counts_repairs(self, emt):
        payload = np.array([0x0001, 0x0002])
        stored, side = emt.encode(payload)
        corrupted = stored ^ 0x4000  # inside both protected runs
        stats = DecodeStats()
        emt.decode(corrupted, side, stats)
        assert stats.words == 2
        assert stats.corrected == 2

    def test_small_sample_fault_example_from_paper_motivation(self, emt):
        """An ADC sample with sign-extension MSBs survives MSB faults."""
        sample = np.array([-27 & 0xFFFF])  # 0xFFE5, run of 11 ones
        stored, side = emt.encode(sample)
        corrupted = np.array([int(stored[0]) & 0x07FF])  # clear 5 MSBs
        decoded = emt.decode(corrupted, side)
        assert int(to_signed(decoded, 16)[0]) == -27


class TestScalarReference:
    @given(pattern=WORD16)
    def test_encode_word_matches_vectorised(self, pattern):
        emt = DreamEMT()
        stored_vec, side_vec = emt.encode(np.array([pattern]))
        stored_ref, side_ref = emt.encode_word(pattern)
        assert stored_ref == int(stored_vec[0])
        assert side_ref == int(side_vec[0])

    @given(pattern=WORD16, corruption=WORD16)
    def test_decode_word_matches_vectorised(self, pattern, corruption):
        emt = DreamEMT()
        stored, side = emt.encode(np.array([pattern]))
        corrupted = (int(stored[0]) ^ corruption) & 0xFFFF
        vec = int(emt.decode(np.array([corrupted]), side)[0])
        ref = emt.decode_word(corrupted, int(side[0]))
        assert vec == ref

    def test_scalar_range_checks(self, emt):
        with pytest.raises(EMTError):
            emt.encode_word(-1)
        with pytest.raises(EMTError):
            emt.decode_word(0x10000, 0)
        with pytest.raises(EMTError):
            emt.decode_word(0, 1 << 5)


class TestProtectedBits:
    def test_protected_bits_matches_run_plus_one(self, emt):
        payload = np.array([0x7FFF, 0x0000, 0x0012])
        _, side = emt.encode(payload)
        protected = emt.protected_bits(side)
        assert protected.tolist() == [2, 16, 12]

    def test_ecg_samples_are_mostly_well_protected(self, short_samples):
        """Real ADC data has long sign runs — DREAM's premise."""
        emt = DreamEMT()
        _, side = emt.encode(to_unsigned(short_samples, 16))
        protected = emt.protected_bits(side)
        assert float(protected.mean()) > 6.0
