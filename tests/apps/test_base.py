"""Tests for the application base class and its quality contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.base import BiomedicalApp, clean_fabric
from repro.errors import SignalError
from repro.mem.fabric import MemoryFabric


class DoublerApp(BiomedicalApp):
    """Minimal concrete app for base-class testing: y = saturate(2x)."""

    name = "doubler"
    run_count = 0

    def run(self, samples, fabric: MemoryFabric):
        arr = self._check_samples(samples)
        type(self).run_count += 1
        stored = fabric.roundtrip("doubler.in", arr)
        out = np.clip(2 * stored, -32768, 32767)
        return fabric.roundtrip("doubler.out", out)


@pytest.fixture()
def app():
    DoublerApp.run_count = 0
    return DoublerApp()


class TestSampleValidation:
    def test_rejects_empty(self, app):
        with pytest.raises(SignalError):
            app.run(np.array([], dtype=np.int64), clean_fabric())

    def test_rejects_2d(self, app):
        with pytest.raises(SignalError):
            app.run(np.zeros((2, 2), dtype=np.int64), clean_fabric())

    def test_rejects_out_of_range(self, app):
        with pytest.raises(SignalError):
            app.run(np.array([32768]), clean_fabric())
        with pytest.raises(SignalError):
            app.run(np.array([-32769]), clean_fabric())

    def test_accepts_boundary_values(self, app):
        out = app.run(np.array([-32768, 32767]), clean_fabric())
        assert out.tolist() == [-32768, 32767]


class TestReferenceCache:
    def test_cached_by_content(self, app):
        samples = np.arange(-50, 50)
        first = app.reference_output(samples)
        second = app.reference_output(samples.copy())  # equal content
        assert first is second
        assert DoublerApp.run_count == 1

    def test_distinct_inputs_not_conflated(self, app):
        a = app.reference_output(np.array([1, 2, 3]))
        b = app.reference_output(np.array([4, 5, 6]))
        assert not np.array_equal(a, b)
        assert DoublerApp.run_count == 2


class TestOutputSnr:
    def test_cap_on_exact_output(self, app):
        samples = np.arange(100)
        out = app.run(samples, clean_fabric())
        assert app.output_snr(samples, out) == 96.0

    def test_custom_cap(self, app):
        samples = np.arange(100)
        out = app.run(samples, clean_fabric())
        assert app.output_snr(samples, out, cap_db=40.0) == 40.0

    def test_degrades_with_corruption(self, app):
        samples = np.arange(1, 101)
        reference = app.run(samples, clean_fabric())
        small = app.output_snr(samples, reference + 1)
        large = app.output_snr(samples, reference + 100)
        assert small > large

    def test_repr(self, app):
        assert "DoublerApp" in repr(app)
