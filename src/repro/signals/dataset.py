"""Deterministic catalog of MIT-BIH-like synthetic records.

PhysioNet is unreachable offline, so this module stands in for the MIT-BIH
Arrhythmia database the paper reads its test traces from.  Each catalog
entry pairs a rhythm description (pathology mix, heart rate, gain) with
noise levels and a fixed seed; loading the same record name always yields
the same trace, which keeps every experiment reproducible.

Record names follow the MIT-BIH numbering style (``"100"``, ``"106"``,
...), and the pathology assignments loosely mirror the character of the
real records with those numbers (e.g. record 106 is PVC-rich, 109 is LBBB,
107 is paced).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SignalError
from .noise import compose_noise
from .pathologies import RhythmSpec, generate_rhythm
from .quantize import DEFAULT_FULL_SCALE_MV, adc_quantize
from .synthesis import render_beats, rr_tachogram

__all__ = [
    "Record",
    "RecordSpec",
    "CATALOG",
    "default_catalog",
    "load_record",
    "synthesize_record",
]


#: Sampling rate of the MIT-BIH Arrhythmia database.
MITBIH_FS_HZ = 360.0


@dataclass(frozen=True)
class RecordSpec:
    """Static description of one synthetic record."""

    name: str
    rhythm: RhythmSpec
    wander_mv: float
    mains_mv: float
    emg_rms_mv: float
    seed: int
    description: str


@dataclass(frozen=True)
class Record:
    """A generated record: 16-bit samples plus ground-truth annotations.

    Attributes:
        name: catalog name (e.g. ``"106"``).
        fs_hz: sampling rate in Hz.
        samples: quantised 16-bit signed samples (``int64`` raw values).
        signal_mv: the pre-quantisation trace in millivolts.
        r_samples: ground-truth R-peak sample indices.
        labels: beat label per R peak (MIT-BIH symbols).
    """

    name: str
    fs_hz: float
    samples: np.ndarray
    signal_mv: np.ndarray
    r_samples: np.ndarray
    labels: list[str]

    @property
    def duration_s(self) -> float:
        """Record length in seconds."""
        return len(self.samples) / self.fs_hz


def _catalog() -> dict[str, RecordSpec]:
    specs = [
        RecordSpec(
            name="100",
            rhythm=RhythmSpec(mean_hr_bpm=75, ectopy={"A": 0.02, "V": 0.01}),
            wander_mv=0.10, mains_mv=0.02, emg_rms_mv=0.010, seed=100,
            description="normal sinus rhythm with sparse APCs/PVCs",
        ),
        RecordSpec(
            name="101",
            rhythm=RhythmSpec(mean_hr_bpm=68, std_hr_bpm=3.0, ectopy={"A": 0.02}),
            wander_mv=0.15, mains_mv=0.03, emg_rms_mv=0.015, seed=101,
            description="normal sinus rhythm, mild baseline wander",
        ),
        RecordSpec(
            name="103",
            rhythm=RhythmSpec(mean_hr_bpm=70, amplitude_gain=1.15),
            wander_mv=0.08, mains_mv=0.01, emg_rms_mv=0.008, seed=103,
            description="clean normal rhythm, higher electrode gain",
        ),
        RecordSpec(
            name="106",
            rhythm=RhythmSpec(mean_hr_bpm=78, ectopy={"V": 0.18}),
            wander_mv=0.12, mains_mv=0.02, emg_rms_mv=0.020, seed=106,
            description="frequent PVCs (ventricular bigeminy episodes)",
        ),
        RecordSpec(
            name="107",
            rhythm=RhythmSpec(base_label="/", mean_hr_bpm=71,
                              ectopy={"V": 0.03}),
            wander_mv=0.10, mains_mv=0.02, emg_rms_mv=0.012, seed=107,
            description="paced rhythm",
        ),
        RecordSpec(
            name="109",
            rhythm=RhythmSpec(base_label="L", mean_hr_bpm=82,
                              ectopy={"V": 0.02}),
            wander_mv=0.11, mains_mv=0.03, emg_rms_mv=0.015, seed=109,
            description="left bundle-branch block",
        ),
        RecordSpec(
            name="118",
            rhythm=RhythmSpec(base_label="R", mean_hr_bpm=74,
                              ectopy={"A": 0.04}),
            wander_mv=0.09, mains_mv=0.04, emg_rms_mv=0.014, seed=118,
            description="right bundle-branch block with APCs",
        ),
        RecordSpec(
            name="119",
            rhythm=RhythmSpec(mean_hr_bpm=66, ectopy={"V": 0.25},
                              prematurity=0.30),
            wander_mv=0.13, mains_mv=0.02, emg_rms_mv=0.018, seed=119,
            description="trigeminal PVCs with compensatory pauses",
        ),
        RecordSpec(
            name="200",
            rhythm=RhythmSpec(mean_hr_bpm=88, std_hr_bpm=4.5,
                              ectopy={"V": 0.15, "A": 0.03}),
            wander_mv=0.18, mains_mv=0.05, emg_rms_mv=0.030, seed=200,
            description="noisy record with mixed ectopy, elevated HR",
        ),
        RecordSpec(
            name="231",
            rhythm=RhythmSpec(base_label="R", mean_hr_bpm=58,
                              std_hr_bpm=2.0, amplitude_gain=0.85),
            wander_mv=0.07, mains_mv=0.02, emg_rms_mv=0.010, seed=231,
            description="bradycardic RBBB, low amplitude",
        ),
    ]
    return {spec.name: spec for spec in specs}


#: The default record catalog, keyed by record name.
CATALOG: dict[str, RecordSpec] = _catalog()


def default_catalog() -> list[str]:
    """Names of all records in the default catalog, sorted."""
    return sorted(CATALOG)


def load_record(
    name: str,
    duration_s: float = 30.0,
    full_scale_mv: float = DEFAULT_FULL_SCALE_MV,
) -> Record:
    """Generate (deterministically) the record ``name``.

    Args:
        name: a catalog record name (see :func:`default_catalog`).
        duration_s: trace length to synthesise, in seconds.
        full_scale_mv: ADC half-range used for quantisation.

    Returns:
        A fully annotated :class:`Record`.

    Raises:
        SignalError: if the record name is unknown or the duration is
            non-positive.
    """
    if name not in CATALOG:
        raise SignalError(
            f"unknown record {name!r}; available: {default_catalog()}"
        )
    return synthesize_record(
        CATALOG[name], duration_s=duration_s, full_scale_mv=full_scale_mv
    )


def synthesize_record(
    spec: RecordSpec,
    duration_s: float = 30.0,
    full_scale_mv: float = DEFAULT_FULL_SCALE_MV,
) -> Record:
    """Synthesise a record from an arbitrary :class:`RecordSpec`.

    This is :func:`load_record` without the catalog lookup: callers (e.g.
    the adaptive-runtime mission simulator) can derive variants of a
    catalog entry — amplified noise for a motion-artifact episode, a
    different rhythm for a pathology episode — and synthesise them with
    the same deterministic pipeline.  The same spec always yields the
    same trace.
    """
    if duration_s <= 0:
        raise SignalError(f"duration must be positive, got {duration_s}")
    rng = np.random.default_rng(spec.seed)

    n_beats = int(np.ceil(duration_s * spec.rhythm.mean_hr_bpm / 60.0)) + 2
    rr = rr_tachogram(
        n_beats,
        mean_hr_bpm=spec.rhythm.mean_hr_bpm,
        std_hr_bpm=spec.rhythm.std_hr_bpm,
        rng=rng,
    )
    morphologies, rr_scale = generate_rhythm(spec.rhythm, n_beats, rng)
    rr = rr * rr_scale
    r_times = np.cumsum(rr) - rr[0] + 0.35
    keep = r_times < duration_s
    kept_times = r_times[keep]
    kept_morphs = [m for m, k in zip(morphologies, keep) if k]

    clean = render_beats(kept_times, kept_morphs, MITBIH_FS_HZ, duration_s)
    noise = compose_noise(
        len(clean),
        MITBIH_FS_HZ,
        rng,
        wander_mv=spec.wander_mv,
        mains_mv=spec.mains_mv,
        emg_rms_mv=spec.emg_rms_mv,
    )
    signal_mv = clean + noise
    samples = adc_quantize(signal_mv, full_scale_mv)
    return Record(
        name=spec.name,
        fs_hz=MITBIH_FS_HZ,
        samples=samples,
        signal_mv=signal_mv,
        r_samples=np.round(kept_times * MITBIH_FS_HZ).astype(np.int64),
        labels=[m.label for m in kept_morphs],
    )
