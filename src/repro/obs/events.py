"""The trace-event schema: one JSON object per line, three event kinds.

Everything observability-related in this repo — run traces written by
:mod:`repro.obs.core`, the ``repro report`` renderer, the cache event
log statistics, and the benchmark harness's BENCH artefacts — speaks
this one schema, so a single reader (:mod:`repro.obs.report`) can
consume any of it.

Event kinds (the ``event`` key):

* ``run`` — the run-start marker: names the trace and records the
  schema version, wall-clock start and originating process.
* ``span`` — one *closed* span: a named, timed unit of work with a
  ``parent`` span id (``None`` for a root), a ``status`` (``"ok"`` or
  ``"failed"``), and free-form JSON-safe ``attrs``.  Spans written by
  worker processes carry the parent span id propagated from the
  process that spawned them, so the tree spans process boundaries.
  Spans may additionally carry ``cpu_s`` — the CPU seconds
  (``time.process_time`` delta) the process consumed while the span
  was open — written by tracers from schema revision 1.5 on; readers
  treat the key as optional, so older traces stay loadable.
* ``metric`` — one measurement: a ``counter`` (delta to sum), a
  ``gauge`` (last write wins), or a ``histogram`` (an aggregated
  ``{"count", "sum", "min", "max"}`` summary).

Common keys on every event: ``event``, ``trace`` (the run id), ``t``
(wall-clock unix seconds) and ``pid``.  The constructors below are the
only writers; :func:`validate_event` is the reader-side contract that
``repro report`` enforces (a malformed line is a hard error, not a
skip — a trace that lies is worse than no trace).
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "METRIC_KINDS",
    "SPAN_STATUSES",
    "run_event",
    "span_event",
    "metric_event",
    "histogram_summary",
    "validate_event",
]

#: Version stamped into every ``run`` event (readers reject unknowns).
SCHEMA_VERSION = 1

#: Valid values of the ``event`` key.
EVENT_KINDS = ("run", "span", "metric")

#: Valid values of a metric event's ``kind`` key.
METRIC_KINDS = ("counter", "gauge", "histogram")

#: Valid values of a span event's ``status`` key.
SPAN_STATUSES = ("ok", "failed")

#: Keys a histogram metric's value summary must carry.
_HISTOGRAM_KEYS = ("count", "sum", "min", "max")


def run_event(
    trace: str, name: str, t: float, pid: int,
    attrs: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The run-start marker event of one trace."""
    return {
        "event": "run",
        "v": SCHEMA_VERSION,
        "trace": trace,
        "name": name,
        "t": t,
        "pid": pid,
        "attrs": dict(attrs or {}),
    }


def span_event(
    trace: str,
    span: str,
    parent: str | None,
    name: str,
    t: float,
    dur_s: float,
    pid: int,
    status: str = "ok",
    attrs: dict[str, Any] | None = None,
    error: str | None = None,
    cpu_s: float | None = None,
) -> dict[str, Any]:
    """One closed span: a named, timed unit of work in the trace tree."""
    payload: dict[str, Any] = {
        "event": "span",
        "trace": trace,
        "span": span,
        "parent": parent,
        "name": name,
        "t": t,
        "dur_s": dur_s,
        "pid": pid,
        "status": status,
        "attrs": dict(attrs or {}),
    }
    if error is not None:
        payload["error"] = error
    if cpu_s is not None:
        payload["cpu_s"] = cpu_s
    return payload


def metric_event(
    trace: str,
    name: str,
    kind: str,
    value: Any,
    t: float,
    pid: int,
    attrs: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """One measurement: counter delta, gauge write, or histogram summary."""
    return {
        "event": "metric",
        "trace": trace,
        "name": name,
        "kind": kind,
        "value": value,
        "t": t,
        "pid": pid,
        "attrs": dict(attrs or {}),
    }


def histogram_summary(
    count: int, total: float, minimum: float, maximum: float
) -> dict[str, float]:
    """The aggregated value payload of a ``histogram`` metric event."""
    return {
        "count": int(count),
        "sum": float(total),
        "min": float(minimum),
        "max": float(maximum),
    }


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event(payload: Any) -> list[str]:
    """Problems with one parsed trace event (empty list when valid).

    This is the reader-side schema contract: ``repro report`` runs it
    over every line and exits non-zero on the first violation.  The
    check is structural, not semantic — a span may reference a parent
    the file never closed (the process was killed mid-span); the tree
    builder treats such spans as roots.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["event is not a JSON object"]
    kind = payload.get("event")
    if kind not in EVENT_KINDS:
        return [f"unknown event kind {kind!r}"]
    for key, types in (("trace", str), ("pid", int)):
        if not isinstance(payload.get(key), types):
            problems.append(f"{kind} event missing/invalid {key!r}")
    if not _is_number(payload.get("t")):
        problems.append(f"{kind} event missing/invalid 't'")
    if not isinstance(payload.get("attrs", {}), dict):
        problems.append(f"{kind} event 'attrs' is not an object")

    if kind == "run":
        if payload.get("v") != SCHEMA_VERSION:
            problems.append(
                f"run event schema version {payload.get('v')!r} "
                f"!= {SCHEMA_VERSION}"
            )
        if not isinstance(payload.get("name"), str):
            problems.append("run event missing/invalid 'name'")
    elif kind == "span":
        if not isinstance(payload.get("span"), str):
            problems.append("span event missing/invalid 'span' id")
        parent = payload.get("parent")
        if parent is not None and not isinstance(parent, str):
            problems.append("span event 'parent' is neither null nor a string")
        if not isinstance(payload.get("name"), str):
            problems.append("span event missing/invalid 'name'")
        if not _is_number(payload.get("dur_s")):
            problems.append("span event missing/invalid 'dur_s'")
        if payload.get("status") not in SPAN_STATUSES:
            problems.append(
                f"span event status {payload.get('status')!r} not in "
                f"{SPAN_STATUSES}"
            )
        if "cpu_s" in payload and not _is_number(payload["cpu_s"]):
            problems.append("span event 'cpu_s' is not numeric")
    elif kind == "metric":
        if not isinstance(payload.get("name"), str):
            problems.append("metric event missing/invalid 'name'")
        mkind = payload.get("kind")
        if mkind not in METRIC_KINDS:
            problems.append(f"metric kind {mkind!r} not in {METRIC_KINDS}")
        value = payload.get("value")
        if mkind == "histogram":
            if not isinstance(value, dict) or any(
                not _is_number(value.get(key)) for key in _HISTOGRAM_KEYS
            ):
                problems.append(
                    "histogram value must be a "
                    "{count, sum, min, max} summary"
                )
        elif mkind in ("counter", "gauge") and not _is_number(value):
            problems.append(f"{mkind} value must be numeric")
    return problems
