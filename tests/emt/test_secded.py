"""Tests of the Hamming (22,16) SEC/DED comparator.

The behaviour the paper's Fig 4c depends on (design decision D4):
single errors anywhere in the codeword are corrected, double errors are
detected but returned uncorrected, and the check bits themselves are
fault-exposed (they live in the scaled memory).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emt import DecodeStats, SecDedEMT
from repro.emt.secded import hamming_check_bits
from repro.errors import EMTError

WORD16 = st.integers(min_value=0, max_value=0xFFFF)


@pytest.fixture(scope="module")
def emt():
    return SecDedEMT()


class TestConstruction:
    def test_check_bit_count_formula(self):
        assert hamming_check_bits(16) == 5
        assert hamming_check_bits(8) == 4
        assert hamming_check_bits(32) == 6
        assert hamming_check_bits(64) == 7

    def test_check_bits_rejects_non_positive(self):
        with pytest.raises(EMTError):
            hamming_check_bits(0)

    def test_geometry_matches_section_v(self, emt):
        """2 + log2(16) = 6 extra bits, all in the faulty memory."""
        assert emt.stored_bits == 22
        assert emt.extra_bits == 6
        assert emt.side_bits == 0

    @pytest.mark.parametrize("bits,stored", [(8, 13), (16, 22), (32, 39)])
    def test_other_word_sizes(self, bits, stored):
        assert SecDedEMT(data_bits=bits).stored_bits == stored


class TestEncode:
    def test_data_bits_are_systematic(self, emt, rng):
        payload = rng.integers(0, 1 << 16, size=1000, dtype=np.int64)
        stored, side = emt.encode(payload)
        assert side is None
        assert np.array_equal(stored & 0xFFFF, payload)

    def test_codeword_has_even_overall_parity(self, emt, rng):
        payload = rng.integers(0, 1 << 16, size=1000, dtype=np.int64)
        stored, _ = emt.encode(payload)
        assert np.all(np.bitwise_count(stored) % 2 == 0)

    def test_rejects_out_of_range(self, emt):
        with pytest.raises(EMTError):
            emt.encode(np.array([1 << 16]))


class TestSingleErrorCorrection:
    @pytest.mark.parametrize("position", range(22))
    def test_corrects_each_position(self, emt, position, rng):
        payload = rng.integers(0, 1 << 16, size=200, dtype=np.int64)
        stored, _ = emt.encode(payload)
        stats = DecodeStats()
        decoded = emt.decode(stored ^ (1 << position), None, stats)
        assert np.array_equal(decoded, payload)
        assert stats.detected_uncorrectable == 0
        # Flipping a check bit still counts as a corrected codeword.
        assert stats.corrected == 200

    @given(pattern=WORD16, position=st.integers(min_value=0, max_value=21))
    def test_single_error_property(self, pattern, position):
        emt = SecDedEMT()
        stored, _ = emt.encode(np.array([pattern]))
        decoded = emt.decode(stored ^ (1 << position), None)
        assert int(decoded[0]) == pattern


class TestDoubleErrorDetection:
    @given(
        pattern=WORD16,
        pair=st.tuples(
            st.integers(min_value=0, max_value=21),
            st.integers(min_value=0, max_value=21),
        ).filter(lambda p: p[0] != p[1]),
    )
    def test_double_error_detected_never_miscorrected(self, pattern, pair):
        emt = SecDedEMT()
        stored, _ = emt.encode(np.array([pattern]))
        corrupted = stored ^ (1 << pair[0]) ^ (1 << pair[1])
        stats = DecodeStats()
        decoded = emt.decode(corrupted, None, stats)
        assert stats.detected_uncorrectable == 1
        assert stats.corrected == 0
        # The decoder returns the raw data bits, untouched.
        assert int(decoded[0]) == int(corrupted[0]) & 0xFFFF

    def test_exhaustive_double_errors_one_payload(self, emt):
        stored, _ = emt.encode(np.array([0x2B3C]))
        for i, j in itertools.combinations(range(22), 2):
            corrupted = stored ^ (1 << i) ^ (1 << j)
            stats = DecodeStats()
            emt.decode(corrupted, None, stats)
            assert stats.detected_uncorrectable == 1, (i, j)


class TestTripleErrors:
    @settings(max_examples=50)
    @given(
        pattern=WORD16,
        triple=st.sets(
            st.integers(min_value=0, max_value=21), min_size=3, max_size=3
        ),
    )
    def test_triple_errors_never_crash(self, pattern, triple):
        """>= 3 errors may alias (even miscorrect) but must decode."""
        emt = SecDedEMT()
        stored, _ = emt.encode(np.array([pattern]))
        corrupted = stored.copy()
        for position in triple:
            corrupted ^= 1 << position
        decoded = emt.decode(corrupted, None)
        assert 0 <= int(decoded[0]) <= 0xFFFF


class TestScalarReference:
    @given(pattern=WORD16)
    def test_encode_word_matches_vectorised(self, pattern):
        emt = SecDedEMT()
        stored_vec, _ = emt.encode(np.array([pattern]))
        stored_ref, _ = emt.encode_word(pattern)
        assert stored_ref == int(stored_vec[0])

    @given(
        pattern=WORD16,
        corruption=st.integers(min_value=0, max_value=(1 << 22) - 1),
    )
    def test_decode_word_matches_vectorised(self, pattern, corruption):
        emt = SecDedEMT()
        stored, _ = emt.encode(np.array([pattern]))
        corrupted = int(stored[0]) ^ corruption
        vec = int(emt.decode(np.array([corrupted]), None)[0])
        ref = emt.decode_word(corrupted, 0)
        assert vec == ref

    def test_scalar_range_checks(self, emt):
        with pytest.raises(EMTError):
            emt.encode_word(1 << 16)
        with pytest.raises(EMTError):
            emt.decode_word(1 << 22, 0)


class TestCodeDistance:
    def test_minimum_distance_is_four(self, emt):
        """SEC/DED requires d_min = 4; verify on a codeword sample."""
        payloads = np.arange(0, 1 << 16, 977, dtype=np.int64)  # ~67 words
        stored, _ = emt.encode(payloads)
        words = stored.tolist()
        for i in range(len(words)):
            for j in range(i + 1, len(words)):
                distance = bin(words[i] ^ words[j]).count("1")
                assert distance >= 4, (hex(words[i]), hex(words[j]))
