"""Parallel design-space-exploration campaigns over the paper's grid.

The paper's contribution is an *exploration* of the energy-vs-reliability
space — supply voltage x EMT x application x fault model x record x SoC
configuration.  This package turns that exploration into a first-class,
scalable subsystem:

* :mod:`repro.campaign.spec` — a declarative :class:`CampaignSpec`
  naming the grid's axes, shared parameters and filters;
* :mod:`repro.campaign.evaluators` — pure per-point scoring functions
  (Monte-Carlo quality, bit-position significance, energy accounting,
  closed-loop missions, population cohorts) with deterministic seeding;
* :mod:`repro.campaign.runner` — :func:`run_campaign`, fanning points
  across a ``multiprocessing`` pool with progress reporting and graceful
  failure capture;
* :mod:`repro.campaign.store` — an append-only JSONL
  :class:`ResultStore` keyed by each point's content hash, so re-running
  a campaign resumes instead of recomputing;
* :mod:`repro.campaign.analysis` — Pareto frontiers, pivot tables and
  Section VI-C trade-off extraction over stored results.

The experiment drivers in :mod:`repro.exp` express their grids as
campaign specs executed through this runner, and the ``repro sweep`` CLI
subcommand exposes ad-hoc campaigns from the command line.
"""

from .analysis import (
    OperatingPoint,
    extract_tradeoff,
    format_pivot,
    pareto_frontier,
    pivot_table,
    quality_energy_rows,
    record_value,
)
from .evaluators import (
    EVALUATORS,
    evaluate_point,
    grid_seed,
    measured_workload,
    register_evaluator,
    technology_from_dict,
    technology_to_dict,
)
from .runner import CampaignResult, run_campaign
from .spec import CampaignPoint, CampaignSpec, canonical_json, content_hash
from .store import ResultStore, ShardedResultStore, default_store_root

__all__ = [
    "CampaignSpec",
    "CampaignPoint",
    "canonical_json",
    "content_hash",
    "CampaignResult",
    "run_campaign",
    "ResultStore",
    "ShardedResultStore",
    "default_store_root",
    "EVALUATORS",
    "register_evaluator",
    "evaluate_point",
    "grid_seed",
    "measured_workload",
    "technology_to_dict",
    "technology_from_dict",
    "OperatingPoint",
    "record_value",
    "pareto_frontier",
    "pivot_table",
    "format_pivot",
    "quality_energy_rows",
    "extract_tradeoff",
]
