"""The run registry: a persistent index of every traced run.

PR 6's traces made single runs inspectable; this module makes *runs*
addressable.  A :class:`RunRegistry` is one append-only JSONL file
(``registry.jsonl``) living beside the per-run trace sinks, recording
each run's identity (content-hash run id, experiment name/kind, spec
digest), lifecycle (``running`` -> ``ok``/``failed``, start/end
timestamps, wall time), host metadata, and headline metrics — enough to
list, filter, tail and *compare* runs without opening any trace:

* ``repro runs`` lists/filters the index;
* ``repro watch <run-id|latest>`` resolves the live trace sink through
  it and uses its status to know when a run has finished;
* ``repro report --diff`` resolves two registered runs by id and — via
  the host metadata — tells you when a wall-time delta is really a
  machine delta (the cross-device-comparability requirement of the
  Samakovlis et al. benchmarking methodology).

Writes follow the tracer's discipline: one ``flock``-serialised append
per record, last record per run id wins on load (``register`` then
``finalize`` appends two records; a re-run appends a fresh pair).
Unlike a trace — where a malformed event is a hard error — a torn
registry line (a run killed mid-append) is *skipped* on load: the
registry is operational state, and a crashed run must never brick
``repro runs`` for every run that came after it.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ObsError

__all__ = [
    "REGISTRY_BASENAME",
    "RUN_STATUSES",
    "STALE_STATUS",
    "RunRecord",
    "RunRegistry",
    "host_metadata",
    "pid_alive",
]

#: The registry file's name inside a trace directory.
REGISTRY_BASENAME = "registry.jsonl"

#: Valid run lifecycle states.  ``interrupted`` is terminal: the run
#: was cancelled (SIGINT/SIGTERM or an injected interrupt) after its
#: completed work was persisted, so it can be resumed by re-running.
RUN_STATUSES = ("running", "ok", "failed", "interrupted")

#: The computed (never stored) status of a ``running`` record whose
#: owner process is dead — accepted by :meth:`RunRegistry.runs` as a
#: filter and rendered by ``repro runs``.
STALE_STATUS = "stale"


def pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    except OSError:  # pragma: no cover - e.g. invalid pid value
        return False
    # Signal 0 succeeds for zombies, but a zombie finished long ago and
    # merely awaits its parent's wait() — for liveness purposes (stale
    # runs, daemon ownership) it is dead.  /proc exposes the state on
    # Linux; elsewhere we keep the signal-0 answer.
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            fields = handle.read().rpartition(b") ")[2]
    except OSError:
        return True
    return fields[:1] != b"Z"


def host_metadata() -> dict[str, Any]:
    """The environment fingerprint stamped on every registered run.

    Enough to decide whether two runs are comparable: interpreter,
    platform/machine, core count, library version, and host name.
    """
    from .. import __version__

    return {
        "python": platform.python_version(),
        "platform": platform.system().lower() or os.name,
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "repro": __version__,
        "hostname": socket.gethostname(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One run's registry entry (the latest appended state wins).

    Attributes:
        run_id: the content-hash-keyed trace/run id
            (:meth:`repro.api.session.Session.run_id_for`).
        name: the experiment's name.
        kind: the experiment kind (``figure``/``sweep``/``mission``/
            ``cohort``), or ``""`` for runs registered outside the
            session.
        spec_digest: the experiment's full canonical content hash.
        status: ``running`` | ``ok`` | ``failed`` | ``interrupted``.
        started_at / ended_at: wall-clock unix seconds (``ended_at`` is
            ``None`` while running).
        wall_s: measured wall time of the run (``None`` while running).
        trace_path: the run's JSONL sink.
        host: :func:`host_metadata` captured at registration.
        metrics: headline metrics recorded at finalization (points
            executed/cached/failed, plus anything the caller adds).
        error: failure text when ``status == "failed"``.
        peak_rss_bytes: the owner process's peak resident set at
            finalization (``None`` for records written before schema
            revision 1.5 — readers render a blank).
        cpu_s: CPU seconds the owner process burned over the run
            (``time.process_time`` delta; ``None`` pre-1.5).
        pid: the owner process's pid, stamped at registration (``None``
            pre-1.6).  While ``status == "running"``, a dead owner pid
            on the same host marks the record *stale* — the run crashed
            without finalizing.
    """

    run_id: str
    name: str = ""
    kind: str = ""
    spec_digest: str = ""
    status: str = "running"
    started_at: float = 0.0
    ended_at: float | None = None
    wall_s: float | None = None
    trace_path: str = ""
    host: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    peak_rss_bytes: int | None = None
    cpu_s: float | None = None
    pid: int | None = None

    def is_stale(self) -> bool:
        """A ``running`` record whose owner process is provably dead.

        Conservative: only decidable on the host that ran it (pid
        liveness means nothing across machines) and only for records
        that carry a pid — anything else is assumed live.
        """
        if self.status != "running" or self.pid is None:
            return False
        if self.host.get("hostname") not in (None, socket.gethostname()):
            return False
        return not pid_alive(self.pid)

    def effective_status(self) -> str:
        """The status to render: ``stale`` for dead-owner running rows."""
        return STALE_STATUS if self.is_stale() else self.status

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form, exactly what one registry line carries."""
        payload: dict[str, Any] = {
            "run_id": self.run_id,
            "name": self.name,
            "kind": self.kind,
            "spec_digest": self.spec_digest,
            "status": self.status,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "wall_s": self.wall_s,
            "trace_path": self.trace_path,
            "host": dict(self.host),
            "metrics": dict(self.metrics),
        }
        # Resource fields (schema revision 1.5) are written only when
        # known — older readers never see unexpected keys, and records
        # written by older code simply lack them (rendered blank).
        if self.error is not None:
            payload["error"] = self.error
        if self.peak_rss_bytes is not None:
            payload["peak_rss_bytes"] = self.peak_rss_bytes
        if self.cpu_s is not None:
            payload["cpu_s"] = self.cpu_s
        if self.pid is not None:
            payload["pid"] = self.pid
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunRecord":
        """Rebuild a record from one parsed registry line."""
        return cls(
            run_id=str(payload["run_id"]),
            name=str(payload.get("name", "")),
            kind=str(payload.get("kind", "")),
            spec_digest=str(payload.get("spec_digest", "")),
            status=str(payload.get("status", "running")),
            started_at=float(payload.get("started_at", 0.0)),
            ended_at=payload.get("ended_at"),
            wall_s=payload.get("wall_s"),
            trace_path=str(payload.get("trace_path", "")),
            host=dict(payload.get("host", {})),
            metrics=dict(payload.get("metrics", {})),
            error=payload.get("error"),
            peak_rss_bytes=payload.get("peak_rss_bytes"),
            cpu_s=payload.get("cpu_s"),
            pid=payload.get("pid"),
        )


def _valid_line(payload: Any) -> bool:
    """A registry line is usable when it names a run id and a status."""
    return (
        isinstance(payload, dict)
        and isinstance(payload.get("run_id"), str)
        and payload["run_id"] != ""
        and payload.get("status") in RUN_STATUSES
    )


class RunRegistry:
    """The run index of one trace directory.

    Args:
        root: the trace directory the registry lives in (the registry
            file is ``<root>/registry.jsonl``).

    Example:
        >>> import tempfile
        >>> registry = RunRegistry(tempfile.mkdtemp())
        >>> _ = registry.register("demo-abc123", name="demo", kind="sweep")
        >>> _ = registry.finalize("demo-abc123", "ok", wall_s=1.5)
        >>> registry.latest().status
        'ok'
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.path = self.root / REGISTRY_BASENAME

    # -- writes ------------------------------------------------------------

    def _append(self, record: RunRecord) -> RunRecord:
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        with open(self.path, "a", encoding="utf-8") as handle:
            try:
                import fcntl

                fcntl.flock(handle, fcntl.LOCK_EX)
            except (ImportError, OSError):  # pragma: no cover - non-POSIX
                pass
            handle.write(line)
        return record

    def register(
        self,
        run_id: str,
        name: str = "",
        kind: str = "",
        spec_digest: str = "",
        trace_path: Path | str = "",
        started_at: float | None = None,
        pid: int | None = None,
    ) -> RunRecord:
        """Append a ``running`` record for a run that just started.

        The owner pid is stamped so readers (``repro runs``, ``repro
        watch``) can tell a live run from one whose process crashed
        without finalizing.  ``pid`` overrides the default
        (``os.getpid()``) for runs registered *on behalf of* another
        process — the experiment service registers each accepted job
        with the daemon's pid at submit time, so stale/dead heuristics
        track the process that actually owns the run, never the
        submitting CLI's (already exited) pid.
        """
        if not run_id:
            raise ObsError("registry run_id must be non-empty")
        return self._append(
            RunRecord(
                run_id=run_id,
                name=name,
                kind=kind,
                spec_digest=spec_digest,
                status="running",
                started_at=(
                    time.time() if started_at is None else started_at
                ),
                trace_path=str(trace_path),
                host=host_metadata(),
                pid=os.getpid() if pid is None else pid,
            )
        )

    def finalize(
        self,
        run_id: str,
        status: str,
        wall_s: float | None = None,
        metrics: dict[str, Any] | None = None,
        error: str | None = None,
        ended_at: float | None = None,
        peak_rss_bytes: int | None = None,
        cpu_s: float | None = None,
    ) -> RunRecord:
        """Append the run's terminal record (``ok`` / ``failed`` /
        ``interrupted``).

        Carries the registration's identity/host fields forward, so the
        latest line is self-contained — readers never need to merge.
        A finalize for a run id that was never registered still works
        (the record is simply sparse); that keeps the registry usable
        for runs traced by code that predates registration.
        """
        if status not in ("ok", "failed", "interrupted"):
            raise ObsError(
                "finalize status must be 'ok', 'failed' or 'interrupted',"
                f" got {status!r}"
            )
        previous = self.get(run_id)
        base = (
            previous
            if previous is not None
            else RunRecord(run_id=run_id, host=host_metadata())
        )
        ended = time.time() if ended_at is None else ended_at
        return self._append(
            RunRecord(
                run_id=run_id,
                name=base.name,
                kind=base.kind,
                spec_digest=base.spec_digest,
                status=status,
                started_at=base.started_at,
                ended_at=ended,
                wall_s=wall_s,
                trace_path=base.trace_path,
                host=dict(base.host),
                metrics=dict(metrics or {}),
                error=error,
                peak_rss_bytes=peak_rss_bytes,
                cpu_s=cpu_s,
                pid=base.pid,
            )
        )

    # -- reads -------------------------------------------------------------

    def load(self) -> dict[str, RunRecord]:
        """All runs, keyed by run id — the last record per id wins.

        Unparsable or structurally invalid lines (torn writes from
        killed processes) are skipped, not fatal.
        """
        if not self.path.is_file():
            return {}
        runs: dict[str, RunRecord] = {}
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not _valid_line(payload):
                continue
            record = RunRecord.from_dict(payload)
            runs[record.run_id] = record
        return runs

    def get(self, run_id: str) -> RunRecord | None:
        """The latest record of one run, or ``None``."""
        return self.load().get(run_id)

    def runs(
        self,
        kind: str | None = None,
        status: str | None = None,
        name: str | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Filtered run records, newest start first.

        Args:
            kind: keep runs of this experiment kind only.
            status: keep runs in this lifecycle state only.  The
                computed ``"stale"`` selects ``running`` records whose
                owner process is dead; plain ``"running"`` excludes
                them — a crashed run no longer masquerades as live.
            name: keep runs whose experiment name contains this
                substring.
            limit: keep at most this many (after sorting).
        """
        if status is not None and status not in (
            *RUN_STATUSES, STALE_STATUS,
        ):
            raise ObsError(
                f"unknown run status {status!r}; "
                f"valid: {(*RUN_STATUSES, STALE_STATUS)}"
            )
        selected = [
            record
            for record in self.load().values()
            if (kind is None or record.kind == kind)
            and (status is None or record.effective_status() == status)
            and (name is None or name in record.name)
        ]
        selected.sort(key=lambda record: record.started_at, reverse=True)
        if limit is not None:
            selected = selected[: max(0, limit)]
        return selected

    def prune_stale(self) -> list[RunRecord]:
        """Finalize every stale run as ``interrupted``; return them.

        The terminal record notes the dead owner pid, so ``repro runs``
        stops listing the run as live and ``repro watch`` refuses to
        wait on it.  Safe to run repeatedly — already-terminal runs are
        untouched.
        """
        pruned = []
        for record in self.load().values():
            if not record.is_stale():
                continue
            pruned.append(
                self.finalize(
                    record.run_id,
                    "interrupted",
                    error=(
                        f"pruned: owner pid {record.pid} died without "
                        "finalizing"
                    ),
                )
            )
        return pruned

    def latest(
        self, kind: str | None = None, status: str | None = None
    ) -> RunRecord | None:
        """The most recently started run matching the filters, if any."""
        matches = self.runs(kind=kind, status=status, limit=1)
        return matches[0] if matches else None
