"""Tests for the matrix-filtering application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import MatrixFilterApp
from repro.apps.base import clean_fabric
from repro.apps.matrix_filter import fixed_point_matmul, gaussian_filter_matrix
from repro.errors import SignalError
from repro.fixedpoint import Q15
from repro.mem import MemoryFabric, position_fault_map
from repro.emt import NoProtection


class TestFilterMatrix:
    def test_rows_sum_to_unity(self):
        matrix = gaussian_filter_matrix(16)
        sums = Q15.to_float(matrix).sum(axis=1)
        assert np.allclose(sums, 1.0, atol=16 / 32768)

    def test_symmetric_band_structure(self):
        matrix = gaussian_filter_matrix(16, sigma=2.0)
        # Diagonal dominates, energy decays away from it.
        assert int(matrix[8, 8]) > int(matrix[8, 10]) > int(matrix[8, 13])

    def test_validation(self):
        with pytest.raises(SignalError):
            gaussian_filter_matrix(1)
        with pytest.raises(SignalError):
            gaussian_filter_matrix(8, sigma=0.0)


class TestFixedPointMatmul:
    def test_matches_float_reference(self, rng):
        a = Q15.from_float(rng.uniform(-0.05, 0.05, size=(16, 16)))
        b = rng.integers(-20000, 20000, size=(16, 8))
        got = fixed_point_matmul(a, b)
        expected = (Q15.to_float(a) @ b).round()
        assert np.all(np.abs(got - expected) <= 2)

    def test_saturates(self):
        a = np.full((2, 2), 32767, dtype=np.int64)
        b = np.full((2, 2), 32767, dtype=np.int64)
        out = fixed_point_matmul(a, b)
        assert np.all(out == 32767)

    def test_shape_validation(self):
        with pytest.raises(SignalError):
            fixed_point_matmul(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_identity_times_vector(self):
        identity = np.zeros((4, 4), dtype=np.int64)
        np.fill_diagonal(identity, Q15.max_int)
        b = np.array([[100], [-200], [300], [-400]], dtype=np.int64)
        out = fixed_point_matmul(identity, b)
        # Q15 "1.0" is 32767/32768, so values shrink by at most 1 LSB.
        assert np.all(np.abs(out - b) <= 1)


class TestMatrixFilterApp:
    def test_output_preserves_length(self, record_100):
        app = MatrixFilterApp()
        samples = record_100.samples[: 32 * 32 + 100]
        out = app.run(samples, clean_fabric())
        assert out.shape == samples.shape

    def test_filtering_smooths_signal(self, record_100):
        app = MatrixFilterApp(n_iterations=2)
        samples = record_100.samples[: 32 * 32]
        out = app.run(samples, clean_fabric())
        assert float(np.abs(np.diff(out)).mean()) < float(
            np.abs(np.diff(samples)).mean()
        )

    def test_more_iterations_smooth_more(self, record_100):
        samples = record_100.samples[: 32 * 32]
        rough = MatrixFilterApp(n_iterations=1).run(samples, clean_fabric())
        smooth = MatrixFilterApp(n_iterations=4).run(samples, clean_fabric())
        assert float(np.abs(np.diff(smooth)).mean()) < float(
            np.abs(np.diff(rough)).mean()
        )

    def test_single_fault_spreads_to_many_outputs(self, record_100):
        """The paper's Fig 2 observation: one error hits a full row/col."""
        samples = record_100.samples[: 32 * 32]
        app = MatrixFilterApp(n_iterations=1)
        reference = app.reference_output(samples)
        # A stuck MSB in the coefficient buffer region corrupts one
        # coefficient word; through C = A @ B it touches a whole row.
        fm = position_fault_map(16384, 16, 14, 1)
        fabric = MemoryFabric(NoProtection(), fault_map=fm)
        corrupted = app.run(samples, fabric)
        changed = int(np.count_nonzero(corrupted != reference))
        assert changed > samples.size // 2

    def test_validation(self):
        with pytest.raises(SignalError):
            MatrixFilterApp(block_size=1)
        with pytest.raises(SignalError):
            MatrixFilterApp(n_iterations=0)

    def test_msb_vs_lsb_sensitivity(self, record_100):
        samples = record_100.samples[: 32 * 32]
        app = MatrixFilterApp()
        snrs = {}
        for position in (1, 13):
            fm = position_fault_map(16384, 16, position, 0)
            fabric = MemoryFabric(NoProtection(), fault_map=fm)
            out = app.run(samples, fabric)
            snrs[position] = app.output_snr(samples, out)
        assert snrs[13] < snrs[1]
