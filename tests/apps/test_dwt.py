"""Tests for the à-trous DWT application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import DwtApp
from repro.apps.base import clean_fabric
from repro.apps.dwt import atrous_decompose, atrous_highpass, atrous_lowpass
from repro.errors import SignalError
from repro.mem import MemoryFabric, position_fault_map
from repro.emt import NoProtection


class TestAtrousFilters:
    def test_lowpass_preserves_dc(self):
        constant = np.full(256, 1000, dtype=np.int64)
        out = atrous_lowpass(constant, 1)
        assert np.all(out == 1000)

    def test_highpass_kills_dc(self):
        constant = np.full(256, 1000, dtype=np.int64)
        out = atrous_highpass(constant, 1)
        assert np.all(out == 0)

    def test_highpass_responds_to_step(self):
        step = np.concatenate(
            [np.zeros(128, dtype=np.int64), np.full(128, 1000, dtype=np.int64)]
        )
        out = atrous_highpass(step, 1)
        assert int(np.abs(out).max()) == 2000  # gain-2 first difference

    def test_lowpass_smooths(self, short_samples):
        out = atrous_lowpass(short_samples, 1)
        assert float(np.abs(np.diff(out)).mean()) <= float(
            np.abs(np.diff(short_samples)).mean()
        ) + 1

    def test_scale_validation(self):
        with pytest.raises(SignalError):
            atrous_lowpass(np.zeros(8, dtype=np.int64), 0)
        with pytest.raises(SignalError):
            atrous_highpass(np.zeros(8, dtype=np.int64), -1)

    def test_decompose_shapes(self, short_samples):
        details, approx = atrous_decompose(short_samples, 4)
        assert len(details) == 4
        for detail in details:
            assert detail.shape == short_samples.shape
        assert approx.shape == short_samples.shape

    def test_decompose_requires_scales(self, short_samples):
        with pytest.raises(SignalError):
            atrous_decompose(short_samples, 0)

    def test_qrs_energy_concentrates_at_scale_2(self, record_100):
        """The delineation premise: QRS shows up in d2 modulus maxima."""
        details, _ = atrous_decompose(record_100.samples[:2048], 4)
        d2 = np.abs(details[1])
        r_peaks = [r for r in record_100.r_samples if r < 2000]
        assert r_peaks
        near_qrs = max(
            float(d2[max(0, r - 20) : r + 20].max()) for r in r_peaks
        )
        assert near_qrs > 3 * float(np.percentile(d2, 90))


class TestDwtApp:
    def test_output_layout(self, short_samples):
        app = DwtApp(n_scales=4, window=1024)
        out = app.run(short_samples, clean_fabric())
        assert out.shape == (5 * 1024,)

    def test_multi_window_concatenation(self, record_100):
        app = DwtApp(window=512)
        samples = record_100.samples[:1024]
        out = app.run(samples, clean_fabric())
        assert out.shape == (2 * 5 * 512,)

    def test_reference_is_cached_and_stable(self, short_samples):
        app = DwtApp()
        a = app.reference_output(short_samples)
        b = app.reference_output(short_samples)
        assert a is b

    def test_output_is_16bit(self, short_samples):
        out = DwtApp().run(short_samples, clean_fabric())
        assert int(out.max()) <= 32767 and int(out.min()) >= -32768

    def test_clean_snr_is_capped(self, short_samples):
        app = DwtApp()
        out = app.run(short_samples, clean_fabric())
        assert app.output_snr(short_samples, out) == 96.0

    def test_msb_fault_degrades_more_than_lsb(self, short_samples):
        app = DwtApp()
        snrs = {}
        for position in (0, 14):
            fm = position_fault_map(16384, 16, position, 1)
            fabric = MemoryFabric(NoProtection(), fault_map=fm)
            out = app.run(short_samples, fabric)
            snrs[position] = app.output_snr(short_samples, out)
        assert snrs[14] < snrs[0] - 20

    def test_window_validation(self):
        with pytest.raises(SignalError):
            DwtApp(n_scales=4, window=8)
        with pytest.raises(SignalError):
            DwtApp(n_scales=0)

    def test_rejects_bad_samples(self):
        app = DwtApp()
        with pytest.raises(SignalError):
            app.run(np.array([40000]), clean_fabric())
        with pytest.raises(SignalError):
            app.run(np.array([]), clean_fabric())
