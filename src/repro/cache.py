"""Process-safe, disk-persistent calibration cache.

Fleet simulation multiplies the runtime's calibration problem by the
population size: thousands of patient missions, fanned across worker
processes, all need the same small set of ``(app, segment signature,
operating point)`` quality/energy models.  Per-process ``lru_cache``
memos (the PR 2 design) recompute each model once *per worker*; this
module makes the unit of work once *per fleet* — or, since entries are
content-addressed, once per machine, ever.

Design, mirroring the campaign result store:

* entries are keyed by the SHA-256 content hash of their full input
  payload (:func:`repro.campaign.spec.content_hash`), so a cached value
  can never be served for different inputs and stale entries are merely
  unused, never wrong;
* one JSON file per entry, written to a temporary name and
  :func:`os.replace`'d into place, so readers only ever see complete
  entries;
* exactly-once computation across processes is enforced with a per-entry
  ``fcntl`` file lock: the first worker to need a model computes it
  while the others block, then read the fresh entry under the same lock;
* every computation appends one line to ``events.jsonl``, giving tests
  and benchmarks an auditable fleet-wide "calibrated exactly once"
  record.

The cache root defaults to ``benchmarks/results/cache`` (override with
``REPRO_CACHE_DIR``); ``REPRO_CACHE_DISABLE=1`` turns the disk layer off
(per-process memory caching only).  ``python -m repro cache`` exposes
:meth:`DiskCache.info`/:meth:`DiskCache.clear` from the command line.

Example:
    >>> import tempfile
    >>> cache = DiskCache(tempfile.mkdtemp())
    >>> cache.get_or_compute({"x": 1}, lambda: [1, 2])
    [1, 2]
    >>> cache.get_or_compute({"x": 1}, lambda: [9, 9])  # cached: not recomputed
    [1, 2]
    >>> cache.stats.computed, cache.stats.memory_hits
    (1, 1)
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from . import obs
from .campaign.spec import content_hash
from .errors import ReproError

__all__ = [
    "CacheStats",
    "DiskCache",
    "default_cache_root",
    "shared_cache",
    "computed_events",
    "event_stats",
]

#: Sentinel distinguishing "no entry" from a cached ``None``.
_MISSING = object()


def default_cache_root() -> Path:
    """Directory the shared calibration cache lives in.

    ``REPRO_CACHE_DIR`` overrides the default
    ``benchmarks/results/cache`` (relative to the working directory,
    beside the campaign stores).  ``~`` in the override expands to the
    user's home directory.
    """
    raw = os.environ.get("REPRO_CACHE_DIR")
    if raw:
        return Path(raw).expanduser()
    return Path("benchmarks") / "results" / "cache"


@dataclass
class CacheStats:
    """Per-process lookup counters of one :class:`DiskCache`.

    Attributes:
        memory_hits: lookups answered from this process's memory layer.
        disk_hits: lookups answered by reading an existing entry file
            (including entries another process computed while we waited
            on its lock).
        computed: lookups this process had to compute itself.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    computed: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups seen by this process."""
        return self.memory_hits + self.disk_hits + self.computed

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that avoided a fresh computation."""
        if not self.lookups:
            return 0.0
        return (self.memory_hits + self.disk_hits) / self.lookups

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe counter snapshot."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "computed": self.computed,
            "hit_rate": self.hit_rate,
        }


class DiskCache:
    """Content-addressed key/value cache with a disk persistence layer.

    Args:
        root: directory entries are stored in (default:
            :func:`default_cache_root`).
        persistent: when false, only the in-process memory layer is used
            — the shape tests use to isolate cache behaviour, and what
            ``REPRO_CACHE_DISABLE=1`` selects for the shared cache.

    Values must be JSON-serialisable; callers that cache tuples convert
    on the way out (JSON round-trips them as lists).
    """

    def __init__(
        self, root: Path | str | None = None, persistent: bool = True
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.persistent = persistent
        self.stats = CacheStats()
        self._memory: dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- paths -------------------------------------------------------------

    def _entry_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    @property
    def events_path(self) -> Path:
        """The append-only log of fleet-wide cache computations."""
        return self.root / "events.jsonl"

    # -- the core protocol -------------------------------------------------

    def get_or_compute(
        self, payload: dict[str, Any], compute: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``payload``, computing it at most
        once across every process sharing this cache root.

        Lookup order: this process's memory layer, then the entry file,
        then — under an exclusive per-entry file lock — a re-check of the
        entry file (another process may have just written it) and
        finally ``compute()``.
        """
        digest = content_hash(payload)
        with self._lock:
            if digest in self._memory:
                self.stats.memory_hits += 1
                obs.counter("cache.memory_hit")
                return self._memory[digest]
        if not self.persistent:
            value = compute()
            self.stats.computed += 1
            obs.counter("cache.computed")
            with self._lock:
                self._memory[digest] = value
            return value

        value = self._read_entry(digest)
        if value is not _MISSING:
            self.stats.disk_hits += 1
            obs.counter("cache.disk_hit")
            self._append_event("hit", digest)
            with self._lock:
                self._memory[digest] = value
            return value

        value = self._locked_compute(digest, payload, compute)
        with self._lock:
            self._memory[digest] = value
        return value

    def _locked_compute(
        self, digest: str, payload: dict[str, Any], compute: Callable[[], Any]
    ) -> Any:
        """Compute ``digest``'s value under its exclusive file lock."""
        import fcntl

        self.root.mkdir(parents=True, exist_ok=True)
        lock_path = self.root / f"{digest}.lock"
        with open(lock_path, "w", encoding="utf-8") as lock_file:
            waited = time.perf_counter() if obs.enabled() else 0.0
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            if obs.enabled():
                obs.observe(
                    "cache.lock_wait_s", time.perf_counter() - waited
                )
            try:
                # Another process may have computed the entry while this
                # one waited on the lock.
                value = self._read_entry(digest)
                if value is not _MISSING:
                    self.stats.disk_hits += 1
                    obs.counter("cache.disk_hit")
                    self._append_event("hit", digest)
                    return value
                value = compute()
                self._write_entry(digest, payload, value)
                self._append_event("computed", digest)
                self.stats.computed += 1
                obs.counter("cache.computed")
                return value
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)

    def _read_entry(self, digest: str) -> Any:
        path = self._entry_path(digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return _MISSING
        try:
            return json.loads(text)["value"]
        except (json.JSONDecodeError, KeyError, TypeError):
            # A corrupt entry (e.g. a crashed writer on a filesystem
            # without atomic replace) is treated as absent and rewritten.
            return _MISSING

    def _write_entry(self, digest: str, payload: dict, value: Any) -> None:
        entry = {"key": payload, "value": value}
        try:
            text = json.dumps(entry, sort_keys=True)
        except TypeError as exc:
            raise ReproError(
                f"cache value for {payload!r} is not JSON-serialisable: {exc}"
            ) from exc
        tmp = self._entry_path(digest).with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(text + "\n", encoding="utf-8")
        os.replace(tmp, self._entry_path(digest))

    def _append_event(self, kind: str, digest: str | None = None) -> None:
        """Record one cache action in the fleet-wide event log.

        ``kind`` is ``"computed"`` (written only under the entry's
        exclusive lock, so per-entry counts are an exact "how many
        times was this computed" audit), ``"hit"`` (a disk-layer read;
        at most one per entry per process — the memory layer absorbs
        repeats), or ``"clear"`` (an eviction of the whole cache).
        Lines are small single ``write`` appends, so concurrent writers
        stay line-atomic without a lock.
        """
        record: dict[str, Any] = {"event": kind, "pid": os.getpid()}
        if digest is not None:
            record["hash"] = digest
        line = (json.dumps(record) + "\n").encode("utf-8")
        self.root.mkdir(parents=True, exist_ok=True)
        # a+b so the torn-tail check can read the current last byte: if
        # a previous writer died mid-line, seal the debris with a
        # newline so this event cannot merge with it (the reader then
        # tolerates-and-quarantines the isolated torn line).
        with open(self.events_path, "a+b") as handle:
            size = os.fstat(handle.fileno()).st_size
            if size and os.pread(handle.fileno(), 1, size - 1) != b"\n":
                handle.write(b"\n")
            handle.write(line)

    # -- maintenance -------------------------------------------------------

    def info(self) -> dict[str, Any]:
        """Cache diagnostics: root, entry count/bytes, process counters."""
        entries = 0
        size_bytes = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                entries += 1
                size_bytes += path.stat().st_size
        return {
            "root": str(self.root),
            "persistent": self.persistent,
            "entries": entries,
            "size_bytes": size_bytes,
            "process": self.stats.to_dict(),
        }

    def clear(self) -> int:
        """Delete every entry and event record; returns the number of
        entries removed.  The per-process memory layer is cleared too.

        Per-entry ``.lock`` files are deliberately left in place: a
        worker may be blocked on one right now, and unlinking it would
        hand a second worker a fresh lock inode — two computations of
        the same entry, breaking the exactly-once audit.  The lock
        files are empty; leaving them costs directory entries only.
        """
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            self.events_path.unlink(missing_ok=True)
            # Start the fresh log with the eviction itself, so
            # event_stats() can report "cleared N times" afterwards.
            self._append_event("clear")
            obs.counter("cache.cleared_entries", removed)
        with self._lock:
            self._memory.clear()
        self.stats = CacheStats()
        return removed


def _read_events(root: Path | str | None) -> list[dict]:
    """Parsed cache event-log records, in append order.

    Malformed lines (torn tail of a crashed writer) are tolerated and
    quarantined — skipped by the parse, logged, and preserved in
    ``events.jsonl.quarantine`` — never fatal.  Records written before
    the log carried an ``event`` key are computations — the only kind
    the log recorded then.
    """
    from .campaign.store import quarantine_torn_lines

    events_path = (
        Path(root) if root is not None else default_cache_root()
    ) / "events.jsonl"
    records: list[dict] = []
    if not events_path.exists():
        return records
    torn: list[str] = []
    with events_path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                torn.append(line)
                continue
            if isinstance(record, dict):
                records.append(record)
    if torn:
        quarantine_torn_lines(events_path, torn)
    return records


def computed_events(root: Path | str | None = None) -> list[str]:
    """Entry hashes from the event log, one per computation, in order.

    The fleet-wide exactly-once guarantee is checkable as "this list has
    no duplicates".  Hit/clear events in the log are not computations
    and are excluded.
    """
    return [
        record["hash"]
        for record in _read_events(root)
        if record.get("event", "computed") == "computed"
        and "hash" in record
    ]


def event_stats(root: Path | str | None = None) -> dict[str, Any]:
    """Fleet-wide hit/miss/evict statistics from the cache event log.

    Unlike :attr:`DiskCache.stats` (this process's counters), these
    cover every process that ever touched the cache root since its
    last clear: computations (misses), disk hits, distinct entries,
    recomputations of the same entry (lock races or post-clear), clear
    events, and the disk-level hit rate.
    """
    computed: list[str] = []
    hits = 0
    clears = 0
    for record in _read_events(root):
        kind = record.get("event", "computed")
        if kind == "computed" and "hash" in record:
            computed.append(record["hash"])
        elif kind == "hit":
            hits += 1
        elif kind == "clear":
            clears += 1
    lookups = len(computed) + hits
    return {
        "computed": len(computed),
        "disk_hits": hits,
        "unique_entries": len(set(computed)),
        "recomputed": len(computed) - len(set(computed)),
        "clears": clears,
        "hit_rate": (hits / lookups) if lookups else 0.0,
    }


#: The process-wide shared cache instance (lazily created; re-resolved
#: when the configured root changes, so tests can repoint it via env).
_SHARED: DiskCache | None = None


def shared_cache() -> DiskCache:
    """The process's shared calibration cache.

    Resolves ``REPRO_CACHE_DIR``/``REPRO_CACHE_DISABLE`` on every call:
    if either changed since the last call, a fresh instance (with fresh
    counters) is returned, so test isolation needs nothing beyond
    setting the environment.
    """
    global _SHARED
    root = default_cache_root()
    persistent = os.environ.get("REPRO_CACHE_DISABLE", "") not in ("1", "true")
    if (
        _SHARED is None
        or _SHARED.root != root
        or _SHARED.persistent != persistent
    ):
        _SHARED = DiskCache(root, persistent=persistent)
    return _SHARED
