"""Matrix Filtering application (paper Section II-2).

The paper describes it as "a series of matrix multiplication operations
[A] x [B] = [C] repeated (iterations of the algorithm) until the quality
of the result meets the desired level" applying a transformation such as
low-pass filtering to biosignal samples.  We implement exactly that
structure:

* ``A`` is a ``K x K`` normalised Gaussian smoothing operator (a banded
  Toeplitz matrix — each output row is a windowed low-pass of the
  corresponding input rows), quantised to Q15;
* the sample vector is reshaped column-major into a ``K x M`` matrix
  ``B``;
* ``C = A @ B`` is computed in fixed point (exact 32-bit-style
  accumulation, one rounded shift back to Q15 per element, saturation)
  and re-stored; the product is iterated ``n_iterations`` times.

Both the coefficient matrix and the data matrices live in the faulty
memory — coefficients are data too, which is precisely why the paper
observes that "a single error affects many positions in the output" for
this application (every element of ``C`` depends on a full row of ``A``
and a full column of ``B``).
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError
from ..fixedpoint import Q15, rounded_shift_right, saturate
from ..mem.fabric import MemoryFabric
from .base import BiomedicalApp

__all__ = ["MatrixFilterApp", "gaussian_filter_matrix", "fixed_point_matmul"]


def gaussian_filter_matrix(size: int, sigma: float = 1.5) -> np.ndarray:
    """A row-normalised Gaussian smoothing matrix in Q15.

    Row ``i`` holds a Gaussian window centred on ``i``; rows are
    normalised to unit sum *before* quantisation so the operator has
    (approximately) unit DC gain and iterating it cannot overflow.
    """
    if size < 2:
        raise SignalError(f"matrix size must be >= 2, got {size}")
    if sigma <= 0:
        raise SignalError(f"sigma must be positive, got {sigma}")
    index = np.arange(size, dtype=np.float64)
    distance = index[:, None] - index[None, :]
    kernel = np.exp(-0.5 * (distance / sigma) ** 2)
    kernel /= kernel.sum(axis=1, keepdims=True)
    return Q15.from_float(kernel)


def fixed_point_matmul(a_q15: np.ndarray, b_q15: np.ndarray) -> np.ndarray:
    """``C = A @ B`` with Q15 operands: wide accumulate, round, saturate.

    The accumulation is exact (int64, the platform's 32-bit MAC never
    overflows for K <= 2**15 operands); each element is then shifted back
    to Q15 with rounding and saturated — one quantisation per output
    element, as a fixed-point MAC loop produces.

    Accepts stacked operands: ``(..., k, k) @ (..., k, m)`` multiplies
    every trial of a batch in one integer-exact ``matmul`` call.
    """
    a = np.asarray(a_q15, dtype=np.int64)
    b = np.asarray(b_q15, dtype=np.int64)
    if a.ndim < 2 or b.ndim < 2 or a.shape[-1] != b.shape[-2]:
        raise SignalError(
            f"incompatible matmul shapes {a.shape} x {b.shape}"
        )
    wide = a @ b
    return saturate(rounded_shift_right(wide, Q15.frac_bits), Q15)


class MatrixFilterApp(BiomedicalApp):
    """Iterated fixed-point matrix filtering over the memory fabric.

    Args:
        block_size: ``K``, the filter-matrix dimension (and row count of
            the sample matrix).
        n_iterations: how many times ``C <- A @ C`` is applied.
        sigma: Gaussian width of the smoothing operator.

    The output is the final ``C`` flattened back to sample order.  Input
    lengths are processed in windows of ``block_size**2`` samples; a
    trailing partial window is zero-padded (and the padding trimmed from
    the output), as firmware with static buffers would do.
    """

    name = "matrix_filter"
    description = "iterated fixed-point matrix filtering"
    #: The window pipeline is reshapes plus stacked matmuls, so a
    #: batched fabric multiplies all trials in single ``matmul`` calls.
    supports_batch = True

    def __init__(
        self,
        block_size: int = 32,
        n_iterations: int = 3,
        sigma: float = 1.5,
    ) -> None:
        super().__init__()
        if block_size < 2:
            raise SignalError(f"block_size must be >= 2, got {block_size}")
        if n_iterations < 1:
            raise SignalError(
                f"n_iterations must be >= 1, got {n_iterations}"
            )
        self.block_size = block_size
        self.n_iterations = n_iterations
        self.sigma = sigma
        self._coefficients = gaussian_filter_matrix(block_size, sigma)

    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        arr = self._check_samples(samples)
        # Complete windows (of every stream) stack into batched matmuls
        # on a batched fabric; the zero-padded trailing window keeps the
        # classic path (its padding trimmed from the output as before).
        return self._run_in_windows(
            arr,
            self.block_size * self.block_size,
            fabric,
            lambda chunk: self._run_window(chunk, fabric),
            pad=True,
            trim=True,
        )

    @staticmethod
    def _as_colmajor(flat: np.ndarray, k: int) -> np.ndarray:
        """Per-trial ``reshape(k, k, order="F")`` for any leading shape.

        For a square matrix, Fortran-order reshape equals C-order
        reshape followed by a transpose of the trailing two axes — the
        form that also handles a stacked ``(n_trials, k*k)`` batch.
        """
        return flat.reshape(flat.shape[:-1] + (k, k)).swapaxes(-1, -2)

    @staticmethod
    def _colmajor_ravel(matrices: np.ndarray) -> np.ndarray:
        """Per-trial ``ravel(order="F")`` for any leading shape."""
        return np.ascontiguousarray(matrices.swapaxes(-1, -2)).reshape(
            matrices.shape[:-2] + (-1,)
        )

    def _run_window(
        self, chunk: np.ndarray, fabric: MemoryFabric
    ) -> np.ndarray:
        k = self.block_size
        # The coefficient matrix is data in the faulty memory too.  Its
        # roundtrip is deterministic (same values, addresses and masks
        # every window), so one read serves a whole window stack.
        coeffs = fabric.roundtrip("matfilt.A", self._coefficients.ravel())
        a = coeffs.reshape(coeffs.shape[:-1] + (k, k))
        b = self._as_colmajor(fabric.roundtrip("matfilt.B", chunk), k)
        if b.ndim == a.ndim + 1:
            # Window-stacked b: broadcast A across the window axis.
            a = a[..., None, :, :]
        for iteration in range(self.n_iterations):
            c = fixed_point_matmul(a, b)
            b = self._as_colmajor(
                fabric.roundtrip("matfilt.C", self._colmajor_ravel(c)), k
            )
        return self._colmajor_ravel(b)
