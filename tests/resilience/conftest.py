"""Shared fixtures for the supervised-execution tests."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _no_ambient_chaos(monkeypatch):
    """Tests opt in to chaos explicitly; the environment never leaks in."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_RETRY_MAX_ATTEMPTS", raising=False)
    monkeypatch.delenv("REPRO_WORK_TIMEOUT_S", raising=False)
