"""Word-interleaved crossbar with per-bank round-robin arbitration.

The paper's shared memory is "divided into 16 banks accessible by the
cores through a crossbar"; when two cores address the same bank in the
same cycle one of them stalls.  This module provides the per-cycle
arbitration decision used by the simulator: for every bank, among the
cores requesting it, grant the one closest (cyclically) after the bank's
last grantee.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..mem.layout import MemoryGeometry

__all__ = ["Crossbar"]


class Crossbar:
    """Round-robin per-bank arbiter over a word-interleaved memory."""

    def __init__(self, geometry: MemoryGeometry, n_cores: int) -> None:
        if n_cores < 1:
            raise SimulationError(f"n_cores must be >= 1, got {n_cores}")
        self.geometry = geometry
        self.n_cores = n_cores
        self._last_grant = [n_cores - 1] * geometry.n_banks
        self.conflicts = 0
        self.grants = 0

    def bank_of(self, address: int) -> int:
        """The bank a word address maps to (word-interleaved)."""
        if not 0 <= address < self.geometry.n_words:
            raise SimulationError(
                f"address {address} outside [0, {self.geometry.n_words})"
            )
        return address % self.geometry.n_banks

    def arbitrate(self, requests: dict[int, int]) -> set[int]:
        """Grant one core per contended bank.

        Args:
            requests: ``core_id -> address`` for every core with a
                pending access this cycle.

        Returns:
            The set of granted core ids; the rest stall (and their
            requests are expected to be re-presented next cycle).
        """
        by_bank: dict[int, list[int]] = {}
        for core_id, address in requests.items():
            by_bank.setdefault(self.bank_of(address), []).append(core_id)

        granted: set[int] = set()
        for bank, cores in by_bank.items():
            if len(cores) == 1:
                winner = cores[0]
            else:
                # Round-robin: next core id (cyclically) after last grant.
                start = (self._last_grant[bank] + 1) % self.n_cores
                order = sorted(cores, key=lambda c: (c - start) % self.n_cores)
                winner = order[0]
                self.conflicts += len(cores) - 1
            self._last_grant[bank] = winner
            granted.add(winner)
            self.grants += 1
        return granted
