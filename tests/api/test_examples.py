"""Every shipped experiment file loads, plans, and round-trips exactly.

This is the test-side half of the CI smoke contract: the files under
``examples/experiments/`` are the documented entry points of the
unified API, so each must parse, survive a canonicalise -> dump ->
reload cycle bit-identically in both formats, and plan into executable
campaigns — and ``repro validate`` must reject a broken spec with a
non-zero exit.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api.schema import dump_experiment, load_experiment
from repro.api.session import Session
from repro.cli import main

EXPERIMENTS_DIR = (
    Path(__file__).resolve().parent.parent.parent
    / "examples"
    / "experiments"
)


def example_files() -> list[Path]:
    files = sorted(
        p
        for p in EXPERIMENTS_DIR.iterdir()
        if p.suffix in (".toml", ".json")
    )
    assert files, "no shipped experiment files found"
    return files


def test_both_formats_are_represented():
    suffixes = {p.suffix for p in example_files()}
    assert suffixes == {".toml", ".json"}


def test_every_kind_is_represented():
    kinds = set()
    for path in example_files():
        experiment = load_experiment(path)
        kind = experiment.kind
        if kind == "figure":
            kind = f"figure/{experiment.params.KIND}"
        kinds.add(kind)
    assert {"figure/fig2", "figure/fig4", "figure/energy",
            "figure/tradeoff", "sweep", "mission", "cohort"} <= kinds


@pytest.mark.parametrize("path", example_files(), ids=lambda p: p.name)
class TestShippedExperiments:
    def test_loads_and_plans(self, path):
        experiment = load_experiment(path)
        campaigns = Session().plan(experiment)
        assert campaigns
        assert all(len(c.spec.expand()) >= 1 for c in campaigns)

    def test_roundtrip_bit_identical_in_both_formats(self, path, tmp_path):
        experiment = load_experiment(path)
        for suffix in (".toml", ".json"):
            out = tmp_path / f"copy{suffix}"
            dump_experiment(experiment, out)
            reloaded = load_experiment(out)
            assert reloaded == experiment
            assert reloaded.canonical_json() == experiment.canonical_json()
            assert reloaded.content_hash() == experiment.content_hash()

    def test_cli_validate_accepts(self, path, capsys):
        assert main(["validate", str(path)]) == 0
        assert "ok" in capsys.readouterr().out


class TestCliValidateRejectsBrokenSpecs:
    def test_unsupported_version(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            'version = 99\nkind = "sweep"\nname = "x"\n\n[sweep]\n',
            encoding="utf-8",
        )
        assert main(["validate", str(bad)]) == 1
        assert "version 99" in capsys.readouterr().err

    def test_unknown_application(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text(
            'version = 1\nkind = "sweep"\nname = "x"\n\n'
            '[sweep]\napps = ["fft"]\n',
            encoding="utf-8",
        )
        assert main(["validate", str(bad)]) == 1
        assert "fft" in capsys.readouterr().err

    def test_one_bad_file_fails_the_batch_but_checks_all(
        self, tmp_path, capsys
    ):
        good = EXPERIMENTS_DIR / "mission_quick.toml"
        bad = tmp_path / "bad.json"
        bad.write_text("{", encoding="utf-8")
        assert main(["validate", str(bad), str(good)]) == 1
        captured = capsys.readouterr()
        assert "not valid JSON" in captured.err
        assert "mission_quick.toml: ok" in captured.out

    def test_describe_prints_the_plan(self, capsys):
        assert main(
            ["describe", str(EXPERIMENTS_DIR / "sweep_quick.toml")]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep-quick-quality" in out
        assert "sweep-quick-energy" in out
        assert "total: 8 points" in out
