"""Tests for the morphological-filtering application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import MorphologicalFilterApp
from repro.apps.base import clean_fabric
from repro.apps.morphology import closing, dilate, erode, opening
from repro.errors import SignalError
from repro.signals.dataset import load_record


class TestOperators:
    def test_erosion_is_running_min(self):
        x = np.array([5, 1, 7, 3, 9], dtype=np.int64)
        out = erode(x, 3)
        assert out.tolist() == [1, 1, 1, 3, 3]

    def test_dilation_is_running_max(self):
        x = np.array([5, 1, 7, 3, 9], dtype=np.int64)
        out = dilate(x, 3)
        assert out.tolist() == [5, 7, 7, 9, 9]

    def test_duality(self, rng):
        """Erosion of -x equals -dilation of x."""
        x = rng.integers(-1000, 1000, size=200)
        assert np.array_equal(erode(-x, 5), -dilate(x, 5))

    def test_opening_removes_positive_spike(self):
        x = np.zeros(64, dtype=np.int64)
        x[30] = 1000
        assert np.all(opening(x, 5) == 0)

    def test_closing_removes_negative_pit(self):
        x = np.zeros(64, dtype=np.int64)
        x[30] = -1000
        assert np.all(closing(x, 5) == 0)

    def test_opening_anti_extensive(self, rng):
        x = rng.integers(-500, 500, size=300)
        assert np.all(opening(x, 7) <= x)

    def test_closing_extensive(self, rng):
        x = rng.integers(-500, 500, size=300)
        assert np.all(closing(x, 7) >= x)

    def test_idempotence(self, rng):
        x = rng.integers(-500, 500, size=300)
        once = opening(x, 9)
        assert np.array_equal(opening(once, 9), once)
        once = closing(x, 9)
        assert np.array_equal(closing(once, 9), once)

    def test_element_validation(self):
        with pytest.raises(SignalError):
            erode(np.zeros(8, dtype=np.int64), 0)
        with pytest.raises(SignalError):
            dilate(np.zeros(8, dtype=np.int64), 4)  # even length


class TestMorphologicalFilterApp:
    def test_output_length(self, record_100):
        app = MorphologicalFilterApp()
        out = app.run(record_100.samples, clean_fabric())
        assert out.shape == record_100.samples.shape

    def test_removes_baseline_wander(self):
        """The app's purpose: drift out, QRS preserved."""
        record = load_record("101", duration_s=10.0)  # wander-heavy
        app = MorphologicalFilterApp()
        out = app.run(record.samples, clean_fabric())
        # Low-frequency content (below 0.6 Hz) must shrink substantially.
        def low_freq_power(x):
            spectrum = np.abs(np.fft.rfft(x.astype(np.float64)))
            freqs = np.fft.rfftfreq(len(x), 1 / 360.0)
            return float((spectrum[(freqs > 0) & (freqs < 0.6)] ** 2).sum())

        assert low_freq_power(out) < 0.35 * low_freq_power(record.samples)

    def test_preserves_qrs_amplitude(self, record_100):
        app = MorphologicalFilterApp()
        out = app.run(record_100.samples, clean_fabric())
        r = int(record_100.r_samples[2])
        window = slice(max(0, r - 10), r + 10)
        original = float(np.abs(record_100.samples[window]).max())
        filtered = float(np.abs(out[window]).max())
        assert filtered > 0.5 * original

    def test_pure_integer_pipeline_is_exact(self, record_100):
        """min/max arithmetic introduces no rounding: bit-exact reruns."""
        app = MorphologicalFilterApp()
        a = app.run(record_100.samples, clean_fabric())
        b = app.run(record_100.samples, clean_fabric())
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(SignalError):
            MorphologicalFilterApp(fs_hz=0.0)
        with pytest.raises(SignalError):
            MorphologicalFilterApp(noise_element=4)
        with pytest.raises(SignalError):
            MorphologicalFilterApp(window=64)
