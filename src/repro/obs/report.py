"""Read a trace back and render the ``repro report`` breakdown.

This is the single reader for everything written in the
:mod:`repro.obs.events` schema: per-run JSONL traces from
:mod:`repro.obs.core` and the benchmark harness's BENCH ``.json``
artefacts (which carry their events under an ``"events"`` key).  The
renderer produces four sections — the wall-time span tree, a per-process
worker-utilization table, cache hit rates, and the top-N slowest spans —
from one pass over the events.

Every line is validated against the schema contract on load; a
malformed event is a hard :class:`~repro.errors.ObsError`, which is how
``repro report`` turns a corrupt trace into a non-zero exit in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ObsError
from .events import validate_event

__all__ = [
    "load_trace",
    "load_events",
    "resolve_trace",
    "summarize",
    "span_totals",
    "metric_totals",
    "metric_series",
    "render_report",
]


def load_trace(path: Path | str) -> list[dict]:
    """Parse and validate a JSONL trace; raises ObsError on any bad line."""
    events: list[dict] = []
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObsError(f"cannot read trace {source}: {exc}") from exc
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(
                f"{source}:{lineno}: not valid JSON: {exc}"
            ) from exc
        problems = validate_event(payload)
        if problems:
            raise ObsError(
                f"{source}:{lineno}: malformed trace event: "
                + "; ".join(problems)
            )
        events.append(payload)
    return events


def load_events(path: Path | str) -> list[dict]:
    """Load schema events from a ``.jsonl`` trace or a BENCH ``.json`` file.

    BENCH artefacts are single JSON objects whose ``"events"`` key holds
    the metric events the harness emitted; anything else is treated as
    a line-per-event trace.
    """
    source = Path(path)
    if source.suffix == ".json":
        try:
            payload = json.loads(source.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ObsError(f"cannot read {source}: {exc}") from exc
        if not isinstance(payload, dict) or not isinstance(
            payload.get("events"), list
        ):
            raise ObsError(
                f"{source}: expected a BENCH object with an 'events' list"
            )
        events = []
        for index, event in enumerate(payload["events"]):
            problems = validate_event(event)
            if problems:
                raise ObsError(
                    f"{source}: events[{index}] malformed: "
                    + "; ".join(problems)
                )
            events.append(event)
        return events
    return load_trace(source)


def resolve_trace(target: str, trace_dir: Path | str | None) -> Path:
    """Turn a ``repro report`` argument into a readable trace path.

    Accepts an existing file path (``.jsonl`` trace or BENCH ``.json``)
    or a bare run id, which is resolved to ``<trace_dir>/<id>.jsonl``.
    """
    direct = Path(target)
    if direct.is_file():
        return direct
    if trace_dir is not None:
        candidate = Path(trace_dir) / f"{target}.jsonl"
        if candidate.is_file():
            return candidate
        raise ObsError(
            f"no trace named {target!r}: neither the path {direct} nor "
            f"{candidate} exists"
        )
    raise ObsError(
        f"no trace named {target!r}: the path {direct} does not exist and "
        "no trace directory is configured (set REPRO_TRACE_DIR or pass "
        "--trace)"
    )


def _span_paths(spans: list[dict]) -> dict[str, tuple[str, ...]]:
    """Each span id's name path from its process/trace root.

    A span whose parent never closed (killed worker, cross-file parent)
    is treated as a root; the tree degrades rather than fails.
    """
    by_id = {event["span"]: event for event in spans}
    paths: dict[str, tuple[str, ...]] = {}

    def path_of(span_id: str) -> tuple[str, ...]:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        chain: list[str] = []
        cursor: str | None = span_id
        seen = set()
        while cursor is not None and cursor in by_id and cursor not in seen:
            seen.add(cursor)
            event = by_id[cursor]
            chain.append(event["name"])
            cursor = event.get("parent")
        result = tuple(reversed(chain))
        paths[span_id] = result
        return result

    for span_id in by_id:
        path_of(span_id)
    return paths


def span_totals(events: list[dict]) -> dict[tuple[str, ...], dict]:
    """Aggregate spans by name path: count, wall/self/CPU seconds, failures.

    ``self_s`` is the *exclusive* wall time — each path's total minus
    the totals of its direct children (clamped at zero: overlapping
    child spans from concurrent threads can nominally exceed the
    parent).  ``cpu_s`` sums the spans' ``time.process_time`` deltas;
    traces from before schema revision 1.5 carry none and report 0.
    """
    spans = [event for event in events if event["event"] == "span"]
    paths = _span_paths(spans)
    by_id = {event["span"]: event for event in spans}
    totals: dict[tuple[str, ...], dict] = {}
    for event in spans:
        path = paths[event["span"]]
        slot = totals.setdefault(
            path,
            {
                "count": 0, "total_s": 0.0, "failed": 0,
                "cpu_s": 0.0, "child_s": 0.0,
            },
        )
        slot["count"] += 1
        slot["total_s"] += float(event["dur_s"])
        slot["cpu_s"] += float(event.get("cpu_s") or 0.0)
        if event["status"] == "failed":
            slot["failed"] += 1
    for event in spans:
        parent = by_id.get(event.get("parent"))
        if parent is not None:
            totals[paths[parent["span"]]]["child_s"] += float(
                event["dur_s"]
            )
    for slot in totals.values():
        slot["self_s"] = max(0.0, slot["total_s"] - slot.pop("child_s"))
    return totals


def metric_totals(events: list[dict]) -> dict[str, dict]:
    """Fold metric events by name: summed counters, merged histograms.

    Returns ``{name: {"kind": ..., "value": ...}}`` where a counter's
    value is the sum of its deltas, a gauge's is its last write, and a
    histogram's is the merged ``{count, sum, min, max}`` summary.
    """
    folded: dict[str, dict] = {}
    for event in events:
        if event["event"] != "metric":
            continue
        name, kind, value = event["name"], event["kind"], event["value"]
        slot = folded.get(name)
        if slot is None:
            folded[name] = {
                "kind": kind,
                "value": dict(value) if kind == "histogram" else value,
            }
            continue
        if kind == "counter":
            slot["value"] += value
        elif kind == "gauge":
            slot["value"] = value
        elif kind == "histogram":
            merged = slot["value"]
            merged["count"] += value["count"]
            merged["sum"] += value["sum"]
            merged["min"] = min(merged["min"], value["min"])
            merged["max"] = max(merged["max"], value["max"])
    return folded


def metric_series(
    events: list[dict],
) -> dict[tuple[str, tuple], dict[str, Any]]:
    """Fold metric events by ``(name, attrs)`` instead of name alone.

    :func:`metric_totals` collapses a metric's attribute dimensions —
    right for the report's one-line-per-metric table, wrong for
    consumers that need the dimensions: alert rules scoped to one
    phenotype, or a watch dashboard showing per-campaign progress
    gauges.  Returns ``{(name, sorted attr items): {"kind", "value",
    "t", "attrs"}}`` with the same per-kind folding as
    :func:`metric_totals` (counters sum, gauges keep the latest write
    by timestamp, histograms merge), plus the folded series' last
    event time.
    """
    folded: dict[tuple[str, tuple], dict[str, Any]] = {}
    for event in events:
        if event["event"] != "metric":
            continue
        attrs = event.get("attrs", {})
        key = (event["name"], tuple(sorted(attrs.items())))
        kind, value, t = event["kind"], event["value"], event["t"]
        slot = folded.get(key)
        if slot is None:
            folded[key] = {
                "kind": kind,
                "value": dict(value) if kind == "histogram" else value,
                "t": t,
                "attrs": dict(attrs),
            }
            continue
        if kind == "counter":
            slot["value"] += value
        elif kind == "gauge":
            if t >= slot["t"]:
                slot["value"] = value
        elif kind == "histogram":
            merged = slot["value"]
            merged["count"] += value["count"]
            merged["sum"] += value["sum"]
            merged["min"] = min(merged["min"], value["min"])
            merged["max"] = max(merged["max"], value["max"])
        slot["t"] = max(slot["t"], t)
    return folded


def summarize(events: list[dict]) -> dict[str, Any]:
    """One pass over a trace into the structure the renderer prints.

    Keys: ``run`` (the run marker or None), ``wall_s``, ``tree`` (the
    :func:`span_totals` aggregate), ``metrics`` (:func:`metric_totals`),
    ``workers`` (per-pid busy seconds/span counts), ``resources``
    (per-pid peak RSS / cumulative CPU from the ``proc.*`` gauges),
    ``slowest`` (spans sorted by duration, longest first), ``failed``
    (failed span events).
    """
    runs = [event for event in events if event["event"] == "run"]
    spans = [event for event in events if event["event"] == "span"]
    run = runs[0] if runs else None

    starts = [event["t"] for event in events]
    ends = [
        event["t"] + (event["dur_s"] if event["event"] == "span" else 0.0)
        for event in events
    ]
    wall_s = (max(ends) - min(starts)) if events else 0.0

    by_id = {event["span"]: event for event in spans}
    workers: dict[int, dict] = {}
    for event in spans:
        slot = workers.setdefault(
            event["pid"], {"busy_s": 0.0, "spans": 0}
        )
        slot["spans"] += 1
        parent = event.get("parent")
        # Busy time counts only process-root spans (those whose parent
        # lives in another process or nowhere); nested spans would
        # double-count their parents' wall time.
        parent_event = by_id.get(parent) if parent is not None else None
        if parent_event is None or parent_event["pid"] != event["pid"]:
            slot["busy_s"] += float(event["dur_s"])

    # Per-process resource readings from the throttled proc.* gauges:
    # peak RSS is the max ever seen, CPU is cumulative (process_time),
    # so the latest write per pid wins.
    resources: dict[int, dict] = {}
    for event in events:
        if event["event"] != "metric" or event["kind"] != "gauge":
            continue
        name = event["name"]
        if name not in ("proc.rss_bytes", "proc.cpu_s"):
            continue
        slot = resources.setdefault(
            event["pid"],
            {"peak_rss_bytes": None, "cpu_s": None, "_cpu_t": 0.0},
        )
        value = float(event["value"])
        if name == "proc.rss_bytes":
            if slot["peak_rss_bytes"] is None or value > slot["peak_rss_bytes"]:
                slot["peak_rss_bytes"] = value
        elif event["t"] >= slot["_cpu_t"]:
            slot["cpu_s"] = value
            slot["_cpu_t"] = event["t"]
    for slot in resources.values():
        slot.pop("_cpu_t")

    return {
        "run": run,
        "wall_s": wall_s,
        "events": len(events),
        "spans": len(spans),
        "tree": span_totals(events),
        "metrics": metric_totals(events),
        "workers": workers,
        "resources": resources,
        "slowest": sorted(
            spans, key=lambda event: event["dur_s"], reverse=True
        ),
        "failed": [event for event in spans if event["status"] == "failed"],
    }


_CACHE_COUNTERS = ("cache.memory_hit", "cache.disk_hit", "cache.computed")

#: Supervision counters rendered as their own Resilience section (and
#: excluded from the generic metrics table), in display order.
RESILIENCE_COUNTERS = (
    "work.retries",
    "worker.restarts",
    "work.timeouts",
    "work.quarantined",
    "store.write_retries",
    "store.quarantined_lines",
)


def _format_attrs(attrs: dict[str, Any], limit: int = 3) -> str:
    parts = [
        f"{key}={attrs[key]}" for key in sorted(attrs)[:limit]
    ]
    return ", ".join(parts)


def render_report(
    events: list[dict],
    top: int = 10,
    live_source: bool = False,
    profile: dict | None = None,
) -> str:
    """The full ``repro report`` text for one trace's events.

    ``live_source`` marks events read from a per-run trace sink (as
    opposed to a closed BENCH artefact): a live trace with no closed
    spans yet is reported as *in progress* rather than rendered as a
    bare header, and an entirely empty one says so explicitly.
    ``top`` bounds every ranked section (slowest spans, hot functions).
    ``profile`` is a merged sampling profile
    (:func:`repro.obs.profile.load_profile`); when given, the report
    ends with the top-``top`` hot functions folded per span path.
    """
    summary = summarize(events)
    run = summary["run"]
    lines: list[str] = []

    if not events:
        return (
            "Trace is empty — no events recorded.\n"
            "  (the run may have crashed before its first flush, or the "
            "sink was truncated)"
        )

    run_id = run["trace"] if run else events[0]["trace"]
    lines.append(f"Trace report — run {run_id}")
    lines.append(
        f"  wall time {summary['wall_s']:.3f} s · "
        f"{summary['spans']} spans · {summary['events']} events · "
        f"{len(summary['workers'])} process(es)"
    )
    if run and run.get("attrs"):
        lines.append(f"  run attrs: {_format_attrs(run['attrs'], limit=6)}")
    if live_source and not summary["spans"]:
        lines.append(
            "  run in progress — no closed spans yet "
            f"(tail it live with 'repro watch {run_id}')"
        )

    tree = summary["tree"]
    if tree:
        # The CPU column only earns its width when the trace carries
        # cpu_s at all (schema revision 1.5+); older traces keep the
        # original layout.
        has_cpu = any(slot["cpu_s"] > 0.0 for slot in tree.values())
        lines.append("")
        lines.append(
            "Wall-time breakdown (spans aggregated by path; "
            "self = exclusive wall):"
        )
        wall = summary["wall_s"] or 1.0
        for path in sorted(tree):
            slot = tree[path]
            indent = "  " * len(path)
            share = 100.0 * slot["total_s"] / wall
            failed = (
                f"  [{slot['failed']} failed]" if slot["failed"] else ""
            )
            cpu = f" cpu {slot['cpu_s']:>8.3f} s" if has_cpu else ""
            lines.append(
                f"{indent}{path[-1]:<28} {slot['count']:>5}× "
                f"{slot['total_s']:>9.3f} s {share:>5.1f}% "
                f"self {slot['self_s']:>8.3f} s{cpu}{failed}"
            )

    workers = summary["workers"]
    if workers:
        lines.append("")
        lines.append("Worker utilization (busy = process-root span time):")
        wall = summary["wall_s"] or 1.0
        resources = summary["resources"]
        for pid in sorted(workers):
            slot = workers[pid]
            line = (
                f"  pid {pid:<8} busy {slot['busy_s']:>8.3f} s "
                f"({100.0 * slot['busy_s'] / wall:>5.1f}%) · "
                f"{slot['spans']} spans"
            )
            proc = resources.get(pid, {})
            cpu_s = proc.get("cpu_s")
            if cpu_s is not None:
                line += (
                    f" · cpu {cpu_s:>7.3f} s "
                    f"({100.0 * cpu_s / wall:>5.1f}% util)"
                )
            rss = proc.get("peak_rss_bytes")
            if rss is not None:
                line += f" · peak rss {rss / 1048576.0:>7.1f} MB"
            lines.append(line)

    metrics = summary["metrics"]
    cache_counts = {
        name: metrics[name]["value"]
        for name in _CACHE_COUNTERS
        if name in metrics
    }
    if cache_counts:
        hits = sum(
            value for name, value in cache_counts.items()
            if name != "cache.computed"
        )
        lookups = hits + cache_counts.get("cache.computed", 0)
        lines.append("")
        lines.append(
            f"Calibration cache: {int(lookups)} lookups — "
            f"{int(cache_counts.get('cache.memory_hit', 0))} memory hits, "
            f"{int(cache_counts.get('cache.disk_hit', 0))} disk hits, "
            f"{int(cache_counts.get('cache.computed', 0))} computed "
            f"({100.0 * hits / lookups if lookups else 0.0:.1f}% hit rate)"
        )

    resilience = {
        name: int(metrics[name]["value"])
        for name in RESILIENCE_COUNTERS
        if name in metrics and metrics[name]["value"]
    }
    if resilience:
        lines.append("")
        lines.append("Resilience (supervised execution):")
        for name, value in resilience.items():
            label = name.split(".", 1)[1].replace("_", " ")
            lines.append(f"  {label:<32} {value}")

    other = {
        name: slot for name, slot in sorted(metrics.items())
        if name not in _CACHE_COUNTERS + RESILIENCE_COUNTERS
    }
    if other:
        lines.append("")
        lines.append("Metrics:")
        for name, slot in other.items():
            value = slot["value"]
            if slot["kind"] == "histogram":
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                rendered = (
                    f"n={value['count']} mean={mean:.6g} "
                    f"min={value['min']:.6g} max={value['max']:.6g}"
                )
            else:
                rendered = f"{value:.6g}"
            lines.append(f"  {name:<32} {slot['kind']:<9} {rendered}")

    slowest = summary["slowest"][:top]
    if slowest:
        lines.append("")
        lines.append(f"Slowest spans (top {len(slowest)}):")
        for rank, event in enumerate(slowest, start=1):
            attrs = _format_attrs(event.get("attrs", {}))
            suffix = f"  ({attrs})" if attrs else ""
            lines.append(
                f"  {rank:>2}. {event['name']:<20} "
                f"{event['dur_s']:>9.3f} s  pid {event['pid']}{suffix}"
            )

    failed = summary["failed"]
    if failed:
        lines.append("")
        lines.append(f"Failures ({len(failed)}):")
        for event in failed:
            lines.append(
                f"  {event['name']} span {event['span']}: "
                f"{event.get('error', '(no error text)')}"
            )

    if profile is not None:
        from .profile import render_hot_section

        lines.append("")
        lines.append(render_hot_section(profile, top=top))

    return "\n".join(lines)
