"""Cross-word-size properties of the EMT implementations.

The paper's platform is 16-bit, but Formula 2 and the Hamming
construction are parametric; these tests pin the behaviour at 8 and 32
bits so the library is trustworthy beyond the paper's design point.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._bitops import sign_run_length
from repro.emt import DreamEMT, DreamSecDedEMT, NoProtection, ParityEMT, SecDedEMT

WORD_SIZES = (8, 16, 32)


def patterns_for(bits: int):
    return st.integers(min_value=0, max_value=(1 << bits) - 1)


class TestGeometryScaling:
    @pytest.mark.parametrize("bits", WORD_SIZES)
    def test_formula2_all_sizes(self, bits):
        import math

        dream = DreamEMT(data_bits=bits)
        assert dream.extra_bits == 1 + int(math.log2(bits))
        secded = SecDedEMT(data_bits=bits)
        assert secded.extra_bits >= 2 + int(math.log2(bits))

    @pytest.mark.parametrize("bits", WORD_SIZES)
    def test_relative_overhead_shrinks_with_word_size(self, bits):
        """Section V's implicit scaling: wider words amortise protection."""
        if bits == 8:
            return
        narrow = DreamEMT(data_bits=bits // 2)
        wide = DreamEMT(data_bits=bits)
        assert (
            wide.extra_bits / wide.data_bits
            < narrow.extra_bits / narrow.data_bits
        )


class TestRoundtripAllSizes:
    @settings(max_examples=25)
    @given(data=st.data())
    @pytest.mark.parametrize("bits", WORD_SIZES)
    @pytest.mark.parametrize(
        "emt_cls", [NoProtection, ParityEMT, DreamEMT, SecDedEMT, DreamSecDedEMT],
        ids=lambda c: c.name,
    )
    def test_clean_roundtrip(self, data, bits, emt_cls):
        emt = emt_cls(data_bits=bits)
        pattern = data.draw(patterns_for(bits))
        stored, side = emt.encode(np.array([pattern]))
        assert int(emt.decode(stored, side)[0]) == pattern


class TestCorrectionAllSizes:
    @settings(max_examples=25)
    @given(data=st.data())
    @pytest.mark.parametrize("bits", WORD_SIZES)
    def test_secded_single_error(self, data, bits):
        emt = SecDedEMT(data_bits=bits)
        pattern = data.draw(patterns_for(bits))
        position = data.draw(
            st.integers(min_value=0, max_value=emt.stored_bits - 1)
        )
        stored, _ = emt.encode(np.array([pattern]))
        assert int(emt.decode(stored ^ (1 << position), None)[0]) == pattern

    @settings(max_examples=25)
    @given(data=st.data())
    @pytest.mark.parametrize("bits", WORD_SIZES)
    def test_dream_masked_region(self, data, bits):
        emt = DreamEMT(data_bits=bits)
        pattern = data.draw(patterns_for(bits))
        corruption = data.draw(patterns_for(bits))
        stored, side = emt.encode(np.array([pattern]))
        run = int(sign_run_length(np.array([pattern]), bits)[0])
        protected = min(run + 1, bits)
        region = ((1 << protected) - 1) << (bits - protected)
        corrupted = (int(stored[0]) ^ (corruption & region)) & ((1 << bits) - 1)
        assert int(emt.decode(np.array([corrupted]), side)[0]) == pattern

    @pytest.mark.parametrize("bits", WORD_SIZES)
    def test_dream_protects_typical_adc_headroom(self, bits):
        """A sample using half the word's bits keeps the top half safe."""
        emt = DreamEMT(data_bits=bits)
        sample = (1 << (bits // 2 - 1)) - 3  # positive, half-range value
        stored, side = emt.encode(np.array([sample]))
        protected = int(emt.protected_bits(side)[0])
        assert protected >= bits // 2


class TestFabricAtOtherWordSizes:
    @pytest.mark.parametrize("bits", (8, 32))
    def test_fabric_roundtrip(self, bits, rng):
        from repro.mem import MemoryFabric, MemoryGeometry

        geometry = MemoryGeometry(n_words=64, word_bits=bits, n_banks=4)
        for emt_cls in (DreamEMT, SecDedEMT):
            emt = emt_cls(data_bits=bits)
            fabric = MemoryFabric(emt, geometry=geometry)
            lo = -(1 << (bits - 1))
            hi = (1 << (bits - 1)) - 1
            values = rng.integers(lo, hi + 1, size=32)
            assert np.array_equal(fabric.roundtrip("x", values), values)
