"""Tests for the ECG synthesiser and rhythm models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SignalError
from repro.signals.pathologies import (
    MORPHOLOGY_BY_LABEL,
    PVC_MORPHOLOGY,
    RhythmSpec,
    generate_rhythm,
)
from repro.signals.synthesis import (
    NORMAL_MORPHOLOGY,
    ECGGenerator,
    WaveParams,
    render_beats,
    rr_tachogram,
)


class TestWaveParams:
    def test_rejects_non_positive_width(self):
        with pytest.raises(SignalError):
            WaveParams(amplitude_mv=1.0, width_s=0.0, offset_s=0.0)

    def test_morphology_scaling(self):
        scaled = NORMAL_MORPHOLOGY.scaled(2.0)
        assert scaled.waves["R"].amplitude_mv == pytest.approx(
            2 * NORMAL_MORPHOLOGY.waves["R"].amplitude_mv
        )
        # widths and offsets unchanged
        assert scaled.waves["R"].width_s == NORMAL_MORPHOLOGY.waves["R"].width_s


class TestRrTachogram:
    def test_statistics(self, rng):
        rr = rr_tachogram(2000, mean_hr_bpm=72, std_hr_bpm=3, rng=rng)
        hr = 60.0 / rr.mean()
        assert 65 < hr < 80
        assert np.all(rr >= 0.25)

    def test_variability_scales(self):
        low = rr_tachogram(500, std_hr_bpm=0.5, rng=np.random.default_rng(1))
        high = rr_tachogram(500, std_hr_bpm=8.0, rng=np.random.default_rng(1))
        assert high.std() > low.std()

    def test_rejects_bad_args(self, rng):
        with pytest.raises(SignalError):
            rr_tachogram(0, rng=rng)
        with pytest.raises(SignalError):
            rr_tachogram(10, mean_hr_bpm=-5, rng=rng)

    @settings(max_examples=20)
    @given(n=st.integers(min_value=1, max_value=300))
    def test_length_and_positivity(self, n):
        rr = rr_tachogram(n, rng=np.random.default_rng(0))
        assert rr.shape == (n,)
        assert np.all(rr > 0)


class TestRenderBeats:
    def test_empty_beat_train_is_flat(self):
        signal = render_beats(np.array([]), [], 360.0, 2.0)
        assert signal.shape == (720,)
        assert np.all(signal == 0)

    def test_r_peak_lands_at_requested_time(self):
        signal = render_beats(
            np.array([1.0]), [NORMAL_MORPHOLOGY], 360.0, 2.0
        )
        peak = int(np.argmax(signal))
        assert abs(peak - 360) <= 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(SignalError):
            render_beats(np.array([1.0]), [], 360.0, 2.0)

    def test_rejects_bad_fs(self):
        with pytest.raises(SignalError):
            render_beats(np.array([1.0]), [NORMAL_MORPHOLOGY], 0.0, 2.0)

    def test_pvc_is_wider_than_normal(self):
        fs = 360.0
        normal = render_beats(np.array([1.0]), [NORMAL_MORPHOLOGY], fs, 2.0)
        pvc = render_beats(np.array([1.0]), [PVC_MORPHOLOGY], fs, 2.0)

        def width_above(signal, fraction=0.3):
            level = fraction * signal.max()
            return int(np.count_nonzero(signal > level))

        assert width_above(pvc) > width_above(normal)


class TestECGGenerator:
    def test_deterministic_given_seed(self):
        a = ECGGenerator(seed=42).generate(5.0)
        b = ECGGenerator(seed=42).generate(5.0)
        assert np.array_equal(a.signal_mv, b.signal_mv)

    def test_different_seeds_differ(self):
        a = ECGGenerator(seed=1).generate(5.0)
        b = ECGGenerator(seed=2).generate(5.0)
        assert not np.array_equal(a.signal_mv, b.signal_mv)

    def test_beat_count_tracks_heart_rate(self):
        trace = ECGGenerator(seed=3).generate(30.0, mean_hr_bpm=60)
        assert 25 <= len(trace.labels) <= 35

    def test_r_samples_property(self):
        trace = ECGGenerator(seed=4).generate(10.0)
        assert np.all(trace.r_samples >= 0)
        assert np.all(trace.r_samples < len(trace.signal_mv))

    def test_rejects_bad_duration(self):
        with pytest.raises(SignalError):
            ECGGenerator(seed=1).generate(0.0)

    def test_rejects_bad_fs(self):
        with pytest.raises(SignalError):
            ECGGenerator(fs_hz=-1.0)


class TestRhythms:
    def test_generate_rhythm_counts(self, rng):
        spec = RhythmSpec(ectopy={"V": 0.5})
        morphologies, rr_scale = generate_rhythm(spec, 400, rng)
        labels = [m.label for m in morphologies]
        pvc_fraction = labels.count("V") / len(labels)
        assert 0.4 < pvc_fraction < 0.6
        assert rr_scale.shape == (400,)

    def test_prematurity_shortens_preceding_interval(self, rng):
        spec = RhythmSpec(ectopy={"V": 0.3}, prematurity=0.25)
        morphologies, rr_scale = generate_rhythm(spec, 200, rng)
        labels = [m.label for m in morphologies]
        checked = 0
        for i, label in enumerate(labels):
            # Isolated ectopic beat: the preceding interval shrinks by
            # the prematurity factor (consecutive ectopics compound
            # premature and compensatory factors, so skip those).
            if label == "V" and 0 < i < 199 and labels[i - 1] != "V":
                assert rr_scale[i - 1] <= 0.75 + 1e-9
                checked += 1
        assert checked > 0

    def test_amplitude_gain_applied(self, rng):
        spec = RhythmSpec(amplitude_gain=0.5)
        morphologies, _ = generate_rhythm(spec, 10, rng)
        r_amp = morphologies[0].waves["R"].amplitude_mv
        assert r_amp == pytest.approx(
            0.5 * MORPHOLOGY_BY_LABEL["N"].waves["R"].amplitude_mv
        )

    def test_spec_validation(self):
        with pytest.raises(SignalError):
            RhythmSpec(base_label="Z")
        with pytest.raises(SignalError):
            RhythmSpec(ectopy={"V": 0.7, "A": 0.5})
        with pytest.raises(SignalError):
            RhythmSpec(ectopy={"Q": 0.1})
        with pytest.raises(SignalError):
            RhythmSpec(ectopy={"V": -0.1})

    def test_rejects_non_positive_beats(self, rng):
        with pytest.raises(SignalError):
            generate_rhythm(RhythmSpec(), 0, rng)
