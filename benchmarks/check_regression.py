"""CI regression gate over the ``BENCH_*.json`` artefacts.

Usage (after running the fast-mode benchmark suite)::

    python -m pytest benchmarks/bench_batch.py -q
    python benchmarks/check_regression.py

Loads every ``results/BENCH_*.json``, compares the gated metrics against
the committed ``baselines.json`` and exits non-zero if any metric fell
more than 30 % below its baseline (or a baselined benchmark produced no
fresh measurement).  Always prints the per-run speedup summary table, so
the CI job log carries the numbers even on success.

``--update-baselines`` rewrites ``baselines.json`` from the current
results' gated metrics — run locally after an intentional performance
change, then commit the file.

``--history`` additionally consults the append-only benchmark history
(``bench_history.jsonl``, every ``write_bench`` call appends to it) and
fails on any series drifting beyond the rolling-median band — the slow
multi-PR creep the 30 % single-run gate cannot see.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import (  # noqa: E402
    BASELINE_PATH,
    compare_to_baseline,
    format_summary,
    history_path,
    load_baselines,
    load_benches,
)
from repro.obs import bench as bench_history  # noqa: E402


def update_baselines(benches: dict[str, dict]) -> dict[str, dict[str, float]]:
    """Gated metrics of the current results, in baseline layout."""
    baselines: dict[str, dict[str, float]] = {}
    for name, bench in sorted(benches.items()):
        gated = {
            metric: bench["metrics"][metric] for metric in bench.get("gate", [])
        }
        if gated:
            baselines[name] = gated
    return baselines


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    benches = load_benches()
    if not benches:
        print("no BENCH_*.json results found; run the benchmark suite first")
        return 1

    if "--update-baselines" in args:
        baselines = update_baselines(benches)
        BASELINE_PATH.write_text(
            json.dumps(baselines, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {len(baselines)} baselines to {BASELINE_PATH}")
        return 0

    baselines = load_baselines()
    rows, failures = compare_to_baseline(benches, baselines)
    print(format_summary(benches, rows))
    if "--history" in args:
        events = bench_history.load_history(history_path())
        text, drifting = bench_history.render_trend(events)
        print()
        print(text)
        if drifting:
            failures.append(
                f"benchmark history: {drifting} series drifted beyond "
                f"the rolling-median band (see trend above)"
            )
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    print()
    print("benchmark regression gate: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
