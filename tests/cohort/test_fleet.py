"""Tests for the fleet simulator: seeding invariance, shared calibration.

Covers the PR's acceptance gates:

* patient ``k``'s mission result is bit-identical whether simulated
  alone, in a different fleet order, or under a different worker count;
* a 1000-patient, 2-policy fleet on 4 workers performs every (app,
  segment, operating-point) calibration exactly once fleet-wide
  (audited through the disk cache's event log), and its population
  statistics are reproducible for a fixed seed.
"""

from __future__ import annotations

import pytest

from repro.cache import computed_events, shared_cache
from repro.cohort import (
    CohortSpec,
    FleetSimulator,
    PatientModel,
    population_frontier,
    survival_curve,
)
from repro.errors import CohortError


def small_cohort(**overrides) -> CohortSpec:
    """A cohort tiny enough for unit tests (short scaled missions)."""
    defaults = dict(
        name="unit-fleet",
        size=6,
        model=PatientModel(
            record_mix=(("100", 0.6), ("119", 0.4)),
            environment_mix=((1.0, 0.7), (1.5, 0.3)),
        ),
        duration_scale=0.01,
        voltages=(0.65, 0.8),
    )
    defaults.update(overrides)
    return CohortSpec(**defaults)


def fleet(spec: CohortSpec | None = None, **kwargs) -> FleetSimulator:
    kwargs.setdefault("n_probe", 2)
    kwargs.setdefault("probe_duration_s", 2.0)
    return FleetSimulator(spec or small_cohort(), **kwargs)


class TestFleetBasics:
    def test_rows_cover_cohort_in_order(self):
        result = fleet().run("hysteresis")
        assert [row["patient"] for row in result.rows] == list(range(6))
        assert all(row["status"] == "ok" for row in result.rows)
        assert result.patients_per_s > 0

    def test_rows_merge_profile_and_mission(self):
        row = fleet().run("hysteresis").rows[0]
        for key in ("record", "noise_gain", "battery_scale", "seed"):
            assert key in row
        for key in ("lifetime_days", "worst_snr_db", "n_violations"):
            assert key in row

    def test_summary_population_metrics(self):
        summary = fleet().run("hysteresis").summary()
        assert summary["n_patients"] == 6
        assert summary["n_failed"] == 0
        assert 0.0 <= summary["survival_fraction"] <= 1.0
        assert summary["lifetime_p5_days"] <= summary["lifetime_p50_days"]
        assert summary["quality_p10_db"] <= summary["quality_p50_db"]

    def test_policy_payload_forms(self):
        simulator = fleet()
        by_name = simulator.run("hysteresis")
        by_dict = simulator.run(
            {"name": "static", "params": {"index": 0}}
        )
        assert by_name.summary()["policy"] == "hysteresis"
        assert by_dict.summary()["policy"] == "static(index=0)"

    def test_bad_worker_count(self):
        with pytest.raises(CohortError, match="n_workers"):
            fleet().run("hysteresis", n_workers=0)

    def test_failures_captured_not_fatal(self):
        result = fleet().run("no-such-policy")
        assert len(result.failures()) == 6
        assert all("unknown policy" in row["error"] for row in result.rows)
        summary = result.summary()
        assert summary["n_failed"] == 6
        assert "survival_fraction" not in summary

    def test_non_repro_errors_also_captured(self, monkeypatch):
        # A buggy custom policy raising outside the ReproError hierarchy
        # must still become a failed row, not kill the fleet (or pool).
        import repro.cohort.fleet as fleet_module

        def boom(self, policy):
            raise ValueError("custom policy bug")

        monkeypatch.setattr(fleet_module.MissionSimulator, "run", boom)
        result = fleet().run("hysteresis")
        assert len(result.failures()) == 6
        assert all(
            row["error"] == "ValueError: custom policy bug"
            for row in result.rows
        )

    def test_progress_callback(self):
        seen = []
        fleet().run(
            "hysteresis",
            progress=lambda done, total, row: seen.append((done, total)),
        )
        assert seen == [(k + 1, 6) for k in range(6)]


class TestSeedingInvariance:
    """Satellite: the per-patient seeding property, three ways."""

    def test_alone_vs_fleet(self):
        simulator = fleet()
        full = simulator.run("hysteresis")
        for index in (0, 3, 5):
            assert simulator.simulate_patient(index, "hysteresis") == (
                full.rows[index]
            )

    def test_order_invariance(self):
        simulator = fleet()
        forward = simulator.run("hysteresis")
        shuffled = simulator.run(
            "hysteresis", indices=[4, 0, 5, 2, 1, 3]
        )
        assert shuffled.rows == forward.rows

    def test_worker_count_invariance(self):
        simulator = fleet()
        serial = simulator.run("hysteresis")
        pooled = simulator.run("hysteresis", n_workers=3)
        assert pooled.rows == serial.rows

    def test_sub_fleet_matches_full_fleet(self):
        simulator = fleet()
        full = simulator.run("hysteresis")
        sub = simulator.run("hysteresis", indices=[1, 4])
        assert sub.rows == [full.rows[1], full.rows[4]]


class TestThousandPatientFleet:
    """Acceptance: 1000 patients x 2 policies on 4 workers, with every
    calibration executed exactly once fleet-wide.

    The cohort's 24 h mission templates run duration-scaled (shape and
    calibration set preserved; only the streamed window count shrinks),
    keeping the tier-1 suite fast while the benchmark runs fleets at
    full length.
    """

    @pytest.fixture(scope="class")
    def thousand_run(self, tmp_path_factory):
        import os

        root = tmp_path_factory.mktemp("fleet-cache")
        previous = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(root)
        # The parent process has warm in-process memos from earlier
        # tests; a fresh cache root plus cleared memos makes the event
        # log a complete record of this fleet's calibration work.
        from repro.runtime import simulator as mission_simulator

        mission_simulator._calibrated_quality.cache_clear()
        mission_simulator._window_energy_pj.cache_clear()
        try:
            spec = CohortSpec(
                name="acceptance-fleet",
                size=1000,
                duration_scale=0.01,
                voltages=(0.65, 0.8),
            )
            simulator = FleetSimulator(
                spec, n_probe=2, probe_duration_s=2.0
            )
            results = {
                policy: simulator.run(policy, n_workers=4)
                for policy in ("hysteresis", "soc")
            }
            yield spec, simulator, results, root
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous
            mission_simulator._calibrated_quality.cache_clear()
            mission_simulator._window_energy_pj.cache_clear()

    def test_fleet_completes(self, thousand_run):
        _, _, results, _ = thousand_run
        for result in results.values():
            assert len(result.rows) == 1000
            assert not result.failures()
            assert result.n_workers == 4

    def test_calibrations_exactly_once_fleet_wide(self, thousand_run):
        _, _, _, root = thousand_run
        events = computed_events(root)
        assert events, "fleet ran no calibrations?"
        # 2000 patient-missions across 4 workers and 2 policies, yet no
        # calibration hash was ever computed twice ...
        assert len(events) == len(set(events))
        # ... and the discrete patient mixes kept the fleet-wide
        # calibration set small — a few hundred models serve 2000
        # missions (the economics of the shared cache).
        assert len(set(events)) < 400
        assert shared_cache().info()["entries"] == len(set(events))

    def test_population_statistics_reproducible(self, thousand_run):
        spec, simulator, results, _ = thousand_run
        # Re-simulating any sub-fleet reproduces the stored rows bit for
        # bit (fixed seed, any order, any worker count) ...
        probe = [0, 313, 999]
        resim = simulator.run("hysteresis", indices=probe)
        assert resim.rows == [
            results["hysteresis"].rows[index] for index in probe
        ]
        # ... so the population curves and frontier derived from the
        # rows are reproducible too.
        curve = survival_curve(results["hysteresis"].rows, n_points=11)
        assert curve[0][1] == 1.0
        alive = [fraction for _, fraction in curve]
        assert alive == sorted(alive, reverse=True)
        summaries = [result.summary() for result in results.values()]
        frontier = population_frontier(summaries)
        assert frontier
        assert {s["policy"] for s in frontier} <= {
            s["policy"] for s in summaries
        }
