"""Shared benchmark runner: machine-readable results + regression gate.

Every performance benchmark routes its numbers through this module
instead of ad-hoc prints: :func:`write_bench` deposits one
``results/BENCH_<name>.json`` per benchmark with wall-clock seconds,
derived ops/s and speedup metrics, plus enough environment metadata
(python / numpy / platform) to interpret the file later.

The numbers themselves are carried as :mod:`repro.obs.events` schema
events under the artefact's ``"events"`` key — the same one-object-per
-measurement format the run tracer writes — so ``repro report
results/BENCH_<name>.json`` renders a benchmark exactly like a trace,
and this module's own regression gate reads the identical records
(:func:`load_benches` folds the gauge events back into the legacy
``metrics`` dict, so older artefacts without events still load).

Regression discipline: ``baselines.json`` (committed next to this file)
records the *gated* metrics of each benchmark — dimensionless ratios
like batched-vs-sequential speedup, which transfer across machines far
better than raw wall-clock does.  :func:`compare_to_baseline` flags any
gated metric that fell more than :data:`REGRESSION_TOLERANCE` below its
committed value; ``python benchmarks/check_regression.py`` wraps that in
a CI-friendly exit code and prints the per-run speedup summary table.

Typical benchmark shape::

    from _harness import time_call, write_bench

    result_a, seq_s = time_call(run_sequential)
    result_b, bat_s = time_call(run_batched)
    assert result_a == result_b          # perf never buys wrong answers
    write_bench(
        "cold_calibration",
        metrics={
            "sequential_s": seq_s,
            "batched_s": bat_s,
            "speedup": seq_s / bat_s,
            "probes_per_s": n / bat_s,
        },
        gate=("speedup",),
        meta={"app": "dwt", "n_probe": n},
    )
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from collections.abc import Callable, Iterable
from pathlib import Path
from typing import Any

import numpy as np

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"
BASELINE_PATH = BENCH_DIR / "baselines.json"

try:
    from repro.obs import bench as bench_history
    from repro.obs.events import metric_event, run_event, validate_event
    from repro.obs.registry import host_metadata
except ImportError:  # `python benchmarks/check_regression.py` without PYTHONPATH
    sys.path.insert(0, str(BENCH_DIR.parent / "src"))
    from repro.obs import bench as bench_history
    from repro.obs.events import metric_event, run_event, validate_event
    from repro.obs.registry import host_metadata

#: A gated metric may fall this fraction below its committed baseline
#: before the regression check fails (ISSUE 4: fail on >30% regression).
REGRESSION_TOLERANCE = 0.30


def time_call(fn: Callable[[], Any], repeat: int = 1) -> tuple[Any, float]:
    """Run ``fn`` ``repeat`` times; return (last result, best wall s).

    Best-of-N is the standard noise reducer for single-process
    benchmarks; the result of the final invocation is returned so
    callers can assert correctness on exactly what was timed.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    result: Any = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return result, best


def write_bench(
    name: str,
    metrics: dict[str, float],
    gate: Iterable[str] = (),
    meta: dict[str, Any] | None = None,
) -> Path:
    """Write one ``results/BENCH_<name>.json`` artefact.

    Args:
        name: benchmark identifier (also the baseline key).
        metrics: numeric results — wall-clock seconds, ops/s, speedups.
        gate: metric names the regression check compares against the
            committed baseline (higher is better for gated metrics).
        meta: free-form scenario description (apps, trial counts, ...).
    """
    unknown = set(gate) - set(metrics)
    if unknown:
        raise ValueError(f"gated metrics missing from metrics: {unknown}")
    events = bench_events(name, metrics, meta=meta)
    payload = {
        "name": name,
        "events": events,
        "gate": sorted(gate),
        "meta": meta or {},
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    # Every measurement also lands in the append-only benchmark history
    # (flock'd, git-revision-stamped) so `repro bench trend` and
    # `check_regression.py --history` can see multi-run trajectories,
    # not just this snapshot.  REPRO_BENCH_HISTORY redirects it; the
    # default lives in the gitignored results directory.
    bench_history.append_history(events, path=history_path())
    return path


def history_path() -> Path:
    """This checkout's benchmark history (``REPRO_BENCH_HISTORY`` wins)."""
    raw = os.environ.get(bench_history.ENV_HISTORY)
    if raw:
        return Path(raw).expanduser()
    return RESULTS_DIR / "bench_history.jsonl"


def bench_events(
    name: str,
    metrics: dict[str, float],
    meta: dict[str, Any] | None = None,
) -> list[dict]:
    """A benchmark's measurements as :mod:`repro.obs.events` records.

    One ``run`` marker (trace id ``bench-<name>``, carrying ``meta`` as
    its attrs) followed by one ``gauge`` metric event per measurement —
    the exact shape ``repro report`` consumes.  Each gauge carries the
    host fingerprint (interpreter, platform, core count, repro version)
    as event attrs, so a measurement stays interpretable — and two
    BENCH artefacts stay comparable via ``repro report --diff`` — even
    after it is separated from the artefact's ``env`` block.  Every
    record is validated against the schema before it is returned; the
    harness never writes an artefact the reader would reject.
    """
    trace = f"bench-{name}"
    now = time.time()
    pid = os.getpid()
    host = host_metadata()
    host_attrs = {
        "python": host["python"],
        "platform": host["platform"],
        "cpus": host["cpus"],
        "repro": host["repro"],
    }
    events = [run_event(trace, name, now, pid, attrs=meta or {})]
    events.extend(
        metric_event(
            trace, key, "gauge", float(value), now, pid, attrs=host_attrs
        )
        for key, value in sorted(metrics.items())
    )
    for event in events:
        problems = validate_event(event)
        if problems:
            raise ValueError(
                f"benchmark {name!r} produced a malformed event: "
                + "; ".join(problems)
            )
    return events


def load_benches(results_dir: Path | None = None) -> dict[str, dict]:
    """All ``BENCH_*.json`` payloads in ``results_dir``, keyed by name.

    Each payload's ``metrics`` dict is reconstructed from its schema
    ``events`` (gauge value per metric name); artefacts from before the
    events format carried ``metrics`` directly and pass through as-is.
    """
    root = results_dir or RESULTS_DIR
    benches: dict[str, dict] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        if "metrics" not in payload:
            payload["metrics"] = {
                event["name"]: float(event["value"])
                for event in payload.get("events", [])
                if event.get("event") == "metric"
                and event.get("kind") in ("gauge", "counter")
            }
        benches[payload["name"]] = payload
    return benches


def load_baselines(path: Path | None = None) -> dict[str, dict[str, float]]:
    """The committed baseline metrics (empty when none are recorded)."""
    baseline_path = path or BASELINE_PATH
    if not baseline_path.exists():
        return {}
    return json.loads(baseline_path.read_text())


def compare_to_baseline(
    benches: dict[str, dict],
    baselines: dict[str, dict[str, float]],
    tolerance: float = REGRESSION_TOLERANCE,
) -> tuple[list[dict], list[str]]:
    """Grade fresh benchmark results against the committed baseline.

    Returns ``(rows, failures)``: one row per (benchmark, gated metric)
    with current/baseline/floor values and a status, plus the list of
    human-readable failure strings (regressions and baseline entries
    with no fresh measurement).
    """
    rows: list[dict] = []
    failures: list[str] = []
    for name, gated in sorted(baselines.items()):
        bench = benches.get(name)
        if bench is None:
            failures.append(f"{name}: baseline present but no BENCH_{name}.json")
            continue
        for metric, baseline_value in sorted(gated.items()):
            current = bench["metrics"].get(metric)
            floor = baseline_value * (1.0 - tolerance)
            if metric not in bench.get("gate", []):
                # The benchmark opted this metric out on this
                # environment (e.g. popcount's native-vs-fallback ratio
                # is meaningless on numpy < 2.0): report, don't gate.
                status = "ungated"
            elif current is None:
                status = "missing"
                failures.append(f"{name}.{metric}: not measured")
            elif current < floor:
                status = "REGRESSION"
                failures.append(
                    f"{name}.{metric}: {current:.2f} fell below the "
                    f"{floor:.2f} floor (baseline {baseline_value:.2f}, "
                    f"tolerance {tolerance:.0%})"
                )
            else:
                status = "ok"
            rows.append(
                {
                    "bench": name,
                    "metric": metric,
                    "current": current,
                    "baseline": baseline_value,
                    "floor": floor,
                    "status": status,
                }
            )
    return rows, failures


def format_summary(
    benches: dict[str, dict], rows: list[dict]
) -> str:
    """The per-run speedup summary table printed into the CI job log."""
    lines = [
        f"{'benchmark':<24s} {'metric':<16s} {'current':>10s} "
        f"{'baseline':>10s} {'floor':>10s}  status",
        "-" * 80,
    ]
    graded = {(row["bench"], row["metric"]) for row in rows}
    for row in rows:
        current = (
            f"{row['current']:.2f}" if row["current"] is not None else "-"
        )
        lines.append(
            f"{row['bench']:<24s} {row['metric']:<16s} {current:>10s} "
            f"{row['baseline']:>10.2f} {row['floor']:>10.2f}  {row['status']}"
        )
    for name, bench in sorted(benches.items()):
        for metric, value in sorted(bench["metrics"].items()):
            if (name, metric) in graded:
                continue
            lines.append(
                f"{name:<24s} {metric:<16s} {value:>10.2f} "
                f"{'-':>10s} {'-':>10s}  info"
            )
    return "\n".join(lines)
