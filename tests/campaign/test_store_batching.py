"""ResultStore.append_many and the runner's per-tick batched flushes."""

from __future__ import annotations

import json

import pytest

from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import CampaignError


def _record(i: int, status: str = "ok") -> dict:
    return {
        "hash": f"h{i}",
        "kind": "energy",
        "params": {"i": i},
        "status": status,
        "result": {"value": i},
    }


class TestAppendMany:
    def test_writes_all_records_in_order(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_many([_record(i) for i in range(5)])
        lines = (tmp_path / "s.jsonl").read_text().splitlines()
        assert [json.loads(line)["hash"] for line in lines] == [
            f"h{i}" for i in range(5)
        ]
        assert len(store) == 5

    def test_format_matches_single_append(self, tmp_path):
        one = ResultStore(tmp_path / "one.jsonl")
        many = ResultStore(tmp_path / "many.jsonl")
        records = [_record(i) for i in range(3)]
        for record in records:
            one.append(record)
        many.append_many(records)
        assert (
            (tmp_path / "one.jsonl").read_text()
            == (tmp_path / "many.jsonl").read_text()
        )

    def test_empty_batch_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_many([])
        assert not (tmp_path / "s.jsonl").exists()

    def test_validates_every_record_before_writing(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        bad = [_record(0), {"hash": "x", "status": "bogus"}]
        with pytest.raises(CampaignError):
            store.append_many(bad)
        # Validation happens up front: nothing was persisted.
        assert not (tmp_path / "s.jsonl").exists()

    def test_batch_then_compact_keeps_latest(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append_many([_record(0), _record(1)])
        store.append_many([{**_record(0), "result": {"value": 99}}])
        assert store.load()["h0"]["result"] == {"value": 99}
        dropped = store.compact()
        assert dropped == 1
        assert store.load()["h0"]["result"] == {"value": 99}


class TestRunnerTickBatching:
    def _spec(self) -> CampaignSpec:
        return CampaignSpec(
            name="store-batch",
            kind="energy",
            axes={"emt": ("none", "dream"), "voltage": (0.6, 0.8, 0.9)},
            fixed={
                "workload": {
                    "n_reads": 1000,
                    "n_writes": 500,
                    "duration_s": 0.5,
                }
            },
        )

    def test_pool_run_persists_every_point(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        result = run_campaign(self._spec(), store=store, n_workers=2)
        assert result.n_executed == 6 and result.n_failed == 0
        assert store.completed_hashes() == {
            rec["hash"] for rec in result.records
        }

    def test_pool_matches_serial_results_and_store(self, tmp_path):
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        serial = run_campaign(self._spec(), store=serial_store)
        pool_store = ResultStore(tmp_path / "pool.jsonl")
        pooled = run_campaign(self._spec(), store=pool_store, n_workers=3)
        assert [rec["result"] for rec in serial.records] == [
            rec["result"] for rec in pooled.records
        ]
        assert serial_store.completed_hashes() == pool_store.completed_hashes()

    def test_pool_resume_from_batched_store(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        run_campaign(self._spec(), store=store, n_workers=2)
        resumed = run_campaign(self._spec(), store=store, n_workers=2)
        assert resumed.n_executed == 0
        assert resumed.n_cached == 6
