"""Memory-access traces replayed by the simulated cores."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

__all__ = ["MemoryAccess"]


@dataclass(frozen=True)
class MemoryAccess:
    """One word access issued by a core.

    Attributes:
        address: logical word address in the shared memory.
        is_write: write (True) or read (False).
        gap_cycles: compute cycles the core spends *before* issuing this
            access (models the instruction stream between loads/stores).
    """

    address: int
    is_write: bool
    gap_cycles: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise SimulationError(
                f"address must be non-negative, got {self.address}"
            )
        if self.gap_cycles < 0:
            raise SimulationError(
                f"gap_cycles must be non-negative, got {self.gap_cycles}"
            )
