"""Tests for the ADC model and the paper's quality metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SignalError
from repro.signals import adc_quantize, dac_restore, mse, prd, snr_db
from repro.signals.metrics import SNR_CAP_DB, rms


class TestAdc:
    def test_full_scale_mapping(self):
        raw = adc_quantize(np.array([8.0, -8.0, 0.0]), full_scale_mv=8.0)
        assert raw.tolist() == [32767, -32768, 0]

    def test_saturation_beyond_range(self):
        raw = adc_quantize(np.array([20.0, -20.0]), full_scale_mv=8.0)
        assert raw.tolist() == [32767, -32768]

    @given(value=st.floats(min_value=-7.9, max_value=7.9))
    def test_roundtrip_error_within_lsb(self, value):
        raw = adc_quantize(np.array([value]))
        back = dac_restore(raw)[0]
        assert abs(back - value) <= 8.0 / 32768 + 1e-12

    def test_rejects_bad_full_scale(self):
        with pytest.raises(SignalError):
            adc_quantize(np.array([1.0]), full_scale_mv=0.0)
        with pytest.raises(SignalError):
            dac_restore(np.array([1]), full_scale_mv=-1.0)

    def test_headroom_leaves_sign_runs(self):
        """A 1 mV signal in an 8 mV converter uses ~3 fewer MSBs."""
        raw = adc_quantize(np.array([1.0]))
        assert abs(int(raw[0])) < 1 << 13


class TestMse:
    def test_zero_for_identical(self):
        x = np.arange(10)
        assert mse(x, x) == 0.0

    def test_known_value(self):
        assert mse(np.array([0, 0]), np.array([3, 4])) == pytest.approx(12.5)

    def test_shape_mismatch(self):
        with pytest.raises(SignalError):
            mse(np.arange(3), np.arange(4))

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            mse(np.array([]), np.array([]))


class TestSnr:
    def test_formula1_value(self):
        """Direct check of the paper's Formula 1."""
        theo = np.array([100.0, -100.0, 100.0, -100.0])
        expe = theo + np.array([1.0, -1.0, 1.0, -1.0])
        expected = 20 * np.log10(100.0 / 1.0)
        assert snr_db(theo, expe) == pytest.approx(expected)

    def test_cap_on_identical(self):
        x = np.arange(100)
        assert snr_db(x, x) == SNR_CAP_DB

    def test_custom_cap(self):
        x = np.arange(100)
        assert snr_db(x, x, cap_db=40.0) == 40.0

    def test_zero_reference_with_error(self):
        assert snr_db(np.zeros(4), np.ones(4)) == 0.0

    def test_monotone_in_error_magnitude(self, rng):
        x = rng.normal(size=1000) * 100
        small = snr_db(x, x + rng.normal(size=1000))
        large = snr_db(x, x + 10 * rng.normal(size=1000))
        assert small > large

    @given(scale=st.floats(min_value=0.01, max_value=100.0))
    def test_scale_invariance(self, scale):
        x = np.array([10.0, -20.0, 30.0, -40.0])
        y = x + np.array([1.0, 2.0, -1.0, -2.0])
        assert snr_db(x * scale, y * scale) == pytest.approx(
            snr_db(x, y), abs=1e-9
        )

    def test_rms(self):
        assert rms(np.array([3.0, 4.0, 3.0, 4.0])) == pytest.approx(3.5355339)
        with pytest.raises(SignalError):
            rms(np.array([]))


class TestPrd:
    def test_prd_snr_relation(self, rng):
        """SNR = 20*log10(100/PRD) by construction."""
        x = rng.normal(size=500) * 50
        y = x + rng.normal(size=500)
        assert snr_db(x, y) == pytest.approx(
            20 * np.log10(100.0 / prd(x, y)), abs=1e-9
        )

    def test_prd_zero_reference(self):
        with pytest.raises(SignalError):
            prd(np.zeros(4), np.ones(4))

    def test_prd_identical_is_zero(self):
        x = np.arange(1, 10)
        assert prd(x, x) == 0.0
