"""Platform benches: crossbar scaling on the VirtualSOC-lite substrate.

The paper's platform supports up to 16 cores behind a 16-bank crossbar;
this bench replays a real DWT memory trace on 1-16 cores and reports the
cycle counts and bank-conflict rates — the performance face of the
shared-memory substrate (Fig 1's block scheme in action).
"""

from __future__ import annotations

import pytest

from repro.apps import make_app
from repro.emt import NoProtection
from repro.mem import MemoryFabric
from repro.signals import load_record
from repro.soc import SoCConfig, SoCSimulator, tasks_from_fabric


@pytest.fixture(scope="module")
def dwt_trace_fabric():
    fabric = MemoryFabric(NoProtection(), record_trace=True)
    record = load_record("100", duration_s=4.0)
    make_app("dwt").run(record.samples, fabric)
    return fabric


@pytest.mark.parametrize("n_cores", [1, 2, 4, 8, 16])
def test_crossbar_scaling(benchmark, n_cores, dwt_trace_fabric, report_sink):
    config = SoCConfig(n_cores=n_cores)
    tasks = tasks_from_fabric(dwt_trace_fabric, config)
    report = benchmark.pedantic(
        lambda: SoCSimulator(config).run(tasks), rounds=1, iterations=1
    )

    rows = report_sink.shared.setdefault("soc_rows", {})
    rows[n_cores] = (
        f"  {n_cores:2d} cores: {report.cycles:8d} cycles, "
        f"{report.conflicts:6d} conflicts, "
        f"{report.accesses_per_cycle:.3f} acc/cycle, "
        f"{report.duration_s * 1e3:.2f} ms @ 200 MHz"
    )
    lines = ["DWT trace replay on the 16-bank crossbar:"]
    lines += [rows[k] for k in sorted(rows)]
    report_sink.add("soc_crossbar_scaling", "\n".join(lines))

    assert report.n_accesses == (
        dwt_trace_fabric.stats.data_reads + dwt_trace_fabric.stats.data_writes
    )
    if n_cores > 1:
        single = report_sink.shared.get("soc_single_core_cycles")
        if single:
            assert report.cycles < single  # parallelism must help
    else:
        report_sink.shared["soc_single_core_cycles"] = report.cycles
