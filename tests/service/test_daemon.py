"""In-process daemon end-to-end: submit, execute, stream, fetch."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.api.schema import Experiment, Fig2Params
from repro.api.session import Session
from repro.campaign.spec import CampaignSpec
from repro.errors import ServiceError
from repro.obs import RunRegistry
from repro.service import (
    ExperimentService,
    JobQueue,
    ServiceClient,
    campaign_job_payload,
)

#: Fields that differ between two executions of identical work.
VOLATILE = ("elapsed_s", "patients_per_s", "cache")


def canon(records):
    """Records in bit-identical comparison form: volatile fields
    stripped, JSON-normalised, sorted by content hash."""
    stripped = [
        {k: v for k, v in record.items() if k not in VOLATILE}
        for record in records
    ]
    return sorted(
        json.loads(json.dumps(stripped, sort_keys=True)),
        key=lambda record: record["hash"],
    )


def tiny_fig2(name="svc-tiny", **top) -> Experiment:
    return Experiment(
        name=name,
        kind="figure",
        params=Fig2Params(
            apps=("morphology",), records=("100",), duration_s=2.0
        ),
        **top,
    )


def energy_spec(n_reads=20_000) -> CampaignSpec:
    return CampaignSpec(
        name="svc-energy",
        kind="energy",
        axes={"emt": ("none", "dream"), "voltage": (0.9,)},
        fixed={"workload": {
            "n_reads": n_reads, "n_writes": n_reads, "duration_s": 1e-3,
        }},
    )


class TestExperimentJobs:
    def test_end_to_end_and_bit_identical_to_inline(
        self, run_daemon, service_paths, tmp_path
    ):
        experiment = tiny_fig2(store="svc-fig2")
        with run_daemon() as (_service, client):
            job, created = client.submit(experiment)
            assert created
            assert job.job_id == f"{experiment.name}-" \
                f"{experiment.content_hash()[:12]}"
            record = client.wait(job.job_id, timeout_s=120)
            assert record.status == "done"
            assert record.result["n_points"] == 32
            assert record.result["n_failed"] == 0

            # Results shard across the daemon's configured shard count.
            shard_dir = service_paths["store"] / "svc-fig2.shards"
            shards = sorted(p.name for p in shard_dir.glob("shard-*.jsonl"))
            assert shards == ["shard-00.jsonl", "shard-01.jsonl"]

            # Fetch re-attaches to the stores — identical to an inline
            # run of the very same experiment, modulo wall-clock noise.
            fetched = client.fetch(job.job_id)
            inline = Session(store_dir=tmp_path / "inline").run(experiment)
            assert canon(fetched.records) == canon(inline.records)

    def test_resubmission_deduplicates(self, run_daemon):
        experiment = tiny_fig2(store="svc-dedupe")
        with run_daemon() as (_service, client):
            job, created = client.submit(experiment)
            assert created
            client.wait(job.job_id, timeout_s=120)
            again, created_again = client.submit(experiment)
            assert not created_again
            assert again.job_id == job.job_id
            assert again.status == "done"

    def test_progress_stream_yields_heartbeats(self, run_daemon):
        experiment = tiny_fig2(store="svc-stream")
        with run_daemon() as (_service, client):
            job, _ = client.submit(experiment)
            events = list(
                client.progress_stream(job.job_id, poll_s=0.05,
                                       timeout_s=120)
            )
            assert events, "no run.progress heartbeats streamed"
            assert all(e["name"] == "run.progress" for e in events)
            last = events[-1]
            assert last["value"] == last["attrs"]["total"] == 32

    def test_ephemeral_experiment_runs_but_persists_nothing(
        self, run_daemon
    ):
        experiment = tiny_fig2(name="svc-ephemeral")  # no store field
        with run_daemon() as (_service, client):
            job, _ = client.submit(experiment)
            record = client.wait(job.job_id, timeout_s=120)
            assert record.status == "done"
            # Same semantics as Session.attach on a store-less
            # experiment: nothing to re-read.
            assert client.fetch(job.job_id).records == []

    def test_service_jobs_land_in_the_run_registry(
        self, run_daemon, service_paths
    ):
        experiment = tiny_fig2(store="svc-registry")
        with run_daemon() as (_service, client):
            job, _ = client.submit(experiment)
            client.wait(job.job_id, timeout_s=120)
            registry = RunRegistry(service_paths["trace"])
            record = registry.get(job.job_id)
            assert record is not None
            assert record.status == "ok"
            assert record.pid is not None


class TestCampaignJobs:
    def test_campaign_payload_round_trip(self, run_daemon, service_paths):
        spec = energy_spec()
        payload = campaign_job_payload(
            spec, spec.expand(), "svc-energy", str(service_paths["store"]),
        )
        with run_daemon() as (_service, client):
            job, created = client.submit_campaign(payload)
            assert created and job.job_id.startswith("svc-")
            record = client.wait(job.job_id, timeout_s=120)
            assert record.status == "done"
            assert record.result["n_points"] == 2
            assert record.result["n_executed"] == 2

    def test_malformed_campaign_submission_rejected(self, run_daemon):
        with run_daemon() as (_service, client):
            with pytest.raises(ServiceError, match="points"):
                client.submit_campaign({
                    "spec": {
                        "name": "x", "kind": "energy",
                        "axes": {"emt": ["none"]},
                    },
                })
            with pytest.raises(ServiceError, match="at least one axis"):
                client.submit_campaign({
                    "spec": {"name": "x", "kind": "energy", "axes": {}},
                    "points": [],
                })


class TestSocketOps:
    def test_ping_reports_identity_and_queue(self, run_daemon):
        with run_daemon(workers=1, shards=2) as (_service, client):
            pong = client.ping()
            assert pong["pid"] == os.getpid()  # in-process daemon thread
            assert pong["workers"] == 1
            assert pong["shards"] == 2
            assert isinstance(pong["jobs"], dict)

    def test_unknown_op_and_garbage_are_survivable(self, run_daemon):
        with run_daemon() as (_service, client):
            with pytest.raises(ServiceError, match="unknown service op"):
                client.request("selfdestruct")
            with pytest.raises(ServiceError, match="job id"):
                client.request("status", job_id="ghost")
            # The daemon shrugs off protocol garbage and keeps serving.
            import socket as socketlib

            with socketlib.socket(
                socketlib.AF_UNIX, socketlib.SOCK_STREAM
            ) as conn:
                conn.connect(str(client.socket_path()))
                conn.sendall(b"this is not json\n")
                conn.recv(65536)
            client.ping()

    def test_second_daemon_on_same_root_refused(self, service_paths):
        # A *foreign live* process owns the root (same-pid re-serve is
        # the allowed restart path, so the owner must be another pid).
        owner = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(60)"])
        try:
            root = service_paths["root"]
            root.mkdir(parents=True)
            (root / "daemon.json").write_text(
                json.dumps({"pid": owner.pid}), encoding="utf-8"
            )
            rival = ExperimentService(
                root=root, store_dir=service_paths["store"],
                trace_dir=service_paths["trace"],
            )
            with pytest.raises(ServiceError, match="already running"):
                rival.serve()
        finally:
            owner.kill()
            owner.wait()


class TestCancellation:
    def test_cancel_queued_job_via_daemon(self, service_paths):
        """_op_cancel without a fleet: deterministic queued-job cancel."""
        service = ExperimentService(
            root=service_paths["root"], store_dir=service_paths["store"],
            trace_dir=service_paths["trace"],
        )
        service.root.mkdir(parents=True)
        response = service._op_submit({
            "kind": "experiment",
            "payload": tiny_fig2(name="svc-cancel").to_payload(),
        })
        job_id = response["job"]["job_id"]
        cancelled = service._op_cancel({"job_id": job_id})
        assert cancelled["job"]["status"] == "cancelled"
        # The registry row is finalized so `repro runs` shows closure.
        record = RunRegistry(service_paths["trace"]).get(job_id)
        assert record.status == "interrupted"
        assert "cancelled" in record.error

    def test_cancel_rejects_inflight_jobs(self, service_paths):
        service = ExperimentService(
            root=service_paths["root"], store_dir=service_paths["store"],
            trace_dir=service_paths["trace"],
        )
        service.root.mkdir(parents=True)
        response = service._op_submit({
            "kind": "experiment",
            "payload": tiny_fig2(name="svc-inflight").to_payload(),
        })
        job_id = response["job"]["job_id"]
        service._inflight[job_id] = {}
        with pytest.raises(ServiceError, match="already executing"):
            service._op_cancel({"job_id": job_id})

    def test_offline_cancel_without_a_daemon(self, service_paths):
        queue = JobQueue(service_paths["root"])
        queue.submit("lonely", "experiment", {})
        client = ServiceClient(root=service_paths["root"])
        assert not client.alive()
        assert client.cancel("lonely").status == "cancelled"


class TestClientOffline:
    def test_status_and_jobs_work_with_daemon_down(self, service_paths):
        queue = JobQueue(service_paths["root"])
        queue.submit("offline-job", "experiment", {}, name="off")
        client = ServiceClient(root=service_paths["root"])
        assert client.status("offline-job").status == "queued"
        assert [j.job_id for j in client.jobs()] == ["offline-job"]

    def test_request_without_daemon_points_at_serve(self, service_paths):
        client = ServiceClient(root=service_paths["root"])
        with pytest.raises(ServiceError, match="repro serve"):
            client.ping()

    def test_wait_raises_when_daemon_dies_mid_job(self, service_paths):
        # A journal with a non-terminal job and a dead daemon pid: wait
        # must raise rather than poll forever.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        queue = JobQueue(service_paths["root"])
        queue.submit("doomed", "experiment", {})
        service_paths["root"].mkdir(parents=True, exist_ok=True)
        (service_paths["root"] / "daemon.json").write_text(
            json.dumps({"pid": proc.pid}), encoding="utf-8"
        )
        client = ServiceClient(root=service_paths["root"])
        with pytest.raises(ServiceError, match="died"):
            client.wait("doomed", timeout_s=5)

    def test_wait_times_out(self, run_daemon):
        # max_inflight=0 parks every submission in the queue, so the
        # job deterministically never turns terminal before the timeout.
        with run_daemon(max_inflight=0) as (_service, client):
            job, _ = client.submit(tiny_fig2(name="svc-parked"))
            with pytest.raises(ServiceError, match="timed out"):
                client.wait(job.job_id, timeout_s=0.2, poll_s=0.05)


class TestCrashRecovery:
    def test_serve_recovers_inflight_jobs_at_startup(self, service_paths):
        # Simulate a SIGKILLed daemon: in-flight journal states, no
        # process. A fresh daemon must requeue them before scheduling.
        queue = JobQueue(service_paths["root"])
        queue.submit("was-claimed", "experiment", {})
        queue.submit("was-running", "experiment", {})
        queue.mark("was-claimed", "claimed", owner_pid=1)
        queue.mark("was-running", "running", owner_pid=1)
        requeued = queue.recover()
        assert {r.job_id for r in requeued} == {
            "was-claimed", "was-running",
        }
        assert all(
            r.status == "queued" and r.requeues == 1 for r in requeued
        )
