"""Population-scale fleet simulation over synthetic patient cohorts.

PR 1 built the campaign engine (explore a *design grid* in parallel);
PR 2 the adaptive runtime (simulate *one device* closed-loop).  This
package is the layer over both that deployment planning needs: simulate
*many devices at once, fast*, and reduce the fleet to population
reliability statistics.

* :mod:`repro.cohort.population` — :class:`PatientModel` /
  :class:`CohortSpec`: per-patient physiology and environment sampling
  (record phenotypes, noise environments, BER shielding, battery lot
  spread, mission templates) with deterministic per-patient seeding;
* :mod:`repro.cohort.fleet` — :class:`FleetSimulator`: thousands of
  patient missions through the :class:`~repro.runtime.MissionSimulator`,
  fanned over workers, with every calibration shared machine-wide
  through the :mod:`repro.cache` disk cache (exactly once per fleet);
* :mod:`repro.cohort.analytics` — battery-survival curves, quality
  percentile bands, and population Pareto frontiers over tail
  statistics.

Campaign integration: the ``cohort`` evaluator kind
(:mod:`repro.campaign.evaluators`) runs policy x cohort grids through
the parallel runner/store/resume machinery; ``python -m repro cohort``
is the CLI front-end and ``benchmarks/bench_cohort.py`` the throughput
benchmark.
"""

from .analytics import (
    median_survival_days,
    population_frontier,
    quality_bands,
    survival_curve,
)
from .fleet import FleetResult, FleetSimulator, simulate_patient
from .population import CohortSpec, PatientModel, PatientProfile

__all__ = [
    "PatientModel",
    "PatientProfile",
    "CohortSpec",
    "FleetSimulator",
    "FleetResult",
    "simulate_patient",
    "survival_curve",
    "median_survival_days",
    "quality_bands",
    "population_frontier",
]
