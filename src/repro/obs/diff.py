"""Cross-run comparison: span-path wall time and metric deltas.

``repro report --diff <run-a> <run-b>`` answers "what changed between
run N-1 and run N": per span path, how the call count and total wall
time moved; per metric, how the folded value moved — with regressions
highlighted.  Both sides are plain event lists, so the diff works
across any two schema sources: two registered run traces, a trace and
a BENCH artefact, two BENCH artefacts from different machines (the
registry's host metadata, echoed in the header, says whether a wall-
time delta is really a machine delta).

The aggregation reuses :func:`~repro.obs.report.span_totals` and
:func:`~repro.obs.report.metric_totals` — the diff never invents a
second notion of "total" that could drift from the report's.
"""

from __future__ import annotations

from typing import Any

from .report import metric_totals, span_totals, summarize

__all__ = [
    "REGRESSION_THRESHOLD",
    "diff_events",
    "render_diff",
]

#: A span path whose total seconds grew by more than this fraction (and
#: by more than an absolute floor) is flagged as a regression.
REGRESSION_THRESHOLD = 0.25

#: Absolute growth floor (seconds) below which a span delta is noise.
_ABS_FLOOR_S = 0.005


def _pct(a: float, b: float) -> float | None:
    """Relative change b vs a, or None when a is zero."""
    if a == 0.0:
        return None
    return (b - a) / a


def _metric_scalar(slot: dict[str, Any]) -> float:
    """A folded metric as one comparable number (histograms: mean)."""
    value = slot["value"]
    if slot["kind"] == "histogram":
        return value["sum"] / value["count"] if value["count"] else 0.0
    return float(value)


def diff_events(
    events_a: list[dict], events_b: list[dict]
) -> dict[str, Any]:
    """Structured comparison of two event sets (a = before, b = after).

    Returns::

        {
          "a": {"run_id", "wall_s", "spans", "failed", "attrs"},
          "b": {...},
          "spans": [{"path", "count_a", "count_b", "total_a",
                     "total_b", "delta_s", "pct", "regression"}, ...],
          "metrics": [{"name", "kind", "a", "b", "delta", "pct"}, ...],
        }

    Span rows cover the union of paths (a path absent on one side reads
    as count 0 / 0 s there) and are sorted by absolute wall-time delta,
    biggest mover first; metric rows are sorted by name.
    """
    sides = {}
    for label, events in (("a", events_a), ("b", events_b)):
        summary = summarize(events)
        run = summary["run"]
        sides[label] = {
            "run_id": run["trace"] if run else (
                events[0]["trace"] if events else "(empty)"
            ),
            "wall_s": summary["wall_s"],
            "spans": summary["spans"],
            "failed": len(summary["failed"]),
            "attrs": dict(run.get("attrs", {})) if run else {},
        }

    totals_a = span_totals(events_a)
    totals_b = span_totals(events_b)
    span_rows: list[dict[str, Any]] = []
    for path in sorted(set(totals_a) | set(totals_b)):
        slot_a = totals_a.get(path, {"count": 0, "total_s": 0.0, "failed": 0})
        slot_b = totals_b.get(path, {"count": 0, "total_s": 0.0, "failed": 0})
        delta = slot_b["total_s"] - slot_a["total_s"]
        pct = _pct(slot_a["total_s"], slot_b["total_s"])
        regression = (
            delta > _ABS_FLOOR_S
            and (pct is None or pct > REGRESSION_THRESHOLD)
        )
        span_rows.append(
            {
                "path": path,
                "count_a": slot_a["count"],
                "count_b": slot_b["count"],
                "failed_a": slot_a["failed"],
                "failed_b": slot_b["failed"],
                "total_a": slot_a["total_s"],
                "total_b": slot_b["total_s"],
                "delta_s": delta,
                "pct": pct,
                "regression": regression,
            }
        )
    span_rows.sort(key=lambda row: abs(row["delta_s"]), reverse=True)

    folded_a = metric_totals(events_a)
    folded_b = metric_totals(events_b)
    metric_rows: list[dict[str, Any]] = []
    for name in sorted(set(folded_a) | set(folded_b)):
        slot_a, slot_b = folded_a.get(name), folded_b.get(name)
        value_a = _metric_scalar(slot_a) if slot_a else None
        value_b = _metric_scalar(slot_b) if slot_b else None
        delta = (
            value_b - value_a
            if value_a is not None and value_b is not None
            else None
        )
        metric_rows.append(
            {
                "name": name,
                "kind": (slot_b or slot_a)["kind"],
                "a": value_a,
                "b": value_b,
                "delta": delta,
                "pct": (
                    _pct(value_a, value_b)
                    if value_a is not None and value_b is not None
                    else None
                ),
            }
        )

    return {
        "a": sides["a"],
        "b": sides["b"],
        "spans": span_rows,
        "metrics": metric_rows,
    }


def _fmt_num(value: float | None, precision: int = 6) -> str:
    return "-" if value is None else f"{value:.{precision}g}"


def _fmt_pct(pct: float | None) -> str:
    return "  (new)" if pct is None else f"{pct:+7.1%}"


def render_diff(diff: dict[str, Any], top: int = 20) -> str:
    """The ``repro report --diff`` text for one :func:`diff_events`."""
    a, b = diff["a"], diff["b"]
    lines = [
        f"Run diff — a: {a['run_id']}  ->  b: {b['run_id']}",
        f"  wall time {a['wall_s']:.3f} s -> {b['wall_s']:.3f} s "
        f"({_fmt_pct(_pct(a['wall_s'], b['wall_s']))}) · "
        f"spans {a['spans']} -> {b['spans']} · "
        f"failed {a['failed']} -> {b['failed']}",
    ]
    for label, side in (("a", a), ("b", b)):
        if side["attrs"]:
            rendered = ", ".join(
                f"{key}={side['attrs'][key]}"
                for key in sorted(side["attrs"])[:6]
            )
            lines.append(f"  {label} attrs: {rendered}")

    span_rows = diff["spans"][:top]
    if span_rows:
        lines.append("")
        lines.append(
            f"Span wall-time deltas (top {len(span_rows)} by |delta|):"
        )
        lines.append(
            f"  {'path':<44} {'a':>9} {'b':>9} {'delta':>9}  {'change':>7}"
        )
        for row in span_rows:
            path = "/".join(row["path"])
            if len(path) > 44:
                path = "..." + path[-41:]
            flag = "  REGRESSION" if row["regression"] else ""
            failed = ""
            if row["failed_a"] or row["failed_b"]:
                failed = (
                    f"  [failed {row['failed_a']}->{row['failed_b']}]"
                )
            lines.append(
                f"  {path:<44} {row['total_a']:>8.3f}s {row['total_b']:>8.3f}s "
                f"{row['delta_s']:>+8.3f}s  {_fmt_pct(row['pct']):>7}"
                f"{flag}{failed}"
            )

    metric_rows = diff["metrics"]
    if metric_rows:
        lines.append("")
        lines.append("Metric deltas:")
        lines.append(
            f"  {'metric':<34} {'kind':<9} {'a':>12} {'b':>12} {'delta':>12}"
        )
        for row in metric_rows:
            lines.append(
                f"  {row['name']:<34} {row['kind']:<9} "
                f"{_fmt_num(row['a']):>12} {_fmt_num(row['b']):>12} "
                f"{_fmt_num(row['delta']):>12}"
            )

    n_regressions = sum(1 for row in diff["spans"] if row["regression"])
    lines.append("")
    lines.append(
        f"{n_regressions} span path(s) regressed more than "
        f"{REGRESSION_THRESHOLD:.0%}"
        if n_regressions
        else "No span-path regressions beyond "
        f"{REGRESSION_THRESHOLD:.0%}"
    )
    return "\n".join(lines)
