"""The disabled fast path must stay effectively free.

Every probe in the library sits on a hot seam (per-window, per-point,
per-cache-lookup), guarded only by ``obs.enabled()``.  These tests pin
the properties that make that acceptable: no allocation per disabled
span, and six-figure probe counts in well under a second.  The wall
bound is deliberately loose — it guards against the fast path growing
real work (I/O, dict churn, object construction), not against machine
noise.
"""

from __future__ import annotations

import time

from repro import obs
from repro.obs.core import _NULL_SPAN


def test_disabled_span_allocates_nothing():
    # One shared null span, not a fresh object per call.
    assert obs.span("a") is _NULL_SPAN
    assert obs.span("b", key="value") is _NULL_SPAN


def test_disabled_probes_cost_microseconds_each():
    n = 100_000
    started = time.perf_counter()
    for i in range(n):
        with obs.span("hot", index=i):
            obs.counter("hits")
            obs.observe("wait_s", 0.1)
    elapsed = time.perf_counter() - started
    # ~3 probes per iteration; anything near 5 µs/iteration means the
    # no-op path picked up real work.  Typical: well under 1 s total.
    assert elapsed < 5.0, f"{n} disabled iterations took {elapsed:.2f}s"
    assert not obs.enabled()
