"""Population fleet walkthrough: will the design survive deployment?

The paper picks one (voltage, EMT) operating point for one device; a
shipped product meets a *population* — different hearts, noise
environments, enclosures and battery lots.  This example builds a
300-patient cohort, streams every patient's day through the adaptive
runtime under two policies (sharing every calibration through the disk
cache), and reduces the fleet to the numbers a deployment review asks
for: the battery-survival curve, the quality spread across wearers, and
the tail-statistic Pareto frontier — then runs the same comparison as a
cached, resumable ``repro.campaign`` grid.

Run:  python examples/cohort_fleet.py
(Missions are duration-scaled for a quick run; drop ``duration_scale``
to stream full 24 h timelines.)
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.cohort import (
    CohortSpec,
    FleetSimulator,
    PatientModel,
    population_frontier,
    quality_bands,
    survival_curve,
)
from repro.exp.report import format_fleet, format_survival

POLICIES = (
    {"name": "static", "params": {"emt": "secded", "voltage": 0.70}},
    "hysteresis",
)


def build_cohort() -> CohortSpec:
    """A PVC-heavy monitored population with mixed noise environments."""
    return CohortSpec(
        name="ward-population",
        size=300,
        model=PatientModel(
            scenario_mix=(("active_day", 0.6), ("overnight", 0.4)),
            # Pathology prevalence: a quarter of the ward shows frequent
            # PVCs (records 106/119 are the PVC-rich phenotypes).
            record_mix=(
                ("100", 0.45), ("101", 0.30), ("106", 0.15), ("119", 0.10),
            ),
            environment_mix=((1.0, 0.5), (1.5, 0.35), (2.5, 0.15)),
            battery_cv=0.12,
        ),
        duration_scale=0.02,  # quick look; 1.0 streams the full day
        voltages=(0.65, 0.70, 0.80),
    )


def main() -> None:
    cohort = build_cohort()
    fleet = FleetSimulator(cohort, n_probe=2, probe_duration_s=2.0)
    print(f"cohort {cohort.name!r}: {cohort.size} patients")

    # -- direct fleet runs: one per policy --------------------------------
    results = [fleet.run(policy, n_workers=2) for policy in POLICIES]
    summaries = [result.summary() for result in results]
    print()
    print(format_fleet(cohort.name, summaries))

    # -- the survival curve: what fraction of the fleet is still alive? --
    adaptive = results[-1]
    print()
    print(format_survival(
        summaries[-1]["policy"], survival_curve(adaptive.rows, n_points=9),
    ))

    # -- quality spread across wearers ------------------------------------
    bands = quality_bands(adaptive.rows)
    print("\nworst-window SNR across the population (hysteresis):")
    for percentile, value in sorted(bands.items()):
        print(f"  p{percentile:<4.0f} {value:6.1f} dB")

    # -- the deployment question: which policies are tail-optimal? -------
    frontier = population_frontier(summaries)
    print("\npopulation Pareto frontier (p5 lifetime vs p10 quality):")
    for summary in frontier:
        print(f"  {summary['policy']:24s} "
              f"p5 {summary['lifetime_p5_days']:6.3f} d   "
              f"p10 {summary['quality_p10_db']:6.1f} dB")

    # -- the same exploration as a cached campaign grid -------------------
    spec = CampaignSpec(
        name="example-cohort-grid",
        kind="cohort",
        axes={"policy": POLICIES},
        fixed={
            "cohort": cohort.to_dict(),
            "size": 60,  # a pilot-sized override of the same population
            "n_probe": 2,
            "probe_duration_s": 2.0,
        },
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp) / f"{spec.name}.jsonl")
        campaign = run_campaign(spec, store=store)
        again = run_campaign(spec, store=store)  # resumes: executes nothing
        print(f"\ncampaign: {campaign.n_executed} executed, then "
              f"{again.n_cached} cached on resume")
        for record in campaign.ok_records():
            result = record["result"]
            print(f"  {result['policy']:24s} "
                  f"survive {result['survival_fraction'] * 100:5.1f}%  "
                  f"p5 life {result['lifetime_p5_days']:6.3f} d")


if __name__ == "__main__":
    main()
