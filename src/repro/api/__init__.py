"""Unified experiment API: one declarative spec, one session facade.

After four PRs the repo had four parallel ways to express an
exploration — ``exp/*`` figure drivers, ``CampaignSpec`` sweeps,
``MissionSpec`` runs and ``CohortSpec`` fleets — each with its own CLI
flags and parameter plumbing.  This package converges them:

* :mod:`repro.api.schema` — a versioned, file-loadable
  :class:`Experiment` describing any workload kind (``figure``,
  ``sweep``, ``mission``, ``cohort``) as TOML or JSON;
* :mod:`repro.api.serde` — the shared serialisation layer (canonical
  JSON/content hashing, model-object dicts, mixes, policy tokens,
  TOML/JSON file IO) every entry point reuses;
* :mod:`repro.api.session` — the :class:`Session` facade: plans an
  experiment into campaign specs, executes them through the campaign
  runner on a pluggable backend (``inline`` or ``multiprocessing``),
  and persists results in content-hash-keyed stores;
* :mod:`repro.api.results` — the uniform :class:`ResultHandle` every
  run returns (``.frame()``, ``.pareto()``, ``.summary()``,
  ``.result()``), replacing the four subsystems' ad-hoc return shapes.

Quickstart::

    from repro.api import Session, load_experiment

    experiment = load_experiment("examples/experiments/sweep_quick.toml")
    handle = Session(workers=4).run(experiment)
    for row in handle.pareto("energy_pj", "snr_db"):
        print(row)

Submodules are imported lazily: ``import repro.api`` is cheap, and the
serde layer stays importable from low-level modules (e.g.
:mod:`repro.campaign.spec`) without dragging in the session machinery.
"""

from __future__ import annotations

import importlib
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "Experiment",
    "load_experiment",
    "dump_experiment",
    "experiment_from_payload",
    "Session",
    "ExecutionBackend",
    "register_backend",
    "backend_names",
    "ResultHandle",
    "serde",
    "schema",
    "session",
    "results",
]

#: Lazy export table: public name -> home submodule.
_EXPORTS = {
    "SCHEMA_VERSION": ".schema",
    "Experiment": ".schema",
    "load_experiment": ".schema",
    "dump_experiment": ".schema",
    "experiment_from_payload": ".schema",
    "Session": ".session",
    "ExecutionBackend": ".session",
    "register_backend": ".session",
    "backend_names": ".session",
    "ResultHandle": ".results",
    "serde": None,
    "schema": None,
    "session": None,
    "results": None,
}


def __getattr__(name: str) -> Any:
    """PEP 562 lazy loader for the export table above."""
    try:
        home = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if home is None:
        return importlib.import_module(f".{name}", __name__)
    return getattr(importlib.import_module(home, __name__), name)


def __dir__() -> list[str]:
    """Expose the lazy exports to ``dir()`` and tab completion."""
    return sorted(set(globals()) | set(_EXPORTS))
