"""Quickstart: protect an ECG buffer in a voltage-scaled memory.

Loads a synthetic MIT-BIH-like record, stores it in the 32 kB faulty
data memory at a scaled supply voltage, and compares what survives under
the paper's three protection schemes — the library's core loop in ~40
lines.

Run:  python examples/quickstart.py [voltage]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.emt import DreamEMT, NoProtection, SecDedEMT
from repro.energy import TECH_32NM_LP
from repro.mem import MemoryFabric, sample_fault_map
from repro.mem.layout import PAPER_GEOMETRY
from repro.signals import load_record, snr_db


def main(voltage: float = 0.60) -> None:
    record = load_record("106", duration_s=10.0)  # PVC-rich record
    ber = TECH_32NM_LP.ber(voltage)
    print(f"record 106: {len(record.samples)} samples, "
          f"{len(record.labels)} beats")
    print(f"memory at {voltage:.2f} V -> BER = {ber:.2e}\n")

    rng = np.random.default_rng(2016)
    # One defect sample, shared across EMTs (the paper's fair-comparison
    # protocol): drawn at the widest codeword, restricted per technique.
    shared = sample_fault_map(PAPER_GEOMETRY.n_words, 22, ber, rng)

    print(f"{'EMT':12s} {'extra bits':>10s} {'SNR (dB)':>9s} "
          f"{'corrected':>9s} {'detected':>9s}")
    for emt in (NoProtection(), DreamEMT(), SecDedEMT()):
        fault_map = shared.restricted_to(emt.stored_bits)
        fabric = MemoryFabric(emt, fault_map=fault_map)
        survived = fabric.roundtrip("ecg", record.samples)
        quality = snr_db(record.samples, survived)
        stats = fabric.stats.decode
        print(
            f"{emt.name:12s} {emt.extra_bits:10d} {quality:9.1f} "
            f"{stats.corrected:9d} {stats.detected_uncorrectable:9d}"
        )

    print("\nDREAM corrects every fault under the per-word MSB mask at a")
    print("fraction of SEC/DED's energy (see examples/voltage_sweep.py).")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.60)
