"""Tests for the buffer-sensitivity extension driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError, MemoryModelError
from repro.exp.buffers import run_buffer_sensitivity
from repro.exp.common import ExperimentConfig
from repro.mem.faults import sample_fault_map

FAST = ExperimentConfig(records=("100",), duration_s=3.0, n_runs=1)


class TestRestrictedToWords:
    def test_keeps_only_range(self, rng):
        fm = sample_fault_map(64, 16, 0.2, rng)
        cut = fm.restricted_to_words(10, 5)
        assert np.all(cut.set_mask[:10] == 0)
        assert np.all(cut.set_mask[15:] == 0)
        assert np.array_equal(cut.set_mask[10:15], fm.set_mask[10:15])
        assert cut.n_faults <= fm.n_faults

    def test_empty_range(self, rng):
        fm = sample_fault_map(64, 16, 0.2, rng)
        assert fm.restricted_to_words(0, 0).n_faults == 0

    def test_validation(self, rng):
        fm = sample_fault_map(16, 16, 0.1, rng)
        with pytest.raises(MemoryModelError):
            fm.restricted_to_words(-1, 4)
        with pytest.raises(MemoryModelError):
            fm.restricted_to_words(10, 10)


class TestBufferSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return run_buffer_sensitivity("dwt", config=FAST)

    def test_discovers_all_dwt_buffers(self, result):
        names = set(result.layout)
        assert "dwt.input" in names
        assert any(name.startswith("dwt.detail") for name in names)
        assert any(name.startswith("dwt.approx") for name in names)

    def test_every_buffer_scored(self, result):
        assert set(result.snr_db) == set(result.layout)
        for snr in result.snr_db.values():
            assert -60.0 < snr <= 96.0

    def test_input_more_critical_than_last_detail(self, result):
        """Input faults propagate through every scale; faults in the
        final detail buffer only touch that one output slice."""
        assert result.snr_db["dwt.input"] < result.snr_db["dwt.detail4"]

    def test_most_critical(self, result):
        name = result.most_critical()
        assert result.snr_db[name] == min(result.snr_db.values())

    def test_lsb_injection_is_benign(self):
        lsb = run_buffer_sensitivity("dwt", position=0, config=FAST)
        msb = run_buffer_sensitivity("dwt", position=14, config=FAST)
        assert lsb.snr_db["dwt.input"] > msb.snr_db["dwt.input"] + 20


class TestMonteCarloStats:
    def test_ci_and_sem(self):
        from repro.exp.common import MonteCarloResult

        result = MonteCarloResult(
            snr_mean_db={"dream": 50.0},
            snr_std_db={"dream": 4.0},
            n_runs=16,
        )
        assert result.snr_sem_db("dream") == pytest.approx(1.0)
        low, high = result.snr_ci95_db("dream")
        assert low == pytest.approx(50.0 - 1.96)
        assert high == pytest.approx(50.0 + 1.96)

    def test_unknown_emt(self):
        from repro.exp.common import MonteCarloResult

        with pytest.raises(ExperimentError):
            MonteCarloResult(n_runs=4).snr_sem_db("dream")
