"""The service CLI verbs, exercised in-process through ``main``.

Everything here runs against the journal/registry on disk with no live
daemon — the offline paths are exactly what must keep working after a
daemon exits (that is the service's inspectability contract).
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.cli import main
from repro.obs import RunRegistry
from repro.service import JobQueue

from test_daemon import tiny_fig2


@pytest.fixture()
def populated(service_paths):
    queue = JobQueue(service_paths["root"])
    queue.submit("alpha-123", "experiment", {}, name="alpha", priority=2)
    queue.submit("svc-beta", "campaign", {}, name="beta")
    queue.mark("svc-beta", "done", result={"status": "ok", "n_points": 3})
    return queue


class TestJobs:
    def test_table_lists_jobs(self, populated, capsys):
        assert main(["jobs"]) == 0
        out = capsys.readouterr().out
        assert "alpha-123" in out and "svc-beta" in out
        assert "queued" in out and "done" in out

    def test_json_output_is_parsable(self, populated, capsys):
        assert main(["jobs", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {job["job_id"] for job in payload} == {
            "alpha-123", "svc-beta",
        }
        assert all("status" in job for job in payload)

    def test_filters(self, populated, capsys):
        assert main(["jobs", "--status", "done", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [job["job_id"] for job in payload] == ["svc-beta"]

    def test_empty_journal(self, capsys):
        assert main(["jobs"]) == 0
        assert "No service jobs" in capsys.readouterr().out


class TestRunsJson:
    def test_runs_json_includes_effective_status(
        self, service_paths, capsys
    ):
        registry = RunRegistry(service_paths["trace"])
        registry.register("run-x", name="x", kind="figure")
        registry.finalize("run-x", "ok", wall_s=1.0)
        assert main([
            "runs", "--json", "--trace-dir", str(service_paths["trace"]),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["run_id"] == "run-x"
        assert payload[0]["effective_status"] == "ok"
        assert payload[0]["pid"] is not None


class TestCancel:
    def test_cancel_queued_offline(self, populated, capsys):
        assert main(["cancel", "alpha-123"]) == 0
        assert populated.get("alpha-123").status == "cancelled"

    def test_cancel_terminal_job_fails_cleanly(self, populated, capsys):
        assert main(["cancel", "svc-beta"]) == 1
        assert "only queued" in capsys.readouterr().err


class TestFetch:
    def test_fetch_campaign_job_refused(self, populated, capsys):
        assert main(["fetch", "svc-beta"]) == 1
        assert "campaign store" in capsys.readouterr().err

    def test_fetch_unfinished_job_refused(self, populated, capsys):
        assert main(["fetch", "alpha-123"]) == 1
        assert "once it is done" in capsys.readouterr().err

    def test_fetch_unknown_job(self, capsys):
        assert main(["fetch", "nope"]) == 1
        assert "unknown job id" in capsys.readouterr().err


class TestServe:
    def test_stop_without_daemon_fails_cleanly(self, capsys):
        assert main(["serve", "--stop"]) == 1
        assert "repro serve" in capsys.readouterr().err

    def test_submit_requires_daemon(self, tmp_path, capsys):
        from repro.api.schema import dump_experiment

        path = tmp_path / "exp.toml"
        dump_experiment(tiny_fig2(name="cli-sub"), path)
        assert main(["submit", str(path)]) == 1
        assert "repro serve" in capsys.readouterr().err


class TestWatchDeadRuns:
    """Satellite: dead-run detection for runs owned by another process.

    A service job's registry row carries the *daemon's* pid (stamped at
    submit time), not the submitting CLI's.  When that owner dies
    without finalizing, ``repro watch`` must call the run dead instead
    of tailing forever — even though the watching process never was in
    the run's process tree.
    """

    def _dead_owner_pid(self) -> int:
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_watch_reports_dead_owner(self, service_paths, capsys):
        trace_dir = service_paths["trace"]
        registry = RunRegistry(trace_dir)
        registry.register(
            "svc-dead-run", name="doomed", kind="experiment",
            trace_path=trace_dir / "svc-dead-run.jsonl",
            pid=self._dead_owner_pid(),
        )
        trace_dir.mkdir(parents=True, exist_ok=True)
        (trace_dir / "svc-dead-run.jsonl").touch()
        rc = main([
            "watch", "svc-dead-run", "--once",
            "--trace-dir", str(trace_dir),
        ])
        out = capsys.readouterr().out
        assert rc == 2
        assert "RUN DEAD" in out
        assert "owner pid" in out

    def test_live_owner_is_not_dead(self, service_paths, capsys):
        import os

        trace_dir = service_paths["trace"]
        registry = RunRegistry(trace_dir)
        registry.register(
            "svc-live-run", name="fine", kind="experiment",
            trace_path=trace_dir / "svc-live-run.jsonl",
            pid=os.getpid(),
        )
        trace_dir.mkdir(parents=True, exist_ok=True)
        (trace_dir / "svc-live-run.jsonl").touch()
        rc = main([
            "watch", "svc-live-run", "--once",
            "--trace-dir", str(trace_dir),
        ])
        assert rc == 0
        assert "RUN DEAD" not in capsys.readouterr().out

    def test_finalized_run_is_never_stale(self, service_paths):
        registry = RunRegistry(service_paths["trace"])
        registry.register(
            "svc-closed", name="done", kind="experiment",
            pid=self._dead_owner_pid(),
        )
        record = registry.finalize("svc-closed", "ok", wall_s=0.1)
        # finalize carries the owner pid forward but a terminal status
        # can never be stale, dead owner or not.
        assert record.pid is not None
        assert not record.is_stale()
        assert record.effective_status() == "ok"
