"""Platform configuration of the VirtualSOC-lite substrate."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..mem.layout import PAPER_GEOMETRY, MemoryGeometry

__all__ = ["SoCConfig"]


@dataclass(frozen=True)
class SoCConfig:
    """The INYU-like platform of the paper's experimental setup.

    Attributes:
        n_cores: processing elements issuing memory traffic (<= 16,
            "up to 16 ARM V6 cores").
        clock_hz: system clock ("a clock frequency of 200 MHz").
        geometry: the shared data memory (32 kB in 16 banks).
        cycles_per_access: crossbar-plus-SRAM latency of an uncontended
            access, in cycles.
        compute_gap_cycles: default compute cycles a core spends between
            consecutive memory accesses when synthesising traces.
    """

    n_cores: int = 1
    clock_hz: float = 200e6
    geometry: MemoryGeometry = field(default_factory=lambda: PAPER_GEOMETRY)
    cycles_per_access: int = 2
    compute_gap_cycles: int = 3

    def __post_init__(self) -> None:
        if not 1 <= self.n_cores <= 16:
            raise ConfigurationError(
                f"n_cores must be in [1, 16], got {self.n_cores}"
            )
        if self.clock_hz <= 0:
            raise ConfigurationError(
                f"clock must be positive, got {self.clock_hz}"
            )
        if self.cycles_per_access < 1:
            raise ConfigurationError(
                f"cycles_per_access must be >= 1, got {self.cycles_per_access}"
            )
        if self.compute_gap_cycles < 0:
            raise ConfigurationError(
                f"compute_gap_cycles must be >= 0, got {self.compute_gap_cycles}"
            )

    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz
