"""E5 — regenerate the Section V / Formula 2 memory-overhead comparison.

Published values for 16-bit words: DREAM 1 + log2(16) = 5 extra bits per
word (in the error-free mask memory), ECC SEC/DED 2 + log2(16) = 6 extra
bits (in the faulty memory).
"""

from __future__ import annotations

from repro.exp.overheads import formula2_dream, formula2_secded, overhead_table
from repro.exp.report import format_overheads


def test_overhead_table(benchmark, report_sink):
    rows = benchmark.pedantic(
        lambda: overhead_table(word_sizes=(8, 16, 32)), rounds=1, iterations=1
    )
    report_sink.add("overheads_section_v", format_overheads(rows))

    indexed = {(r.emt_name, r.data_bits): r for r in rows}
    assert indexed[("dream", 16)].extra_bits == 5
    assert indexed[("secded", 16)].extra_bits == 6
    # Formula 2 holds at every implemented word size.
    for bits in (8, 16, 32):
        assert indexed[("dream", bits)].extra_bits == formula2_dream(bits)
        assert indexed[("secded", bits)].extra_bits == formula2_secded(bits)
    # DREAM's extra bits all live in the safe mask memory; ECC's all in
    # the faulty array.
    assert indexed[("dream", 16)].safe_bits == 5
    assert indexed[("dream", 16)].faulty_bits == 0
    assert indexed[("secded", 16)].safe_bits == 0
    assert indexed[("secded", 16)].faulty_bits == 6
