"""Experiment E4 — Section VI-C: trading result quality for energy.

The paper's closing experiment: given an application and an output
degradation tolerance (DWT at -1 dB in the paper), find for each EMT the
lowest supply voltage whose Fig 4 quality still meets the tolerance, and
the energy saved by running there relative to the nominal, unprotected
system.  The published example:

* no protection holds quality down to 0.85 V  -> save 12.7 %,
* DREAM holds it down to 0.65 V              -> save 30.6 %,
* ECC SEC/DED holds it down to 0.55 V        -> save 39.5 %,

yielding a three-range hybrid policy ("triggering, selectively, one or
the other, according to the memory supply voltage"); below 0.55 V only
multi-error EMTs could maintain a reliable medical output.

The energy evaluations are expressed as filtered (EMT, voltage) campaign
grids through :func:`repro.exp.energy_table.energy_spec`, executed by the
shared campaign runner — the same evaluator the energy-table driver and
the ``repro sweep`` CLI use, so all three price an operating point
identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..campaign.runner import run_campaign
from ..emt.hybrid import VoltageRange
from ..energy.accounting import Workload
from ..energy.technology import TECH_32NM_LP, Technology
from ..errors import ExperimentError
from .energy_table import energy_spec, measure_workload
from .fig4 import Fig4Result

__all__ = [
    "EmtOperatingPoint",
    "TradeoffResult",
    "run_tradeoff",
    "paper_example_savings",
    "PAPER_EXAMPLE_POINTS",
]

#: The illustrative operating points of Section VI-C ("e.g.: [0.9; 0.85],
#: [0.85; 0.65] and [0.65; 0.55] Volts"), with the savings the paper
#: reports for each: 12.7 %, 30.6 % and 39.5 %.
PAPER_EXAMPLE_POINTS: tuple[tuple[str, float, float], ...] = (
    ("none", 0.85, 12.7),
    ("dream", 0.65, 30.6),
    ("secded", 0.55, 39.5),
)


@dataclass(frozen=True)
class EmtOperatingPoint:
    """Lowest safe voltage and resulting saving for one EMT."""

    emt_name: str
    v_min_safe: float
    saving_vs_nominal: float


@dataclass
class TradeoffResult:
    """The Section VI-C voltage-range policy for one application."""

    app_name: str
    tolerance_db: float
    reference_snr_db: float
    operating_points: list[EmtOperatingPoint] = field(default_factory=list)
    policy: list[VoltageRange] = field(default_factory=list)

    def best_saving(self) -> float:
        """The largest saving any single technique achieves."""
        if not self.operating_points:
            raise ExperimentError("no operating points were computed")
        return max(p.saving_vs_nominal for p in self.operating_points)


def _energy_grid(
    emt_names: tuple[str, ...],
    voltages: tuple[float, ...],
    workload: Workload,
    tech: Technology,
    name: str,
    filters: tuple = (),
) -> dict[tuple[str, float], float]:
    """Evaluate an energy campaign and index totals by (EMT, voltage)."""
    spec = energy_spec(
        emt_names, voltages, workload, tech, name=name, filters=filters
    )
    campaign = run_campaign(spec)
    campaign.raise_on_failure()
    return {
        (rec["params"]["emt"], rec["params"]["voltage"]): rec["result"][
            "total_pj"
        ]
        for rec in campaign.records
    }


def run_tradeoff(
    fig4: Fig4Result,
    app_name: str = "dwt",
    tolerance_db: float = 1.0,
    emt_names: tuple[str, ...] = ("none", "dream", "secded"),
    workload: Workload | None = None,
    tech: Technology = TECH_32NM_LP,
) -> TradeoffResult:
    """Derive the VI-C policy from measured Fig 4 data.

    Args:
        fig4: a completed Fig 4 sweep containing ``app_name``.
        app_name: application setting the quality requirement.
        tolerance_db: allowed degradation below the error-free ceiling
            (the paper uses 1 dB for DWT).
        emt_names: candidate techniques, cheapest-first preference when
            building the range policy.
        workload / tech: energy-model inputs for the savings.

    Returns:
        A :class:`TradeoffResult` with per-EMT operating points and the
        stitched hybrid voltage policy.

    :func:`repro.campaign.analysis.extract_tradeoff` implements the same
    rules over stored campaign records (for ``repro sweep``); a
    cross-implementation test pins the two together — change them in
    lockstep.
    """
    if app_name not in fig4.points:
        raise ExperimentError(f"fig4 result has no app {app_name!r}")
    if tolerance_db < 0:
        raise ExperimentError("tolerance must be non-negative")
    workload = workload or measure_workload(app_name)

    v_nominal = max(fig4.voltages)
    # The quality requirement: within `tolerance_db` of the error-free
    # ceiling, read off the highest-voltage point of the sweep.
    ceilings = [
        fig4.points[app_name][v_nominal].snr_mean_db[name]
        for name in emt_names
    ]
    reference_snr = max(ceilings)
    min_snr = reference_snr - tolerance_db

    v_safes = {
        name: fig4.min_voltage_meeting(app_name, name, min_snr)
        for name in emt_names
    }
    wanted = {
        (name, v_safe) for name, v_safe in v_safes.items()
        if v_safe is not None
    }
    wanted.add(("none", v_nominal))
    grid_emts = emt_names if "none" in emt_names else ("none", *emt_names)
    energy = _energy_grid(
        grid_emts,
        tuple(fig4.voltages),
        workload,
        tech,
        name=f"tradeoff-{app_name}",
        filters=(
            lambda coords: (coords["emt"], coords["voltage"]) in wanted,
        ),
    )
    baseline_energy = energy[("none", v_nominal)]

    result = TradeoffResult(
        app_name=app_name,
        tolerance_db=tolerance_db,
        reference_snr_db=reference_snr,
    )
    for name in emt_names:
        v_safe = v_safes[name]
        if v_safe is None:
            continue
        result.operating_points.append(
            EmtOperatingPoint(
                emt_name=name,
                v_min_safe=v_safe,
                saving_vs_nominal=1.0
                - energy[(name, v_safe)] / baseline_energy,
            )
        )

    result.policy = _build_policy(result.operating_points, v_nominal)
    return result


def paper_example_savings(
    workload: Workload | None = None,
    tech: Technology = TECH_32NM_LP,
    v_nominal: float = 0.90,
    points: tuple[tuple[str, float, float], ...] = PAPER_EXAMPLE_POINTS,
) -> list[EmtOperatingPoint]:
    """Savings at the paper's *illustrative* Section VI-C ranges.

    The paper's three voltage ranges are given as an example ("e.g.:")
    rather than derived strictly from Fig 4 — under a literal -1 dB
    criterion its own Fig 4c curves would already violate the tolerance
    at 0.55 V.  This helper therefore evaluates the energy model exactly
    at the published operating points, which is the comparison
    EXPERIMENTS.md records against 12.7 % / 30.6 % / 39.5 %.

    The evaluation runs as a filtered campaign: the (EMT, voltage) cross
    product is cut down to the published pairs plus the unprotected
    nominal baseline.
    """
    workload = workload or measure_workload()
    wanted = {(name, voltage) for name, voltage, _pct in points}
    wanted.add(("none", v_nominal))

    emt_names = tuple(dict.fromkeys(name for name, _v, _p in points))
    if "none" not in emt_names:
        emt_names = ("none", *emt_names)
    voltages = tuple(
        dict.fromkeys(
            [v for _n, v, _p in points] + [v_nominal]
        )
    )
    energy = _energy_grid(
        emt_names,
        voltages,
        workload,
        tech,
        name="tradeoff-paper-points",
        filters=(
            lambda coords: (coords["emt"], coords["voltage"]) in wanted,
        ),
    )
    baseline = energy[("none", v_nominal)]
    return [
        EmtOperatingPoint(
            emt_name=emt_name,
            v_min_safe=voltage,
            saving_vs_nominal=1.0 - energy[(emt_name, voltage)] / baseline,
        )
        for emt_name, voltage, _paper_pct in points
    ]


def _build_policy(
    points: list[EmtOperatingPoint], v_nominal: float
) -> list[VoltageRange]:
    """Stitch operating points into contiguous voltage ranges.

    Techniques are ordered by how deep they can scale; each owns the
    range between its own floor and the previous technique's floor —
    the paper's "[0.9; 0.85], [0.85; 0.65], [0.65; 0.55]" structure.
    """
    ordered = sorted(points, key=lambda p: -p.v_min_safe)
    policy: list[VoltageRange] = []
    upper = v_nominal
    for point in ordered:
        if point.v_min_safe >= upper:
            continue
        policy.append(
            VoltageRange(
                v_min=point.v_min_safe,
                v_max=upper,
                emt_name=point.emt_name,
                saving_pct=point.saving_vs_nominal * 100.0,
            )
        )
        upper = point.v_min_safe
    return policy
