"""Live run monitoring: tail a trace sink into a terminal dashboard.

``repro watch <run-id|latest>`` follows a run *from its trace alone* —
no callback wiring, no shared process: the tracer's heartbeat gauges
(:func:`repro.obs.core.heartbeat`) reach the JSONL sink within about a
second, and :class:`TraceTail` reads only the bytes appended since the
last poll (a partial trailing line — a writer mid-append — is held
back until its newline arrives).

Each frame folds everything tailed so far into one snapshot: overall
and per-campaign/per-fleet progress with throughput and ETA, live
gauges (windows/s, patients/s), cache hit rate, per-worker span counts
and busy time with straggler flags (a worker gone quiet while the run
advances), and failure counts.  Alert rules (:mod:`repro.obs.alerts`)
re-evaluate every frame, so a degrading fleet flags while it runs.

In a TTY the frame redraws in place (ANSI home+clear); ``--once`` or a
non-TTY stream prints plain frames — the CI/log mode.  The loop ends
when the run does: the ``session.run`` root span closing, or the run
registry reporting a terminal status.  A run that can never finish —
no events arriving and a provably dead owner pid — ends the watch with
a clear note and exit code 2 instead of hanging forever.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, TextIO

from ..errors import ObsError
from .alerts import AlertRule, breached, evaluate_rules, render_outcomes
from .events import validate_event
from .report import RESILIENCE_COUNTERS, metric_series, summarize

__all__ = [
    "TraceTail",
    "WatchState",
    "render_frame",
    "watch",
]

#: Progress gauges the dashboard knows how to read, in display order.
PROGRESS_GAUGES = ("run.progress", "campaign.progress", "fleet.progress")

#: Rate/ETA estimation looks back over at most this many seconds.
_RATE_WINDOW_S = 30.0

#: A worker with no events for this long (while the run advances) is
#: flagged as a possible straggler.
_STRAGGLER_S = 20.0

#: The event stream must be quiet for this long before a dead-owner
#: verdict ends the watch — dying workers may still be flushing.
_DEAD_QUIET_S = 3.0


class TraceTail:
    """Incremental reader of a growing JSONL trace sink.

    Tracks a byte offset into the file and returns only the *complete*
    lines appended since the previous :meth:`poll`; a trailing line
    with no newline yet (a writer mid-append) stays unread until it is
    finished.  A file that shrank (a re-run truncating the sink) resets
    the offset and re-reads from the top.  A complete but malformed
    line is a hard :class:`~repro.errors.ObsError`, exactly as in
    ``repro report`` — a trace that lies is worse than no trace.
    """

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> list[dict]:
        """Validated events appended since the last poll (maybe empty)."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:
            self._offset = 0
        if size == self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return []
        self._offset += cut + 1
        events: list[dict] = []
        for raw in chunk[: cut + 1].splitlines():
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObsError(
                    f"{self.path}: not valid JSON while tailing: {exc}"
                ) from exc
            problems = validate_event(payload)
            if problems:
                raise ObsError(
                    f"{self.path}: malformed trace event: "
                    + "; ".join(problems)
                )
            events.append(payload)
        return events


class WatchState:
    """Everything tailed so far, folded for the dashboard.

    ``update`` absorbs new events; ``snapshot`` produces the JSON-safe
    structure :func:`render_frame` renders (and tests assert on).  The
    state keeps the full event list — alert evaluation and the
    span/metric folds reuse the report's aggregation functions over it,
    so watch and report can never disagree about a number.
    """

    def __init__(self, run_id: str | None = None) -> None:
        self.run_id = run_id
        self.events: list[dict] = []
        self.finished = False
        #: (name, attr items) -> deque[(event t, value)] for rate/ETA.
        self._samples: dict[tuple, deque] = {}
        self._last_event_by_pid: dict[int, float] = {}

    def update(self, events: list[dict]) -> None:
        """Absorb freshly tailed events."""
        for event in events:
            self.events.append(event)
            self._last_event_by_pid[event["pid"]] = max(
                self._last_event_by_pid.get(event["pid"], 0.0), event["t"]
            )
            if (
                event["event"] == "metric"
                and event["kind"] == "gauge"
                and event["name"] in PROGRESS_GAUGES
            ):
                key = (
                    event["name"],
                    tuple(sorted(event.get("attrs", {}).items())),
                )
                samples = self._samples.setdefault(key, deque(maxlen=256))
                samples.append((event["t"], float(event["value"])))
            elif (
                event["event"] == "span"
                and event["name"] == "session.run"
            ):
                # The run's root span only closes when the run is over.
                self.finished = True

    @staticmethod
    def _rate(samples: deque) -> float | None:
        """Progress units per second over the trailing window.

        Defensive on purpose: a first heartbeat landing in the same
        tick as the run span gives a zero (or float-epsilon) elapsed
        window, and a clock hiccup can hand back non-finite values —
        both must yield "no rate yet" (``None``), never an inf/NaN
        that leaks into the rendered frame.
        """
        if len(samples) < 2:
            return None
        t_last, v_last = samples[-1]
        t_first, v_first = samples[0]
        for t, value in samples:
            if t >= t_last - _RATE_WINDOW_S:
                t_first, v_first = t, value
                break
        elapsed = t_last - t_first
        if not math.isfinite(elapsed) or elapsed < 1e-6:
            return None
        rate = (v_last - v_first) / elapsed
        return rate if math.isfinite(rate) else None

    def progress_entries(self) -> list[dict[str, Any]]:
        """One entry per live progress gauge, in display order.

        A session-run trace carries the same campaign's progress twice
        (the session's ``run.progress`` heartbeat and the runner's
        ``campaign.progress``); the runner-level duplicate is dropped.
        """
        covered = {
            dict(attr_items).get("campaign")
            for (name, attr_items) in self._samples
            if name == "run.progress"
        }
        entries: list[dict[str, Any]] = []
        for gauge_name in PROGRESS_GAUGES:
            for (name, attr_items), samples in sorted(
                self._samples.items()
            ):
                if name != gauge_name:
                    continue
                attrs = dict(attr_items)
                if (
                    name == "campaign.progress"
                    and attrs.get("campaign") in covered
                ):
                    continue
                t, done = samples[-1]
                total = attrs.get("total")
                rate = self._rate(samples)
                eta_s = None
                # Only a positive, finite rate yields an ETA — a run
                # whose progress gauge went *backwards* (a re-run
                # resetting counters) must not print a negative ETA.
                if (
                    rate is not None
                    and rate > 0
                    and isinstance(total, (int, float))
                    and total > done
                ):
                    eta_s = (total - done) / rate
                    if not math.isfinite(eta_s):
                        eta_s = None
                if name == "run.progress":
                    label = str(
                        attrs.get("campaign")
                        or attrs.get("experiment", "run")
                    )
                elif name == "fleet.progress":
                    label = (
                        f"fleet {attrs.get('cohort', '?')}"
                        f"/{attrs.get('policy', '?')}"
                    )
                else:
                    label = str(attrs.get("campaign", "campaign"))
                entries.append(
                    {
                        "gauge": name,
                        "label": label,
                        "done": done,
                        "total": (
                            float(total)
                            if isinstance(total, (int, float))
                            else None
                        ),
                        "rate": rate,
                        "eta_s": eta_s,
                        "t": t,
                    }
                )
        return entries

    def snapshot(self) -> dict[str, Any]:
        """The dashboard's data: one fold over everything tailed."""
        summary = summarize(self.events)
        run = summary["run"]
        series = metric_series(self.events)
        metrics = summary["metrics"]

        gauges = {
            name: slot["value"]
            for (name, _attrs), slot in sorted(series.items())
            if slot["kind"] == "gauge"
            and name.endswith("_per_s")
            and isinstance(slot["value"], (int, float))
            and math.isfinite(slot["value"])
        }

        cache = {}
        hits = sum(
            metrics[name]["value"]
            for name in ("cache.memory_hit", "cache.disk_hit")
            if name in metrics
        )
        lookups = hits + metrics.get("cache.computed", {}).get("value", 0.0)
        if lookups:
            cache = {
                "lookups": int(lookups),
                "hit_rate": hits / lookups,
            }

        last_t = max(
            (event["t"] for event in self.events), default=None
        )
        workers = []
        # Every pid that emitted *anything* counts as a worker — a
        # process mid-span has heartbeat metrics but no closed spans.
        for pid in sorted(self._last_event_by_pid):
            slot = summary["workers"].get(pid, {"busy_s": 0.0, "spans": 0})
            quiet_s = (
                last_t - self._last_event_by_pid[pid]
                if last_t is not None
                else 0.0
            )
            workers.append(
                {
                    "pid": pid,
                    "spans": slot["spans"],
                    "busy_s": slot["busy_s"],
                    "quiet_s": quiet_s,
                    "straggler": (
                        not self.finished and quiet_s > _STRAGGLER_S
                    ),
                }
            )

        elapsed_s = summary["wall_s"] if self.events else 0.0
        resources = []
        for pid in sorted(summary["resources"]):
            proc = summary["resources"][pid]
            cpu_s = proc.get("cpu_s")
            cpu_util = (
                cpu_s / elapsed_s
                if cpu_s is not None and elapsed_s > 0.0
                else None
            )
            resources.append(
                {
                    "pid": pid,
                    "peak_rss_bytes": proc.get("peak_rss_bytes"),
                    "cpu_s": cpu_s,
                    "cpu_util": cpu_util,
                }
            )

        failures = {
            "spans": len(summary["failed"]),
            "points": int(
                metrics.get("campaign.points_failed", {}).get("value", 0)
            ),
            "patients": int(
                metrics.get("fleet.patients_failed", {}).get("value", 0)
            ),
        }

        resilience = {
            name: int(metrics[name]["value"])
            for name in RESILIENCE_COUNTERS
            if name in metrics and metrics[name]["value"]
        }

        return {
            "run_id": (
                run["trace"] if run else (self.run_id or "(unknown)")
            ),
            "run_attrs": dict(run.get("attrs", {})) if run else {},
            "started_t": run["t"] if run else None,
            "elapsed_s": elapsed_s,
            "events": len(self.events),
            "spans": summary["spans"],
            "finished": self.finished,
            "progress": self.progress_entries(),
            "gauges": gauges,
            "cache": cache,
            "workers": workers,
            "resources": resources,
            "failures": failures,
            "resilience": resilience,
        }


def _bar(done: float, total: float | None, width: int = 22) -> str:
    if not total or total <= 0:
        return ""
    frac = min(1.0, done / total)
    fill = int(round(frac * width))
    return "[" + "#" * fill + "." * (width - fill) + "] "


def _fmt_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return ""
    if eta_s >= 3600:
        return f" · ETA {eta_s / 3600.0:.1f} h"
    if eta_s >= 60:
        return f" · ETA {eta_s / 60.0:.1f} min"
    return f" · ETA {eta_s:.0f} s"


def render_frame(
    snapshot: dict[str, Any],
    outcomes: list | None = None,
) -> str:
    """One dashboard frame (plain text; the TTY mode adds clearing)."""
    status = "finished" if snapshot["finished"] else "running"
    lines = [
        f"Watching run {snapshot['run_id']} — {status} · "
        f"elapsed {snapshot['elapsed_s']:.1f} s · "
        f"{snapshot['events']} events · {snapshot['spans']} spans · "
        f"{len(snapshot['workers'])} process(es)"
    ]
    if snapshot["run_attrs"]:
        rendered = ", ".join(
            f"{key}={snapshot['run_attrs'][key]}"
            for key in sorted(snapshot["run_attrs"])[:6]
        )
        lines.append(f"  run attrs: {rendered}")

    if snapshot["progress"]:
        lines.append("")
        lines.append("Progress:")
        for entry in snapshot["progress"]:
            done, total = entry["done"], entry["total"]
            counted = (
                f"{done:g}/{total:g} ({100.0 * done / total:.0f}%)"
                if total and total > 0 and math.isfinite(done)
                else f"{done:g}"
            )
            rate = (
                f" · {entry['rate']:.2f}/s"
                if entry["rate"] is not None
                else ""
            )
            lines.append(
                f"  {entry['label']:<28} {_bar(done, total)}{counted}"
                f"{rate}{_fmt_eta(entry['eta_s'])}"
            )
    elif not snapshot["finished"]:
        lines.append("")
        lines.append(
            "Progress: no heartbeat gauges yet (run warming up, or "
            "traced by an older writer)"
        )

    if snapshot["gauges"]:
        lines.append("")
        lines.append(
            "Throughput: "
            + " · ".join(
                f"{name} {value:.3g}"
                for name, value in snapshot["gauges"].items()
            )
        )

    if snapshot["cache"]:
        lines.append(
            f"Cache: {snapshot['cache']['lookups']} lookups · "
            f"{snapshot['cache']['hit_rate']:.1%} hit rate"
        )

    if snapshot["workers"]:
        lines.append("")
        lines.append("Workers:")
        for worker in snapshot["workers"]:
            flag = (
                f"  [quiet {worker['quiet_s']:.0f}s — straggler?]"
                if worker["straggler"]
                else ""
            )
            lines.append(
                f"  pid {worker['pid']:<8} {worker['spans']:>5} spans · "
                f"busy {worker['busy_s']:>8.3f} s{flag}"
            )

    resources = snapshot.get("resources", [])
    if resources:
        lines.append("")
        lines.append("Resources (from throttled proc.* gauges):")
        for proc in resources:
            parts = [f"  pid {proc['pid']:<8}"]
            if proc["peak_rss_bytes"] is not None:
                parts.append(
                    f"peak rss {proc['peak_rss_bytes'] / 1048576.0:>7.1f} MB"
                )
            if proc["cpu_s"] is not None:
                util = (
                    f" ({100.0 * proc['cpu_util']:.0f}% util)"
                    if proc["cpu_util"] is not None
                    else ""
                )
                parts.append(f"cpu {proc['cpu_s']:>7.2f} s{util}")
            lines.append(" · ".join(parts))

    resilience = snapshot.get("resilience", {})
    if resilience:
        lines.append("")
        lines.append(
            "Resilience: "
            + " · ".join(
                f"{name.split('.', 1)[1].replace('_', ' ')} "
                f"{resilience[name]}"
                for name in RESILIENCE_COUNTERS
                if name in resilience
            )
        )

    failures = snapshot["failures"]
    if any(failures.values()):
        lines.append("")
        lines.append(
            f"FAILURES: {failures['spans']} failed span(s) · "
            f"{failures['points']} failed point(s) · "
            f"{failures['patients']} failed patient(s)"
        )

    if outcomes is not None:
        lines.append("")
        lines.append(render_outcomes(outcomes))
    return "\n".join(lines)


def watch(
    path: Path | str,
    run_id: str | None = None,
    once: bool = False,
    interval_s: float = 1.0,
    rules: list[AlertRule] | None = None,
    stream: TextIO | None = None,
    is_finished: Callable[[], bool] | None = None,
    is_dead: Callable[[], str | None] | None = None,
    max_seconds: float | None = None,
    _sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Follow one trace sink until its run finishes; returns exit code.

    Args:
        path: the run's JSONL sink (it may not exist yet — the tail
            waits for it).
        run_id: display id before the run marker arrives.
        once: render exactly one frame and return (the CI snapshot
            mode; also forced when ``stream`` is not a TTY *and* the
            caller asked for no redraw behaviour).
        interval_s: seconds between polls.
        rules: alert rules re-evaluated every frame; any breach at the
            final frame makes the exit code 1.
        stream: output stream (default stdout); TTY streams redraw in
            place, others print plain frames separated by blank lines.
        is_finished: extra terminal-state probe (the CLI passes the run
            registry's status) consulted each frame.
        is_dead: probe for a run that will *never* finish — the CLI
            passes the registry's dead-owner-pid check.  Consulted only
            once the event stream has been quiet for a grace period
            (dying workers may still be flushing); a non-``None``
            verdict ends the watch with that note and exit code 2
            instead of hanging forever.
        max_seconds: stop after this much wall time even if the run is
            still going (0 exit unless alerts fire).

    Returns:
        2 when the watched run is dead (crashed owner, stale stream),
        1 when alert rules fired (at the last rendered frame),
        0 otherwise.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    tty = bool(getattr(out, "isatty", lambda: False)())
    tail = TraceTail(path)
    state = WatchState(run_id=run_id)
    outcomes: list | None = None
    deadline = (
        time.monotonic() + max_seconds if max_seconds is not None else None
    )
    first_frame = True
    last_activity = time.monotonic()
    dead_reason: str | None = None
    while True:
        fresh = tail.poll()
        state.update(fresh)
        if fresh:
            last_activity = time.monotonic()
        done = state.finished or (
            is_finished is not None and is_finished()
        )
        if done and not state.finished:
            # The registry flips to a terminal status only after the
            # trace's final flush — one more poll catches it.
            state.update(tail.poll())
        if (
            not done
            and is_dead is not None
            and (once or time.monotonic() - last_activity >= _DEAD_QUIET_S)
        ):
            dead_reason = is_dead()
        if rules:
            outcomes = evaluate_rules(rules, state.events)
        frame = render_frame(state.snapshot(), outcomes)
        if dead_reason:
            frame += (
                f"\n\nRUN DEAD: {dead_reason} — the run will never "
                "finish; exiting instead of waiting forever.\n"
                "(finalize it with `repro runs --prune-stale`)"
            )
        if tty and not once:
            out.write("\x1b[H\x1b[2J" + frame + "\n")
        else:
            if not first_frame:
                out.write("\n")
            out.write(frame + "\n")
        out.flush()
        first_frame = False
        if once or done or dead_reason:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        _sleep(interval_s)
    if dead_reason:
        return 2
    return 1 if (outcomes is not None and breached(outcomes)) else 0
