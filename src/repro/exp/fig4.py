"""Experiment E2 — Fig 4a/b/c: SNR vs supply voltage per EMT.

The paper's main quality result (Section VI-A): sweep the data-memory
supply from 0.90 V down to 0.50 V; at each point draw Monte-Carlo
stuck-at fault maps at the profiled BER, run every application with

* (a) no protection,
* (b) DREAM,
* (c) ECC SEC/DED,

and average the output SNR in dB over the runs.  The published shape:

* all techniques hold the error-free ceiling down to ~0.8 V;
* unprotected memory degrades first and fastest;
* ECC is slightly ahead of DREAM between 0.65 and 0.55 V (it corrects
  *any* single error, DREAM only those under the mask);
* below 0.55 V multi-bit errors defeat SEC/DED (detect-only) while DREAM
  keeps reconstructing the significant MSBs, so the curves cross.

The (app, voltage) grid is expressed as a campaign spec
(:func:`fig4_spec`) executed through :func:`repro.campaign.run_campaign`,
so sweeps parallelise across workers and resume from a result store; the
campaign's deterministic per-point seeding keeps the numbers identical to
the historical serial driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.base import BiomedicalApp
from ..apps.registry import make_app
from ..campaign.evaluators import geometry_to_dict, grid_seed, technology_to_dict
from ..campaign.runner import run_campaign
from ..campaign.spec import CampaignSpec
from ..campaign.store import ResultStore
from ..emt import make_emt
from ..emt.base import EMT
from ..energy.technology import PAPER_VOLTAGE_GRID, TECH_32NM_LP, Technology
from ..errors import ExperimentError
from .common import (
    ExperimentConfig,
    MonteCarloResult,
    load_corpus,
    run_monte_carlo,
    validate_registry_names,
)

__all__ = [
    "Fig4Result",
    "fig4_result_from_records",
    "fig4_spec",
    "run_fig4",
]


@dataclass
class Fig4Result:
    """SNR-vs-voltage surfaces for every (application, EMT) pair."""

    voltages: list[float] = field(default_factory=list)
    #: ``points[app][voltage]`` -> per-EMT statistics.
    points: dict[str, dict[float, MonteCarloResult]] = field(
        default_factory=dict
    )
    config: ExperimentConfig | None = None

    def series(self, app_name: str, emt_name: str) -> list[float]:
        """One plotted curve: mean SNR per voltage for (app, EMT)."""
        if app_name not in self.points:
            raise ExperimentError(f"no data for app {app_name!r}")
        per_voltage = self.points[app_name]
        return [
            per_voltage[v].snr_mean_db[emt_name] for v in self.voltages
        ]

    def min_voltage_meeting(
        self, app_name: str, emt_name: str, min_snr_db: float
    ) -> float | None:
        """Lowest swept voltage whose mean SNR still meets ``min_snr_db``.

        The quantity Section VI-C's policy construction needs.  Voltages
        are checked from the top of the sweep downward and must meet the
        requirement *contiguously* (a lower voltage that recovers by
        chance does not extend the safe range).
        """
        best: float | None = None
        for voltage in sorted(self.voltages, reverse=True):
            snr = self.points[app_name][voltage].snr_mean_db[emt_name]
            if snr >= min_snr_db:
                best = voltage
            else:
                break
        return best


def fig4_spec(
    app_names: tuple[str, ...],
    emt_names: tuple[str, ...] = ("none", "dream", "secded"),
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID,
    config: ExperimentConfig | None = None,
    tech: Technology = TECH_32NM_LP,
    name: str = "fig4",
) -> CampaignSpec:
    """The Fig 4 grid as a declarative campaign spec.

    Axes are (app, voltage); the EMT set is a *fixed* parameter because
    the paper's fairness rule — "all the EMTs are tested reusing the same
    set of error locations/mappings" — requires the techniques of one
    grid point to share defect samples, so they cannot be independent
    points.
    """
    config = config or ExperimentConfig()
    validate_registry_names(app_names=app_names, emt_names=emt_names)
    return CampaignSpec(
        name=name,
        kind="montecarlo",
        axes={"app": tuple(app_names), "voltage": tuple(voltages)},
        fixed={
            "emts": tuple(emt_names),
            "records": config.records,
            "duration_s": config.duration_s,
            "n_runs": config.n_runs,
            "seed": config.seed,
            "snr_cap_db": config.snr_cap_db,
            "geometry": geometry_to_dict(config.geometry),
            "tech": technology_to_dict(tech),
        },
    )


def run_fig4(
    app_names: tuple[str, ...] = (
        "dwt",
        "matrix_filter",
        "compressed_sensing",
        "morphology",
        "delineation",
    ),
    emt_names: tuple[str, ...] = ("none", "dream", "secded"),
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID,
    config: ExperimentConfig | None = None,
    tech: Technology = TECH_32NM_LP,
    apps: dict[str, BiomedicalApp] | None = None,
    emts: dict[str, EMT] | None = None,
    n_workers: int = 1,
    store: ResultStore | None = None,
) -> Fig4Result:
    """Run the Fig 4 voltage sweep.

    Args:
        app_names: applications to sweep (the paper's five by default).
        emt_names: EMT registry names — (a), (b), (c) of Fig 4.
        voltages: supply grid; defaults to the paper's 0.50..0.90 V.
        config: Monte-Carlo knobs (``n_runs=200`` reproduces the paper).
        tech: technology supplying the BER(V) profile.
        apps / emts: optional pre-built instances; passing either runs
            the sweep inline (instances cannot cross process boundaries).
        n_workers: worker processes for the campaign grid.
        store: optional campaign result store (resume/caching).

    Returns:
        A :class:`Fig4Result` with per-(app, voltage, EMT) statistics.
    """
    config = config or ExperimentConfig()
    if apps is not None or emts is not None:
        return _run_fig4_inline(
            app_names, emt_names, voltages, config, tech, apps, emts
        )
    if not app_names or not voltages:
        # Degenerate grid: the historical drivers returned an empty
        # result rather than rejecting it.
        result = Fig4Result(voltages=sorted(voltages), config=config)
        result.points = {name: {} for name in app_names}
        return result

    spec = fig4_spec(app_names, emt_names, voltages, config, tech)
    campaign = run_campaign(spec, store=store, n_workers=n_workers)
    campaign.raise_on_failure()
    return fig4_result_from_records(
        campaign.records, app_names, voltages, config
    )


def fig4_result_from_records(
    records: list[dict],
    app_names: tuple[str, ...],
    voltages: tuple[float, ...],
    config: ExperimentConfig | None = None,
) -> Fig4Result:
    """Reassemble a :class:`Fig4Result` from ``montecarlo`` records.

    ``records`` are campaign records of a :func:`fig4_spec` grid — live
    from :func:`repro.campaign.run_campaign` or reloaded from a result
    store.  The experiment API's figure reducer shares this path with
    :func:`run_fig4`, so both produce identical results from the same
    stored points.
    """
    by_point = {
        (rec["params"]["app"], rec["params"]["voltage"]): rec["result"]
        for rec in records
        if rec.get("status") == "ok"
    }
    result = Fig4Result(voltages=sorted(voltages), config=config)
    for app_name in app_names:
        per_voltage: dict[float, MonteCarloResult] = {}
        for voltage in result.voltages:
            payload = by_point.get((app_name, voltage))
            if payload is None:
                raise ExperimentError(
                    f"fig4 records are missing grid point "
                    f"({app_name!r}, {voltage})"
                )
            per_voltage[voltage] = MonteCarloResult(
                snr_mean_db=dict(payload["snr_mean_db"]),
                snr_std_db=dict(payload["snr_std_db"]),
                n_runs=payload["n_runs"],
            )
        result.points[app_name] = per_voltage
    return result


def _run_fig4_inline(
    app_names: tuple[str, ...],
    emt_names: tuple[str, ...],
    voltages: tuple[float, ...],
    config: ExperimentConfig,
    tech: Technology,
    apps: dict[str, BiomedicalApp] | None,
    emts: dict[str, EMT] | None,
) -> Fig4Result:
    """In-process sweep for caller-supplied app/EMT instances."""
    corpus = load_corpus(config)
    if apps is None:
        apps = {name: make_app(name) for name in app_names}
    if emts is None:
        emts = {name: make_emt(name) for name in emt_names}

    result = Fig4Result(voltages=sorted(voltages), config=config)
    for app_name, app in apps.items():
        per_voltage: dict[float, MonteCarloResult] = {}
        for voltage in result.voltages:
            per_voltage[voltage] = run_monte_carlo(
                app,
                emts,
                tech.ber(voltage),
                config,
                corpus,
                grid_seed(app_name, voltage),
            )
        result.points[app_name] = per_voltage
    return result
