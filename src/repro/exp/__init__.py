"""Experiment drivers reproducing every table and figure of the paper.

Each module reproduces one artefact of the evaluation (see DESIGN.md's
per-experiment index):

* :mod:`repro.exp.fig2` — Fig 2, SNR vs bit position of injected
  stuck-at errors (the significance characterisation, Section III);
* :mod:`repro.exp.fig4` — Fig 4a/b/c, SNR vs supply voltage per EMT
  (Section VI-A);
* :mod:`repro.exp.energy_table` — the Section VI-B energy-overhead and
  area analysis;
* :mod:`repro.exp.tradeoff` — the Section VI-C voltage-range policy and
  savings;
* :mod:`repro.exp.overheads` — Formula 2 / Section V memory overheads;
* :mod:`repro.exp.report` — ASCII renderers for all of the above;
* :mod:`repro.exp.common` — the shared Monte-Carlo machinery.

The grid-shaped drivers (Fig 2, Fig 4, energy, trade-off) express their
grids as :class:`repro.campaign.CampaignSpec` objects executed through
the shared campaign runner — ``fig2_spec``/``fig4_spec``/``energy_spec``
build the specs, and every ``run_*`` driver accepts ``n_workers`` and an
optional result ``store`` for parallel, resumable sweeps.
"""

from .common import ExperimentConfig, MonteCarloResult
from .energy_table import EnergyAnalysis, energy_spec, run_energy_analysis
from .fig2 import Fig2Result, fig2_spec, run_fig2
from .fig4 import Fig4Result, fig4_spec, run_fig4
from .overheads import OverheadRow, overhead_table
from .tradeoff import TradeoffResult, run_tradeoff

__all__ = [
    "ExperimentConfig",
    "MonteCarloResult",
    "Fig2Result",
    "fig2_spec",
    "run_fig2",
    "Fig4Result",
    "fig4_spec",
    "run_fig4",
    "EnergyAnalysis",
    "energy_spec",
    "run_energy_analysis",
    "TradeoffResult",
    "run_tradeoff",
    "OverheadRow",
    "overhead_table",
]
