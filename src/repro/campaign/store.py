"""On-disk campaign result store (JSON lines, append-only).

One store file per campaign, ``<root>/<campaign>.jsonl``, with one JSON
object per line::

    {"hash": "...", "kind": "montecarlo", "params": {...},
     "status": "ok", "result": {...}, "elapsed_s": 0.41}

The append-only discipline makes writes crash-safe: a torn final line
(a writer crashed mid-append) is tolerated and quarantined on load —
logged and copied to a ``<store>.quarantine`` side file, never fatal —
and the next append seals it with a newline before writing, so torn
debris can never merge with a fresh record.  Records are keyed
by the point's content hash (:meth:`CampaignPoint.content_hash`);
re-appending a hash supersedes the earlier record, so a store never needs
compaction to stay *correct* — :meth:`ResultStore.compact` exists to
reclaim the superseded lines' disk space, not to fix anything.  Only
``status == "ok"`` records count as completed — failed points are
retried on the next run.

Loads are memoized against the file's signature — (size, mtime_ns)
plus a CRC-32 fingerprint of the file's head and tail bytes: repeated
``load()``/``__len__``/``completed_hashes()`` calls between writes parse
the file once, which matters once fleet-scale campaigns hold thousands
of records.  The content fingerprint closes the staleness window a pure
(size, mtime) key has on filesystems with coarse mtime granularity,
where ``compact()`` (or another process's ``append_many`` plus
compaction) can replace the file with equal-size content inside one
mtime tick.
"""

from __future__ import annotations

import json
import logging
import os
import time
import zlib
from pathlib import Path

from .. import obs
from ..errors import CampaignError

__all__ = ["ResultStore", "default_store_root", "quarantine_torn_lines"]

_LOG = logging.getLogger(__name__)


def quarantine_torn_lines(path: Path, lines: list[str]) -> int:
    """Preserve malformed JSONL lines in a ``.quarantine`` side file.

    Crash-consistency contract shared by the result store and the cache
    event log: a malformed line (usually the torn tail of a writer that
    died mid-append) is *tolerated* — skipped by the reader, never
    fatal — and *quarantined* — logged and appended to
    ``<path>.quarantine`` so the debris stays inspectable after a
    :meth:`ResultStore.compact` or log rotation drops it from the live
    file.  Lines already quarantined are not duplicated.  Returns the
    number of newly quarantined lines; quarantine-file write errors are
    swallowed (the side file is best-effort, the load must succeed).
    """
    if not lines:
        return 0
    side = path.with_suffix(path.suffix + ".quarantine")
    try:
        known = set(
            side.read_text(encoding="utf-8").splitlines()
        ) if side.exists() else set()
        fresh = [line for line in lines if line not in known]
        if fresh:
            with side.open("a", encoding="utf-8") as handle:
                handle.write("".join(line + "\n" for line in fresh))
    except OSError:  # pragma: no cover - best-effort side file
        fresh = lines
    _LOG.warning(
        "%s: quarantined %d malformed line(s) (torn tail of an "
        "interrupted writer?); see %s",
        path, len(lines), side,
    )
    if obs.enabled():
        obs.counter("store.quarantined_lines", len(lines))
    return len(fresh)

#: Valid terminal states of a stored point.
_STATUSES = ("ok", "failed")

#: Bytes of the file's head and tail hashed into the load-memo signature.
_FINGERPRINT_BYTES = 4096


def default_store_root() -> Path:
    """Directory campaign stores live in.

    ``REPRO_CAMPAIGN_DIR`` overrides the default
    ``benchmarks/results/campaigns`` (relative to the working directory),
    mirroring the benchmark harness's results layout.  ``~`` in the
    override expands to the user's home directory.
    """
    raw = os.environ.get("REPRO_CAMPAIGN_DIR")
    if raw:
        return Path(raw).expanduser()
    return Path("benchmarks") / "results" / "campaigns"


class ResultStore:
    """Append-only JSONL store of one campaign's point results."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        # load() memo: (file signature, parsed records, raw line count).
        self._memo: tuple[tuple, dict[str, dict], int] | None = None
        #: Number of full file parses (diagnostic; exercised by tests).
        self.n_parses = 0

    @classmethod
    def for_campaign(
        cls, name: str, root: Path | str | None = None
    ) -> "ResultStore":
        """The store for campaign ``name`` under ``root`` (or the default)."""
        root = Path(root) if root is not None else default_store_root()
        return cls(root / f"{name}.jsonl")

    def _signature(self) -> tuple | None:
        """The file's identity, or None when absent.

        (size, mtime_ns, head+tail CRC-32): the content fingerprint
        catches a rewrite that preserves both size and mtime — possible
        within one mtime tick on coarse-granularity filesystems after
        :meth:`compact` or a concurrent writer's append + compaction —
        which a pure stat-based key would mistake for the memoized
        content.  Appends always change the tail; compaction reorders
        or drops lines, changing head or tail bytes.
        """
        try:
            stat = self.path.stat()
        except OSError:
            return None
        try:
            with self.path.open("rb") as handle:
                head = handle.read(_FINGERPRINT_BYTES)
                if stat.st_size > 2 * _FINGERPRINT_BYTES:
                    handle.seek(stat.st_size - _FINGERPRINT_BYTES)
                    tail = handle.read(_FINGERPRINT_BYTES)
                else:
                    tail = handle.read()
        except OSError:
            return None
        return (
            stat.st_size,
            stat.st_mtime_ns,
            zlib.crc32(tail, zlib.crc32(head)),
        )

    def load(self) -> dict[str, dict]:
        """Read all records, keyed by point hash (later lines win).

        Malformed lines (e.g. a torn tail from an interrupted run) are
        tolerated and quarantined: skipped by the parse, logged, and
        preserved in ``<store>.quarantine`` — a crashed run never makes
        its store unreadable.  An absent file is an empty store.
        Duplicate lines from resumed or ``resume=False`` runs collapse
        here — last write wins.  The parse is memoized against the
        file's (size, mtime) signature; the returned mapping is a fresh
        dict each call, but the record dicts themselves are shared —
        treat them as read-only.
        """
        signature = self._signature()
        if signature is None:
            return {}
        if self._memo is not None and self._memo[0] == signature:
            return dict(self._memo[1])
        records: dict[str, dict] = {}
        n_lines = 0
        torn: list[str] = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                n_lines += 1
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    torn.append(line)
                    continue
                if isinstance(record, dict) and "hash" in record:
                    records[record["hash"]] = record
        if torn:
            quarantine_torn_lines(self.path, torn)
        self.n_parses += 1
        self._memo = (signature, records, n_lines)
        return dict(records)

    def completed_hashes(self) -> set[str]:
        """Hashes of points with a successful stored result."""
        return {
            h for h, rec in self.load().items() if rec.get("status") == "ok"
        }

    def append(self, record: dict) -> None:
        """Persist one point record (creates the store on first write)."""
        self.append_many([record])

    def append_many(self, records: list[dict]) -> None:
        """Persist several point records under one open + file lock.

        The campaign runner flushes every point that completed in one
        pool tick through this path: the records are validated up
        front, serialised, and written in a single locked append — one
        ``open``/``flock``/``write`` per tick instead of per point,
        while the JSONL format and content-hash keys stay exactly as
        :meth:`append` writes them.  The exclusive ``fcntl`` lock keeps
        concurrent appenders (e.g. two campaigns sharing a store file)
        line-atomic even when a tick's payload exceeds the pipe-atomic
        write size.
        """
        if not records:
            return
        for record in records:
            status = record.get("status")
            if status not in _STATUSES:
                raise CampaignError(
                    f"record status must be one of {_STATUSES}, got {status!r}"
                )
            if "hash" not in record:
                raise CampaignError("record must carry the point hash")
        payload = "".join(
            json.dumps(record, sort_keys=True) + "\n" for record in records
        ).encode("utf-8")
        started = time.perf_counter() if obs.enabled() else 0.0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # a+b (read + append) so the torn-tail check below can inspect
        # the current last byte through the same locked descriptor.
        with self.path.open("a+b") as handle:
            try:
                import fcntl

                fcntl.flock(handle, fcntl.LOCK_EX)
            except (ImportError, OSError):  # pragma: no cover
                # Best-effort locking: non-POSIX platforms have no
                # fcntl, and some network filesystems refuse flock —
                # appends stay as unlocked as they historically were.
                pass
            # Crash consistency: if the previous writer died mid-line,
            # seal the torn tail with a newline before appending, so
            # the debris stays an isolated (quarantinable) line instead
            # of merging with — and corrupting — the first new record.
            size = os.fstat(handle.fileno()).st_size
            if size and os.pread(handle.fileno(), 1, size - 1) != b"\n":
                handle.write(b"\n")
            handle.write(payload)
        if obs.enabled():
            obs.observe("store.append_s", time.perf_counter() - started)
            obs.counter("store.records_appended", len(records))
        # The next load() re-stats the file; dropping the memo eagerly
        # also covers filesystems with coarse mtime resolution.
        self._memo = None

    def compact(self) -> int:
        """Rewrite the store with one line per hash (last write wins).

        Long-lived stores accumulate superseded lines — every
        ``resume=False`` re-run appends a fresh record per point.  The
        rewrite goes through a temporary file and an atomic
        :func:`os.replace`, so a crash mid-compaction leaves the
        original store untouched.  Returns the number of superseded (or
        malformed) lines dropped; an absent store is a no-op.
        """
        records = self.load()
        if self._memo is None:
            return 0
        n_lines = self._memo[2]
        dropped = n_lines - len(records)
        if dropped <= 0:
            return 0
        tmp = self.path.with_suffix(self.path.suffix + ".compact")
        with tmp.open("w", encoding="utf-8") as handle:
            for record in records.values():
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        self._memo = None
        return dropped

    def __len__(self) -> int:
        return len(self.load())
