"""Golden-equivalence: the API redesign is a pure re-plumbing.

Three layers of pinning, per workload kind:

1. **Shim == file**: the experiment a legacy subcommand constructs from
   representative flags is canonically identical to the equivalent
   committed-style experiment file — so every golden statement about
   ``repro run`` transfers to the shims and vice versa.
2. **Plan == pre-redesign grids**: the campaign specs a sweep/figure
   experiment plans into expand to exactly the point content hashes the
   pre-redesign code paths (``fig4_spec`` + the historical ``repro
   sweep`` energy-spec construction) produce — stored results carry
   over, store keys don't shift.
3. **Results == direct simulators**: mission and cohort experiments
   produce bit-identical metrics to calling ``MissionSimulator`` /
   ``FleetSimulator`` directly, and the shim CLI writes the same store
   content hashes as ``repro run`` on the equivalent file.
"""

from __future__ import annotations

import json

import pytest

from repro.api.schema import dump_experiment, load_experiment
from repro.api.session import Session, resolved_mission_spec
from repro.campaign.spec import CampaignSpec
from repro.cli import (
    build_parser,
    cohort_experiment,
    main,
    mission_experiment,
    sweep_experiment,
)

SWEEP_FLAGS = [
    "sweep", "--apps", "morphology", "--records", "100",
    "--duration", "3", "--runs", "2", "--voltages", "0.55,0.9",
    "--tolerance", "40",
]

SWEEP_FILE_TOML = """\
version = 1
kind = "sweep"
name = "sweep"
store = "sweep"
workers = 2

[sweep]
apps = ["morphology"]
emts = ["none", "dream", "secded"]
voltages = [0.55, 0.9]
records = ["100"]
duration_s = 3.0
runs = 2
tolerance_db = 40.0
"""

MISSION_FLAGS = [
    "mission", "--scenario", "overnight", "--duration-scale", "0.02",
    "--probe-runs", "2", "--probe-duration", "2",
    "--policies", "static:secded@0.65,hysteresis",
]

MISSION_FILE_TOML = """\
version = 1
kind = "mission"
name = "mission-overnight"

[mission]
scenario = "overnight"
policies = ["static:secded@0.65", "hysteresis"]
duration_scale = 0.02
probe_runs = 2
probe_duration_s = 2.0
"""

COHORT_FLAGS = [
    "cohort", "--size", "4", "--duration-scale", "0.01",
    "--policies", "hysteresis", "--probe-runs", "2",
    "--probe-duration", "2", "--workers", "1",
]

COHORT_FILE_TOML = """\
version = 1
kind = "cohort"
name = "cohort"
workers = 1

[cohort]
size = 4
policies = ["hysteresis"]
scenarios = [["active_day", 0.7], ["overnight", 0.3]]
duration_scale = 0.01
probe_runs = 2
probe_duration_s = 2.0
"""


def _args(flags):
    return build_parser().parse_args(flags)


def _store_hashes(path) -> dict[str, dict]:
    records = {}
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            records[record["hash"]] = record
    return records


class TestShimEqualsFile:
    """Layer 1: flags and files construct the same experiment."""

    def test_sweep(self, tmp_path):
        path = tmp_path / "sweep.toml"
        path.write_text(SWEEP_FILE_TOML, encoding="utf-8")
        shim = sweep_experiment(_args(SWEEP_FLAGS))
        assert load_experiment(path).canonical_json() == shim.canonical_json()

    def test_mission(self, tmp_path):
        path = tmp_path / "mission.toml"
        path.write_text(MISSION_FILE_TOML, encoding="utf-8")
        shim = mission_experiment(_args(MISSION_FLAGS))
        assert load_experiment(path).canonical_json() == shim.canonical_json()

    def test_cohort(self, tmp_path):
        path = tmp_path / "cohort.toml"
        path.write_text(COHORT_FILE_TOML, encoding="utf-8")
        shim = cohort_experiment(_args(COHORT_FLAGS))
        assert load_experiment(path).canonical_json() == shim.canonical_json()

    @pytest.mark.parametrize("suffix", [".toml", ".json"])
    def test_dumped_shim_experiments_reload(self, suffix, tmp_path):
        for build, flags in [
            (sweep_experiment, SWEEP_FLAGS),
            (mission_experiment, MISSION_FLAGS),
            (cohort_experiment, COHORT_FLAGS),
        ]:
            experiment = build(_args(flags))
            out = tmp_path / f"{experiment.kind}{suffix}"
            dump_experiment(experiment, out)
            assert load_experiment(out) == experiment


class TestPlanEqualsPreRedesignGrids:
    """Layer 2: planned point hashes match the historical constructions."""

    def test_sweep_plan_matches_pr4_era_spec_construction(self):
        from repro.exp.common import ExperimentConfig
        from repro.exp.fig4 import fig4_spec

        args = _args(SWEEP_FLAGS)
        experiment = sweep_experiment(args)
        planned = Session().plan(experiment)
        planned_hashes = {
            point.content_hash()
            for campaign in planned
            for point in campaign.spec.expand()
        }

        # The construction `_cmd_sweep` shipped before the redesign,
        # reproduced literally.
        config = ExperimentConfig(
            records=args.records, duration_s=args.duration, n_runs=args.runs
        )
        quality_spec = fig4_spec(
            app_names=args.apps,
            emt_names=args.emts,
            voltages=args.voltages,
            config=config,
            name=f"{args.name}-quality",
        )
        energy_specs = [
            CampaignSpec(
                name=f"{args.name}-energy",
                kind="energy",
                axes={"emt": args.emts, "voltage": args.voltages},
                fixed={
                    "workload_app": app,
                    "workload_record": args.records[0],
                    "workload_duration_s": args.duration,
                },
            )
            for app in args.apps
        ]
        historical_hashes = {
            point.content_hash()
            for spec in (quality_spec, *energy_specs)
            for point in spec.expand()
        }
        assert planned_hashes == historical_hashes

    def test_fig4_figure_plan_matches_fig4_spec(self):
        from repro.exp.common import ExperimentConfig
        from repro.exp.fig4 import fig4_spec

        from repro.cli import fig4_experiment

        flags = ["fig4", "--apps", "morphology", "--records", "100",
                 "--duration", "3", "--runs", "2"]
        experiment = fig4_experiment(_args(flags))
        planned = Session().plan(experiment)
        config = ExperimentConfig(
            records=("100",), duration_s=3.0, n_runs=2
        )
        historical = fig4_spec(("morphology",), config=config)
        assert {
            p.content_hash()
            for c in planned
            for p in c.spec.expand()
        } == {p.content_hash() for p in historical.expand()}


class TestResultsEqualDirectSimulators:
    """Layer 3: executed metrics are bit-identical to the subsystems."""

    def test_mission_session_equals_direct_simulator(self):
        from repro.runtime import MissionSimulator, policy_from_dict

        experiment = mission_experiment(_args(MISSION_FLAGS))
        handle = Session().run(experiment)
        assert handle.ok

        spec = resolved_mission_spec(experiment.params, experiment.seed)
        simulator = MissionSimulator(spec, n_probe=2, probe_duration_s=2.0)
        direct = [
            simulator.run(policy_from_dict(payload)).to_dict()
            for payload in (
                {"name": "static",
                 "params": {"emt": "secded", "voltage": 0.65}},
                "hysteresis",
            )
        ]
        assert [rec["result"] for rec in handle.records] == direct

    def test_cohort_session_equals_direct_fleet(self):
        from repro.api.session import cohort_spec_for
        from repro.cohort import FleetSimulator, survival_curve

        experiment = cohort_experiment(_args(COHORT_FLAGS))
        handle = Session().run(experiment)
        assert handle.ok

        fleet = FleetSimulator(
            cohort_spec_for(experiment), n_probe=2, probe_duration_s=2.0
        )
        direct = fleet.run("hysteresis")
        expected = direct.summary()
        for volatile in ("elapsed_s", "patients_per_s", "cache"):
            expected.pop(volatile, None)
        expected["survival"] = [
            [t, alive]
            for t, alive in survival_curve(direct.ok_rows(), n_points=9)
        ]
        assert handle.records[0]["result"] == expected

    def test_sweep_shim_and_run_write_identical_stores(
        self, tmp_path, monkeypatch
    ):
        """The acceptance gate: `repro sweep <flags>` and `repro run
        <equivalent file>` produce byte-comparable result stores —
        same content-hash keys, same kinds, same result payloads."""
        shim_dir = tmp_path / "shim"
        file_dir = tmp_path / "file"
        spec_path = tmp_path / "sweep.toml"
        spec_path.write_text(SWEEP_FILE_TOML, encoding="utf-8")

        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(shim_dir))
        assert main(SWEEP_FLAGS) == 0
        monkeypatch.delenv("REPRO_CAMPAIGN_DIR")
        assert main(
            ["run", str(spec_path), "--store-dir", str(file_dir)]
        ) == 0

        for store in ("sweep-quality.jsonl", "sweep-energy.jsonl"):
            shim_records = _store_hashes(shim_dir / store)
            file_records = _store_hashes(file_dir / store)
            assert set(shim_records) == set(file_records)
            for point_hash, record in shim_records.items():
                other = file_records[point_hash]
                assert record["result"] == other["result"]
                assert record["params"] == other["params"]
                assert record["kind"] == other["kind"]

    def test_mission_shim_and_run_write_identical_stores(self, tmp_path):
        """Mission runs persist when a store is attached; the shim-built
        experiment and the file produce the same keys and results."""
        shim_dir = tmp_path / "shim"
        file_dir = tmp_path / "file"
        spec_path = tmp_path / "mission.toml"
        spec_path.write_text(MISSION_FILE_TOML, encoding="utf-8")

        from dataclasses import replace

        shim_exp = replace(
            mission_experiment(_args(MISSION_FLAGS)), store="mission-golden"
        )
        Session(store_dir=shim_dir).run(shim_exp)
        assert main([
            "run", str(spec_path), "--store-dir", str(file_dir),
            "--store", "mission-golden",
        ]) == 0

        shim_records = _store_hashes(shim_dir / "mission-golden.jsonl")
        file_records = _store_hashes(file_dir / "mission-golden.jsonl")
        assert set(shim_records) == set(file_records)
        for point_hash, record in shim_records.items():
            assert record["result"] == file_records[point_hash]["result"]
