"""Bit-accurate faulty SRAM with access accounting.

:class:`FaultySRAM` stores raw bit patterns and applies its
:class:`~repro.mem.faults.FaultMap` on **write**, mirroring the physics of
a stuck-at defect: the cell ignores the written value, so every subsequent
read returns the stuck value.  (Applying the map on write rather than read
is observationally equivalent for reads, but also makes read-after-write
of *uncorrupted* neighbours exact, and keeps repeated reads idempotent.)

Access counters feed the energy model (reads/writes per array) and, when
a trace sink is attached, the MPSoC crossbar simulator.
"""

from __future__ import annotations

import numpy as np

from .._bitops import bit_mask
from ..errors import MemoryModelError
from .faults import FaultMap, empty_fault_map
from .layout import AddressMap, MemoryGeometry

__all__ = ["FaultySRAM"]


class FaultySRAM:
    """A banked SRAM array with permanent stuck-at defects.

    Args:
        geometry: array organisation (words, width, banks).
        fault_map: permanent defects over *physical* words; defaults to a
            defect-free array.
        address_map: logical-to-physical scrambling; defaults to identity.

    Example:
        >>> import numpy as np
        >>> from repro.mem import FaultySRAM, MemoryGeometry, position_fault_map
        >>> geo = MemoryGeometry(n_words=16, word_bits=16, n_banks=4)
        >>> sram = FaultySRAM(geo, position_fault_map(16, 16, 15, 1))
        >>> sram.write(np.array([0]), np.array([0x0001]))
        >>> hex(int(sram.read(np.array([0]))[0]))
        '0x8001'
    """

    def __init__(
        self,
        geometry: MemoryGeometry,
        fault_map: FaultMap | None = None,
        address_map: AddressMap | None = None,
    ) -> None:
        self.geometry = geometry
        if fault_map is None:
            fault_map = empty_fault_map(geometry.n_words, geometry.word_bits)
        if fault_map.n_words != geometry.n_words:
            raise MemoryModelError(
                f"fault map covers {fault_map.n_words} words but the array "
                f"has {geometry.n_words}"
            )
        if fault_map.word_bits != geometry.word_bits:
            raise MemoryModelError(
                f"fault map width {fault_map.word_bits} does not match "
                f"array width {geometry.word_bits}"
            )
        if address_map is not None and address_map.geometry.n_words != geometry.n_words:
            raise MemoryModelError("address map geometry mismatch")
        self.fault_map = fault_map
        self.address_map = address_map
        self._cells = np.zeros(geometry.n_words, dtype=np.int64)
        # Defective cells hold their stuck value even before first write.
        self._cells = fault_map.apply(self._cells)
        self.read_count = 0
        self.write_count = 0

    def _physical(self, addresses: np.ndarray) -> np.ndarray:
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.size and (
            int(addr.min()) < 0 or int(addr.max()) >= self.geometry.n_words
        ):
            raise MemoryModelError(
                f"address out of range [0, {self.geometry.n_words})"
            )
        if self.address_map is None:
            return addr
        return self.address_map.physical(addr)

    def write(self, addresses: np.ndarray, patterns: np.ndarray) -> None:
        """Store bit patterns; stuck cells retain their stuck values."""
        addr = self._physical(addresses)
        values = np.asarray(patterns, dtype=np.int64)
        if values.shape != addr.shape:
            raise MemoryModelError(
                f"patterns shape {values.shape} does not match addresses "
                f"shape {addr.shape}"
            )
        limit = bit_mask(self.geometry.word_bits)
        if values.size and (int(values.min()) < 0 or int(values.max()) > limit):
            raise MemoryModelError(
                f"pattern exceeds the {self.geometry.word_bits}-bit word"
            )
        self._cells[addr] = self.fault_map.apply(values, addr)
        self.write_count += int(values.size)

    def read(self, addresses: np.ndarray) -> np.ndarray:
        """Read back stored (possibly corrupted) bit patterns."""
        addr = self._physical(addresses)
        self.read_count += int(addr.size)
        return self._cells[addr].copy()

    def reset_counters(self) -> None:
        """Zero the access counters (energy accounting epochs)."""
        self.read_count = 0
        self.write_count = 0

    @property
    def n_faults(self) -> int:
        """Number of stuck bits in the array."""
        return self.fault_map.n_faults
