"""Tracing isolation: every obs test starts and ends untraced.

The tracer is process-global state exported through environment
variables (so worker processes can find the sink); tests must not leak
an active sink or a configured trace directory into each other — or
into the rest of the suite, which pins the disabled fast path.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.core import ENV_DIR, ENV_FILE, ENV_FLAG, ENV_PARENT, ENV_RUN

_TRACE_ENV = (ENV_FILE, ENV_RUN, ENV_PARENT, ENV_DIR, ENV_FLAG)


@pytest.fixture(autouse=True)
def _untraced():
    obs.disable()
    for key in _TRACE_ENV:
        os.environ.pop(key, None)
    yield
    obs.disable()
    for key in _TRACE_ENV:
        os.environ.pop(key, None)
