"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of its valid range."""


class FixedPointError(ReproError):
    """A fixed-point conversion or operation was given invalid operands."""


class SignalError(ReproError):
    """A signal-generation or signal-processing request is invalid."""


class MemoryModelError(ReproError):
    """The faulty-memory model was used inconsistently.

    Typical causes: storing a buffer wider than the configured word size,
    loading a handle that was never stored, or a fault map that does not
    match the memory geometry.
    """


class EMTError(ReproError):
    """An error-mitigation technique was configured or used incorrectly."""


class DecodingError(EMTError):
    """A codeword could not be decoded (e.g. detected-uncorrectable)."""


class EnergyModelError(ReproError):
    """The energy/technology model was queried outside its valid domain."""


class SimulationError(ReproError):
    """The MPSoC simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment driver was misconfigured."""


class CampaignError(ReproError):
    """A design-space-exploration campaign is invalid or failed to run."""


class MissionError(ReproError):
    """An adaptive-runtime mission or policy is invalid or failed to run."""


class CohortError(ReproError):
    """A patient cohort or fleet simulation is invalid or failed to run."""


class ExperimentSpecError(ReproError):
    """A declarative experiment file or payload is malformed.

    Raised by :mod:`repro.api` when an experiment cannot be parsed,
    carries an unsupported schema version, or fails structural
    validation before anything is planned or executed.
    """


class ObsError(ReproError):
    """Tracing was misused or a trace file is malformed.

    Raised by :mod:`repro.obs` when tracing is enabled twice in one
    process, a run id is empty, or ``repro report`` is pointed at a
    trace whose events violate the schema contract.
    """


class ResilienceError(ReproError):
    """The supervised-execution layer was misconfigured.

    Raised by :mod:`repro.resilience` for invalid retry policies,
    malformed ``REPRO_CHAOS`` specs, or misuse of the supervised pool.
    """


class ChaosError(ResilienceError):
    """A fault injected by the deterministic chaos layer.

    Deliberately transient: the supervisor retries work that failed
    with an injected fault, so a chaos run converges to the same
    results as an undisturbed one.
    """


class ServiceError(ReproError):
    """The experiment service was misused or is unreachable.

    Raised by :mod:`repro.service` for malformed job submissions,
    unknown job ids, invalid state transitions (e.g. cancelling a job
    already running), and client requests against a daemon that is not
    listening.
    """


class RunInterrupted(ReproError):
    """A run was cancelled (SIGINT/SIGTERM or an injected interrupt).

    Raised after completed work has been drained and persisted, so the
    interrupted run is resumable; the session layer finalises the run
    registry row as ``interrupted`` on the way out.
    """
