"""Wavelet Delineation application (paper Section II-5).

Produces, per heartbeat, the fiducial points P, Q, R, S and T — the
output consumed by downstream classifiers ([8], [9] in the paper).  The
detector follows the classic wavelet delineation recipe on the à-trous
quadratic-spline transform (shared with :mod:`repro.apps.dwt`):

* **QRS/R**: scale-2 detail coefficients are proportional to the smoothed
  derivative, so a QRS complex is a modulus-maxima pair; R peaks are
  located at super-threshold maxima of ``|d2|`` (robust percentile
  threshold, 250 ms refractory period) refined to the local signal
  extremum.
* **Q, S**: the opposite extrema of the signal in narrow windows before
  and after R.
* **P, T**: extrema of the scale-3 approximation (where QRS energy is
  suppressed but the slower waves survive) in the standard search
  windows before/after the QRS.

Output layout: the record is processed in fixed windows; each window owns
``slots_per_window`` beat slots of five int16 entries ``[P, Q, R, S, T]``
holding *absolute* sample indices, ``-1`` marking an empty slot or an
undetected wave.  A fixed-size annotation buffer keeps the paper's
Formula 1 SNR well-defined between clean and corrupted runs even when
they disagree on the number of beats.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError
from ..mem.fabric import MemoryFabric
from .base import BiomedicalApp
from .dwt import atrous_highpass, atrous_lowpass

__all__ = ["WaveletDelineationApp", "NO_POINT"]


#: Marker for "no fiducial point found" in the annotation buffer.
NO_POINT = -1


class WaveletDelineationApp(BiomedicalApp):
    """P-QRS-T delineation over the faulty memory fabric.

    Args:
        fs_hz: sampling rate of the input record.
        window: processing window in samples (static buffers).
        slots_per_window: annotation capacity per window; 8 slots at a
            1024-sample window tolerates heart rates beyond 160 bpm.
        threshold_factor: QRS threshold as a multiple of the robust
            (98th percentile) scale-2 modulus.
    """

    name = "delineation"
    description = "wavelet delineation emitting P/Q/R/S/T points"

    def __init__(
        self,
        fs_hz: float = 360.0,
        window: int = 1024,
        slots_per_window: int = 8,
        threshold_factor: float = 0.45,
    ) -> None:
        super().__init__()
        if fs_hz <= 0:
            raise SignalError(f"fs_hz must be positive, got {fs_hz}")
        if window < 256:
            raise SignalError(f"window must be >= 256, got {window}")
        if slots_per_window < 1:
            raise SignalError(
                f"slots_per_window must be >= 1, got {slots_per_window}"
            )
        if not 0.0 < threshold_factor < 1.0:
            raise SignalError(
                f"threshold_factor must be in (0, 1), got {threshold_factor}"
            )
        self.fs_hz = fs_hz
        self.window = window
        self.slots = slots_per_window
        self.threshold_factor = threshold_factor

    # -- helpers -----------------------------------------------------------

    def _samples_of(self, seconds: float) -> int:
        return max(1, int(round(seconds * self.fs_hz)))

    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        arr = self._check_samples(samples)
        if arr.size - 1 > 32767:
            # Annotation entries are absolute indices in 16-bit words.
            raise SignalError(
                f"record of {arr.size} samples exceeds the 16-bit "
                f"annotation index range; process it in segments"
            )
        outputs = []
        for start in range(0, arr.size, self.window):
            chunk = arr[start : start + self.window]
            if chunk.size < 256:
                # Too short to delineate: emit empty slots deterministically.
                outputs.append(
                    np.full(self.slots * 5, NO_POINT, dtype=np.int64)
                )
                continue
            outputs.append(self._run_window(chunk, start, fabric))
        return np.concatenate(outputs)

    def _run_window(
        self, chunk: np.ndarray, offset: int, fabric: MemoryFabric
    ) -> np.ndarray:
        signal = fabric.roundtrip("delin.input", chunk)

        # Wavelet decomposition; the coefficient buffers are intermediates
        # in the faulty memory just like the DWT application's.
        d1 = atrous_highpass(signal, 1)
        a1 = atrous_lowpass(signal, 1)
        a1 = fabric.roundtrip("delin.approx0", a1)
        d2 = atrous_highpass(a1, 2)
        a2 = atrous_lowpass(a1, 2)
        d2 = fabric.roundtrip("delin.d2", d2)
        a2 = fabric.roundtrip("delin.approx1", a2)
        a3 = atrous_lowpass(a2, 3)
        a3 = fabric.roundtrip("delin.approx0", a3)
        del d1  # scale-1 detail participates in memory traffic only

        r_peaks = self._detect_r(signal, d2)
        annotations = np.full((self.slots, 5), NO_POINT, dtype=np.int64)
        for slot, r_index in enumerate(r_peaks[: self.slots]):
            p, q, s, t = self._delineate_beat(signal, a3, r_index)
            beat = [p, q, r_index, s, t]
            annotations[slot] = [
                NO_POINT if v == NO_POINT else v + offset for v in beat
            ]
        return fabric.roundtrip("delin.output", annotations.ravel())

    # -- detectors ------------------------------------------------------------

    def _detect_r(self, signal: np.ndarray, d2: np.ndarray) -> list[int]:
        """Threshold the scale-2 modulus and refine to signal extrema."""
        modulus = np.abs(d2)
        # Robust threshold: a percentile resists isolated corrupted
        # coefficients better than the absolute maximum would.
        level = self.threshold_factor * float(np.percentile(modulus, 98))
        if level <= 0:
            return []
        refractory = self._samples_of(0.25)
        refine = self._samples_of(0.05)

        candidates = np.flatnonzero(modulus > level)
        peaks: list[int] = []
        last = -refractory
        for index in candidates:
            if index - last < refractory:
                continue
            lo = max(0, index - refine)
            hi = min(signal.size, index + refine + 1)
            local = lo + int(np.argmax(np.abs(signal[lo:hi])))
            peaks.append(local)
            last = index
        return peaks

    def _delineate_beat(
        self, signal: np.ndarray, a3: np.ndarray, r_index: int
    ) -> tuple[int, int, int, int]:
        """Locate P, Q, S and T around one R peak (window-relative)."""

        def extremum(
            series: np.ndarray, lo_s: float, hi_s: float, take_max: bool
        ) -> int:
            lo = r_index + (self._samples_of(lo_s) if lo_s >= 0 else -self._samples_of(-lo_s))
            hi = r_index + (self._samples_of(hi_s) if hi_s >= 0 else -self._samples_of(-hi_s))
            lo, hi = max(0, lo), min(series.size, hi)
            if hi - lo < 2:
                return NO_POINT
            segment = series[lo:hi]
            pick = np.argmax(segment) if take_max else np.argmin(segment)
            return lo + int(pick)

        q_index = extremum(signal, -0.06, -0.01, take_max=False)
        s_index = extremum(signal, 0.01, 0.06, take_max=False)
        # P and T on the QRS-suppressed approximation, relative to its
        # local median so wandering baselines do not bias the extremum.
        p_index = extremum(a3, -0.30, -0.08, take_max=True)
        t_index = extremum(np.abs(a3 - int(np.median(a3))), 0.15, 0.45, take_max=True)
        return p_index, q_index, s_index, t_index
