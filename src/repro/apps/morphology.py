"""Morphological Filtering application (paper Section II-4).

Cleans raw ECG — baseline drift from respiration/electrode motion and
high-frequency noise from muscle activity or mains coupling — using the
classic two-stage morphological operator chain (Sun, Chan & Krishnan
style), built purely from erosions and dilations with flat structuring
elements:

1. **Baseline correction**: the baseline is estimated by an opening (to
   suppress peaks) followed by a closing (to suppress pits) with
   structuring elements longer than the widest wave of interest, and is
   subtracted from the signal.
2. **Noise suppression**: the average of an opening-closing and a
   closing-opening with a short element smooths residual spikes.

Erosion and dilation are running min/max — exact integer operations, so
the fixed-point implementation introduces no arithmetic error at all;
whatever degradation the experiments observe is purely memory corruption.

Memory behaviour: the input, the baseline estimate, the detrended signal
and the final output all round-trip through the faulty fabric.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError
from ..mem.fabric import MemoryFabric
from .base import BiomedicalApp

__all__ = ["MorphologicalFilterApp", "erode", "dilate", "opening", "closing"]


def _sliding_extreme(values: np.ndarray, length: int, take_max: bool) -> np.ndarray:
    """Running min/max with a centred flat structuring element.

    The input is edge-padded so the output has the same length (flat
    extension, the standard choice for ECG morphology).  Shape-agnostic:
    the sample index is the last axis, so a trial-batched
    ``(n_trials, n)`` array is filtered in one strided pass.
    """
    if length < 1:
        raise SignalError(f"structuring element must be >= 1, got {length}")
    if length % 2 == 0:
        raise SignalError(
            f"structuring element must have odd length, got {length}"
        )
    arr = np.asarray(values, dtype=np.int64)
    half = length // 2
    padded = np.concatenate(
        [
            np.repeat(arr[..., :1], half, axis=-1),
            arr,
            np.repeat(arr[..., -1:], half, axis=-1),
        ],
        axis=-1,
    )
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, length, axis=-1
    )
    return windows.max(axis=-1) if take_max else windows.min(axis=-1)


def erode(values: np.ndarray, length: int) -> np.ndarray:
    """Flat erosion (running minimum) with a centred element."""
    return _sliding_extreme(values, length, take_max=False)


def dilate(values: np.ndarray, length: int) -> np.ndarray:
    """Flat dilation (running maximum) with a centred element."""
    return _sliding_extreme(values, length, take_max=True)


def opening(values: np.ndarray, length: int) -> np.ndarray:
    """Erosion followed by dilation: removes positive peaks."""
    return dilate(erode(values, length), length)


def closing(values: np.ndarray, length: int) -> np.ndarray:
    """Dilation followed by erosion: removes negative pits."""
    return erode(dilate(values, length), length)


class MorphologicalFilterApp(BiomedicalApp):
    """Baseline removal plus noise suppression over the memory fabric.

    Args:
        fs_hz: sampling rate, used to size the structuring elements.
        baseline_open_s: opening element length in seconds (must exceed
            the QRS width so complexes are not flattened into the
            baseline estimate).
        baseline_close_s: closing element length in seconds (spans the
            full P-QRS-T so the estimate tracks only the drift).
        noise_element: short element length in samples for the final
            smoothing stage.
        window: processing window in samples (static buffers).
    """

    name = "morphology"
    description = "morphological baseline removal and noise suppression"
    #: Erosion/dilation are last-axis sliding extrema and the arithmetic
    #: is elementwise, so a batched fabric vectorises across trials.
    supports_batch = True

    def __init__(
        self,
        fs_hz: float = 360.0,
        baseline_open_s: float = 0.2,
        baseline_close_s: float = 0.3,
        noise_element: int = 5,
        window: int = 2048,
    ) -> None:
        super().__init__()
        if fs_hz <= 0:
            raise SignalError(f"fs_hz must be positive, got {fs_hz}")

        def odd_samples(seconds: float) -> int:
            n = max(3, int(round(seconds * fs_hz)))
            return n if n % 2 else n + 1

        self.open_len = odd_samples(baseline_open_s)
        self.close_len = odd_samples(baseline_close_s)
        if noise_element < 3 or noise_element % 2 == 0:
            raise SignalError(
                f"noise_element must be an odd value >= 3, got {noise_element}"
            )
        self.noise_len = noise_element
        if window < 2 * self.close_len:
            raise SignalError(
                f"window {window} too small for a {self.close_len}-sample "
                f"closing element"
            )
        self.window = window

    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        arr = self._check_samples(samples)
        # Complete windows (of every stream) stack into one batched
        # roundtrip per buffer on a batched fabric; the trailing partial
        # window (and every window on a classic fabric) takes the
        # historical loop.
        return self._run_in_windows(
            arr,
            self.window,
            fabric,
            lambda chunk: self._run_window(chunk, fabric),
        )

    def _run_window(
        self, chunk: np.ndarray, fabric: MemoryFabric
    ) -> np.ndarray:
        signal = fabric.roundtrip("morpho.input", chunk)

        # Stage 1: baseline estimation and removal.
        opened = fabric.roundtrip(
            "morpho.opened", opening(signal, self.open_len)
        )
        baseline = fabric.roundtrip(
            "morpho.baseline", closing(opened, self.close_len)
        )
        detrended = fabric.roundtrip("morpho.detrended", signal - baseline)

        # Stage 2: noise suppression (average of oc and co).
        oc = closing(opening(detrended, self.noise_len), self.noise_len)
        co = opening(closing(detrended, self.noise_len), self.noise_len)
        # Arithmetic mean with floor division matches the >> 1 of firmware.
        cleaned = (oc + co) >> 1
        return fabric.roundtrip("morpho.output", cleaned)
