"""Q-format fixed-point arithmetic used by the biomedical applications.

The applications in the paper run on an ARM-v6 class core without an FPU
and operate on 16-bit two's-complement samples.  This module provides the
small arithmetic kernel they share:

* :class:`QFormat` — a ``Qm.n`` format descriptor (total width, fraction
  bits) with conversion to/from floating point,
* saturating vectorised add / subtract / multiply / shift,
* rounding helpers matching the behaviour of a typical DSP multiply
  (round-half-up on the discarded fraction bits).

Everything is vectorised over numpy arrays; results are ``int64`` clipped
to the format's representable range so they can be fed straight into the
bit-accurate memory model via :func:`repro._bitops.to_unsigned`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import FixedPointError

__all__ = [
    "QFormat",
    "Q15",
    "Q14",
    "Q11",
    "saturate",
    "sat_add",
    "sat_sub",
    "sat_mul",
    "rounded_shift_right",
]


@dataclass(frozen=True)
class QFormat:
    """A signed two's-complement ``Qm.n`` fixed-point format.

    Attributes:
        width: total number of bits, including the sign bit.
        frac_bits: number of fractional bits (``n`` in ``Qm.n``).

    The integer range is ``[min_int, max_int]`` and the real-value range is
    that divided by ``2**frac_bits``.
    """

    width: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.width < 2:
            raise FixedPointError(f"width must be >= 2, got {self.width}")
        if not 0 <= self.frac_bits < self.width:
            raise FixedPointError(
                f"frac_bits must be in [0, width), got {self.frac_bits}"
            )

    @property
    def min_int(self) -> int:
        """Smallest representable integer (raw) value."""
        return -(1 << (self.width - 1))

    @property
    def max_int(self) -> int:
        """Largest representable integer (raw) value."""
        return (1 << (self.width - 1)) - 1

    @property
    def scale(self) -> float:
        """Multiplier mapping real values to raw integers."""
        return float(1 << self.frac_bits)

    @property
    def resolution(self) -> float:
        """Real-value difference between adjacent raw integers."""
        return 1.0 / self.scale

    def from_float(self, values: np.ndarray) -> np.ndarray:
        """Quantise real values into raw integers with saturation.

        Rounds to nearest (ties away from zero, like C ``lround``).
        """
        arr = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(arr)):
            raise FixedPointError("cannot quantise non-finite values")
        raw = np.round(arr * self.scale)
        return np.clip(raw, self.min_int, self.max_int).astype(np.int64)

    def to_float(self, raw: np.ndarray) -> np.ndarray:
        """Map raw integers back to real values."""
        return np.asarray(raw, dtype=np.float64) / self.scale

    def __str__(self) -> str:
        return f"Q{self.width - 1 - self.frac_bits}.{self.frac_bits}"


#: 16-bit sample format with a full fractional range, the native format of
#: the paper's data memory (16-bit ECG samples).
Q15 = QFormat(width=16, frac_bits=15)

#: One guard bit of integer headroom; used by filter accumulators.
Q14 = QFormat(width=16, frac_bits=14)

#: Four integer bits; used where coefficients exceed unity gain.
Q11 = QFormat(width=16, frac_bits=11)


def saturate(values: np.ndarray, fmt: QFormat = Q15) -> np.ndarray:
    """Clip raw integers to the representable range of ``fmt``."""
    arr = np.asarray(values, dtype=np.int64)
    return np.clip(arr, fmt.min_int, fmt.max_int)


def sat_add(a: np.ndarray, b: np.ndarray, fmt: QFormat = Q15) -> np.ndarray:
    """Saturating addition of raw fixed-point integers."""
    wide = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
    return saturate(wide, fmt)


def sat_sub(a: np.ndarray, b: np.ndarray, fmt: QFormat = Q15) -> np.ndarray:
    """Saturating subtraction of raw fixed-point integers."""
    wide = np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64)
    return saturate(wide, fmt)


def rounded_shift_right(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-up on the discarded bits.

    This matches the rounding step of a DSP fractional multiply: add half
    of the weight of the discarded field, then shift.  ``shift`` may be 0,
    in which case values pass through unchanged.
    """
    if shift < 0:
        raise FixedPointError(f"shift must be non-negative, got {shift}")
    arr = np.asarray(values, dtype=np.int64)
    if shift == 0:
        return arr.copy()
    rounding = np.int64(1) << np.int64(shift - 1)
    return (arr + rounding) >> np.int64(shift)


def sat_mul(a: np.ndarray, b: np.ndarray, fmt: QFormat = Q15) -> np.ndarray:
    """Saturating fractional multiply of raw fixed-point integers.

    Computes the wide product, rounds away ``fmt.frac_bits`` fraction bits
    (round-half-up) and saturates to the format range — the behaviour of a
    16x16 -> 32-bit multiply followed by a rounding shift on a typical
    embedded DSP path.
    """
    wide = np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64)
    return saturate(rounded_shift_right(wide, fmt.frac_bits), fmt)
