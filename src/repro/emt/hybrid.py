"""Voltage-triggered EMT selection (paper Section VI-C).

The paper's final experiment observes that no single EMT wins across the
whole voltage range: running unprotected is cheapest while the memory is
still error-free, DREAM wins in the mid range, and ECC's full single-error
correction is worth its cost just above the multi-error regime.  Combining
them — "triggering, selectively, one or the other, according to the
memory supply voltage and level of protection required" — yields the
12.7 % / 30.6 % / 39.5 % savings headline.

:class:`HybridEMT` is the runtime side of that idea: an EMT whose
encode/decode paths dispatch to a member technique chosen by the current
supply voltage.  The *selection* of voltage ranges from measured
SNR-vs-voltage data lives in :mod:`repro.exp.tradeoff`; the policy object
built there can be loaded into a ``HybridEMT`` for deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EMTError
from .base import EMT, DecodeStats

__all__ = ["VoltageRange", "HybridEMT"]


@dataclass(frozen=True)
class VoltageRange:
    """One policy entry: use ``emt_name`` for supplies in [v_min, v_max].

    Attributes:
        v_min: lower bound of the range in volts (inclusive).
        v_max: upper bound of the range in volts (inclusive).
        emt_name: registry name of the technique to apply.
        saving_pct: optional energy saving (vs nominal, unprotected)
            recorded by the trade-off experiment for reporting.
    """

    v_min: float
    v_max: float
    emt_name: str
    saving_pct: float | None = None

    def __post_init__(self) -> None:
        if self.v_min > self.v_max:
            raise EMTError(
                f"empty voltage range [{self.v_min}, {self.v_max}]"
            )

    def contains(self, voltage: float) -> bool:
        """Whether ``voltage`` falls inside this range (inclusive)."""
        return self.v_min <= voltage <= self.v_max


class HybridEMT(EMT):
    """An EMT that switches member techniques with the supply voltage.

    The stored geometry must accommodate the widest member (the memory is
    provisioned for the most expensive technique); members with narrower
    codewords simply leave the top bits unused, which matches hardware
    where the ECC check-bit columns exist physically even when bypassed.

    Example:
        >>> from repro.emt import DreamEMT, NoProtection, SecDedEMT
        >>> policy = [
        ...     VoltageRange(0.85, 0.90, "none"),
        ...     VoltageRange(0.65, 0.85, "dream"),
        ...     VoltageRange(0.55, 0.65, "secded"),
        ... ]
        >>> members = {e.name: e for e in
        ...            (NoProtection(), DreamEMT(), SecDedEMT())}
        >>> hybrid = HybridEMT(members, policy, voltage=0.7)
        >>> hybrid.active.name
        'dream'
    """

    name = "hybrid"

    def __init__(
        self,
        members: dict[str, EMT],
        policy: list[VoltageRange],
        voltage: float,
    ) -> None:
        if not members:
            raise EMTError("HybridEMT requires at least one member EMT")
        data_bits = {emt.data_bits for emt in members.values()}
        if len(data_bits) != 1:
            raise EMTError(f"members disagree on data_bits: {data_bits}")
        super().__init__(data_bits.pop())
        for entry in policy:
            if entry.emt_name not in members:
                raise EMTError(
                    f"policy references unknown EMT {entry.emt_name!r}"
                )
        self.members = dict(members)
        self.policy = sorted(policy, key=lambda r: r.v_min)
        self._voltage = 0.0
        self._active: EMT | None = None
        self.set_voltage(voltage)

    # -- policy dispatch ----------------------------------------------------

    def select(self, voltage: float) -> EMT:
        """Return the member EMT the policy prescribes at ``voltage``."""
        for entry in self.policy:
            if entry.contains(voltage):
                return self.members[entry.emt_name]
        raise EMTError(
            f"no policy entry covers {voltage} V; "
            f"ranges: {[(r.v_min, r.v_max) for r in self.policy]}"
        )

    def set_voltage(self, voltage: float) -> None:
        """Re-point encode/decode at the technique for ``voltage``."""
        self._active = self.select(voltage)
        self._voltage = voltage

    @property
    def voltage(self) -> float:
        """The currently configured supply voltage."""
        return self._voltage

    @property
    def active(self) -> EMT:
        """The member EMT currently in effect."""
        if self._active is None:  # pragma: no cover - set in __init__
            raise EMTError("HybridEMT has no active member")
        return self._active

    # -- geometry (provisioned for the widest member) -----------------------

    @property
    def stored_bits(self) -> int:
        return max(emt.stored_bits for emt in self.members.values())

    @property
    def side_bits(self) -> int:
        return max(emt.side_bits for emt in self.members.values())

    # -- delegated EMT interface --------------------------------------------

    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None]:
        return self.active.encode(payload, checked)

    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        return self.active.decode(stored, side, stats, checked)

    def encode_word(self, payload: int) -> tuple[int, int]:
        return self.active.encode_word(payload)

    def decode_word(self, stored: int, side: int) -> int:
        return self.active.decode_word(stored, side)
