"""Mission descriptions for the adaptive runtime (`repro.runtime`).

The paper explores energy vs. reliability as a *static* design space; a
deployed wearable lives in a *dynamic* one.  A :class:`MissionSpec`
captures that dynamics as a timeline of :class:`SegmentSpec` segments —
"asleep", "commuting", "PVC storm" — each naming the signal it produces
(a catalog rhythm with optionally amplified noise) and the environmental
stress it puts on the voltage-scaled memory.  The stress is modelled as a
Bit-Error-Rate multiplier: motion artifacts, radio bursts and supply
droop all raise the effective BER of low-voltage SRAM above its bench
calibration, which is exactly the disturbance a run-time operating-point
policy has to absorb.

A mission also fixes the *operating-point lattice* the policy may choose
from (supply voltages x EMTs), the processing window, and the battery;
:mod:`repro.runtime.simulator` closes the loop.  Everything here is
JSON-serialisable (:meth:`MissionSpec.to_dict`), so missions travel
through :mod:`repro.campaign` grids unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..energy.battery import BatteryModel
from ..errors import MissionError

__all__ = ["SegmentSpec", "MissionSpec", "MissionResult"]


@dataclass(frozen=True)
class SegmentSpec:
    """One contiguous episode of a mission timeline.

    Attributes:
        name: label used in reports and traces.
        duration_s: episode length in seconds.
        record: catalog record supplying the episode's rhythm (pathology
            episodes name PVC-rich records like ``"106"``/``"119"``).
        noise_gain: multiplier on the record's baseline-wander, mains and
            EMG noise amplitudes (a motion burst is ``> 1``).
        stress: observable environmental stress in ``[0, 1]`` — what a
            node can sense cheaply (accelerometer, supply monitor) before
            processing a window.  Policies may read it as a feed-forward
            hint.
        ber_multiplier: factor applied to the technology's calibrated
            BER(V) during this episode (supply droop / interference /
            temperature); ``1`` is bench conditions.
    """

    name: str
    duration_s: float
    record: str = "100"
    noise_gain: float = 1.0
    stress: float = 0.0
    ber_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise MissionError("segment name must be non-empty")
        if self.duration_s <= 0:
            raise MissionError(
                f"segment duration must be positive, got {self.duration_s}"
            )
        if self.noise_gain < 0:
            raise MissionError(
                f"noise gain must be non-negative, got {self.noise_gain}"
            )
        if not 0.0 <= self.stress <= 1.0:
            raise MissionError(
                f"stress must be in [0, 1], got {self.stress}"
            )
        if self.ber_multiplier < 0:
            raise MissionError(
                f"BER multiplier must be non-negative, "
                f"got {self.ber_multiplier}"
            )

    @property
    def signature(self) -> tuple:
        """What makes two segments *physically* identical.

        Segments sharing a signature share calibrated quality models in
        the simulator regardless of their name/position in the timeline.
        """
        return (self.record, self.noise_gain, self.ber_multiplier)


@dataclass(frozen=True)
class MissionSpec:
    """A complete device mission: timeline, lattice, window, battery.

    Attributes:
        name: mission identity (scenario registry key, report label).
        segments: the timeline, in order; total mission duration is the
            sum of segment durations.
        app: application processing each window (registry name).
        window_s: processing-window length in seconds; the policy picks
            one operating point per window.
        voltages: supply voltages of the operating-point lattice.
        emts: EMT registry names of the lattice; the lattice is the
            ``voltages x emts`` product, energy-sorted into a ladder.
        battery: the energy source being drained.
        platform_power_uw: constant EMT-independent platform draw added
            to every window (0 isolates the memory subsystem, the
            paper's comparative framing).
        quality_floor_db: per-window SNR requirement; windows below it
            count as quality violations.
        hint_noise: standard deviation of the observation noise on the
            per-window stress hint.
        seed: master seed of the mission's stochastic draws.
    """

    name: str
    segments: tuple[SegmentSpec, ...]
    app: str = "morphology"
    window_s: float = 8.0
    voltages: tuple[float, ...] = (0.65, 0.70, 0.80)
    emts: tuple[str, ...] = ("secded",)
    battery: BatteryModel = field(
        default_factory=lambda: BatteryModel(capacity_mah=0.25)
    )
    platform_power_uw: float = 0.0
    quality_floor_db: float = 30.0
    hint_noise: float = 0.02
    seed: int = 2016

    def __post_init__(self) -> None:
        if not self.name:
            raise MissionError("mission name must be non-empty")
        if not self.segments:
            raise MissionError("a mission needs at least one segment")
        if self.window_s <= 0:
            raise MissionError(
                f"window must be positive, got {self.window_s}"
            )
        if not self.voltages or not self.emts:
            raise MissionError(
                "the operating-point lattice needs at least one voltage "
                "and one EMT"
            )
        if self.platform_power_uw < 0:
            raise MissionError(
                f"platform power must be non-negative, "
                f"got {self.platform_power_uw}"
            )
        if self.hint_noise < 0:
            raise MissionError(
                f"hint noise must be non-negative, got {self.hint_noise}"
            )
        if self.total_duration_s < self.window_s:
            raise MissionError(
                f"mission ({self.total_duration_s} s) is shorter than one "
                f"window ({self.window_s} s)"
            )

    @property
    def total_duration_s(self) -> float:
        """Mission length: the sum of segment durations."""
        return sum(segment.duration_s for segment in self.segments)

    @property
    def n_windows(self) -> int:
        """Whole processing windows in the mission."""
        return int(self.total_duration_s // self.window_s)

    def segment_at(self, time_s: float) -> SegmentSpec:
        """The segment active at ``time_s`` (windows are assigned by
        their start time; the final instant belongs to the last segment).
        """
        if time_s < 0:
            raise MissionError(f"time must be non-negative, got {time_s}")
        elapsed = 0.0
        for segment in self.segments:
            elapsed += segment.duration_s
            if time_s < elapsed:
                return segment
        if time_s <= elapsed:
            return self.segments[-1]
        raise MissionError(
            f"time {time_s} s is past the mission end ({elapsed} s)"
        )

    def scaled(self, factor: float) -> "MissionSpec":
        """A copy with durations *and* battery capacity scaled by ``factor``.

        Scaling preserves the mission's *shape*: segment proportions and
        the stress schedule, but also the state-of-charge trajectory and
        any mid-mission depletion, because the battery shrinks with the
        timeline.  Campaign sweeps and tests explore scaled missions
        (absolute lifetimes scale by ``factor``; every between-policy
        ordering is preserved), reports run full ones.
        """
        if factor <= 0:
            raise MissionError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            segments=tuple(
                replace(seg, duration_s=seg.duration_s * factor)
                for seg in self.segments
            ),
            battery=replace(
                self.battery,
                capacity_mah=self.battery.capacity_mah * factor,
            ),
        )

    # -- JSON round-trip (campaign transport) -----------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form, for campaign parameters and stores."""
        return {
            "name": self.name,
            "app": self.app,
            "window_s": self.window_s,
            "voltages": list(self.voltages),
            "emts": list(self.emts),
            "battery": {
                "capacity_mah": self.battery.capacity_mah,
                "cell_voltage": self.battery.cell_voltage,
                "usable_fraction": self.battery.usable_fraction,
            },
            "platform_power_uw": self.platform_power_uw,
            "quality_floor_db": self.quality_floor_db,
            "hint_noise": self.hint_noise,
            "seed": self.seed,
            "segments": [
                {
                    "name": seg.name,
                    "duration_s": seg.duration_s,
                    "record": seg.record,
                    "noise_gain": seg.noise_gain,
                    "stress": seg.stress,
                    "ber_multiplier": seg.ber_multiplier,
                }
                for seg in self.segments
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MissionSpec":
        """Rebuild a spec produced by :meth:`to_dict`."""
        data = dict(payload)
        try:
            segments = tuple(
                SegmentSpec(**seg) for seg in data.pop("segments")
            )
            battery = BatteryModel(**data.pop("battery"))
            data["voltages"] = tuple(data["voltages"])
            data["emts"] = tuple(data["emts"])
            return cls(segments=segments, battery=battery, **data)
        except (KeyError, TypeError) as exc:
            raise MissionError(f"malformed mission payload: {exc}") from exc


@dataclass(frozen=True)
class MissionResult:
    """Outcome of one simulated mission under one policy.

    Attributes:
        mission_name / policy_name: what ran.
        n_windows: windows the timeline holds.
        n_processed: windows actually processed (fewer if the battery
            died mid-mission).
        survived: True if the battery outlasted the timeline.
        lifetime_days: battery lifetime — the actual depletion time when
            the cell died during the mission, otherwise the projection of
            the mission's average power onto the full usable capacity
            (assumes the mission profile repeats; SoC-dependent policies
            make this a first-order figure).
        mean_snr_db / worst_snr_db / p5_snr_db: per-window output quality
            statistics over processed windows.
        n_switches: operating-point changes after the initial choice.
        n_violations: windows whose quality fell below the mission's
            ``quality_floor_db``.
        energy_mj: total energy drained.
        average_power_uw: ``energy / processed time``.
        op_point_share: fraction of processed windows spent at each
            lattice point, keyed ``"emt@V"``.
        trace: optional per-window records (``keep_trace=True`` runs).
    """

    mission_name: str
    policy_name: str
    n_windows: int
    n_processed: int
    survived: bool
    lifetime_days: float
    mean_snr_db: float
    worst_snr_db: float
    p5_snr_db: float
    n_switches: int
    n_violations: int
    energy_mj: float
    average_power_uw: float
    op_point_share: dict[str, float] = field(default_factory=dict)
    trace: tuple[dict, ...] | None = None

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MissionResult":
        """Rebuild a result from its :meth:`to_dict` form.

        Stored ``mission`` campaign records and experiment-API result
        handles carry mission outcomes in the JSON-safe dict form; this
        restores the dataclass (without a trace — traces are never
        serialised).
        """
        data = dict(payload)
        try:
            return cls(
                mission_name=data.pop("mission"),
                policy_name=data.pop("policy"),
                op_point_share=dict(data.pop("op_point_share", {})),
                **data,
            )
        except (KeyError, TypeError) as exc:
            raise MissionError(
                f"malformed mission-result payload: {exc}"
            ) from exc

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (the trace, when kept, is excluded)."""
        return {
            "mission": self.mission_name,
            "policy": self.policy_name,
            "n_windows": self.n_windows,
            "n_processed": self.n_processed,
            "survived": self.survived,
            "lifetime_days": self.lifetime_days,
            "mean_snr_db": self.mean_snr_db,
            "worst_snr_db": self.worst_snr_db,
            "p5_snr_db": self.p5_snr_db,
            "n_switches": self.n_switches,
            "n_violations": self.n_violations,
            "energy_mj": self.energy_mj,
            "average_power_uw": self.average_power_uw,
            "op_point_share": dict(self.op_point_share),
        }
