"""Crash-consistency tests: torn tails, sealing, and write retries.

A writer killed mid-append (the chaos layer's whole point) must never
make a store unreadable: the torn tail is tolerated and quarantined on
load, the next append seals it with a newline so debris cannot merge
with fresh records, and a transient ENOSPC at the persistence seam is
retried before it fails the campaign.
"""

from __future__ import annotations

import json

import pytest

from repro.cache import DiskCache, computed_events
from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.store import quarantine_torn_lines
from repro.errors import CampaignError
from repro.resilience import chaos_draw

GOOD = {
    "hash": "aaaa", "kind": "energy", "params": {"v": 1},
    "status": "ok", "result": {"total_pj": 1.0}, "elapsed_s": 0.1,
}
TORN = '{"hash": "bbbb", "status": "o'  # a writer died mid-line here


def one_point_spec() -> CampaignSpec:
    return CampaignSpec(
        name="crash-test",
        kind="energy",
        axes={"emt": ("none",), "voltage": (0.9,)},
        fixed={"workload": {
            "n_reads": 20_000, "n_writes": 20_000, "duration_s": 1e-3,
        }},
    )


class TestStoreTornTail:
    def test_torn_tail_tolerated_and_quarantined(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(json.dumps(GOOD) + "\n" + TORN, encoding="utf-8")
        store = ResultStore(path)
        records = store.load()
        assert set(records) == {"aaaa"}  # torn line skipped, not fatal
        side = tmp_path / "c.jsonl.quarantine"
        assert side.read_text(encoding="utf-8") == TORN + "\n"

    def test_quarantine_not_duplicated_across_loads(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(TORN, encoding="utf-8")
        ResultStore(path).load()
        ResultStore(path).load()  # fresh memo: the file parses again
        side = tmp_path / "c.jsonl.quarantine"
        assert side.read_text(encoding="utf-8").splitlines() == [TORN]

    def test_quarantine_helper_counts_fresh_lines_only(self, tmp_path):
        path = tmp_path / "c.jsonl"
        assert quarantine_torn_lines(path, ["x", "y"]) == 2
        assert quarantine_torn_lines(path, ["y", "z"]) == 1
        assert quarantine_torn_lines(path, []) == 0
        side = tmp_path / "c.jsonl.quarantine"
        assert side.read_text(encoding="utf-8").splitlines() == [
            "x", "y", "z",
        ]

    def test_append_seals_torn_tail_with_newline(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(TORN, encoding="utf-8")  # no trailing newline
        store = ResultStore(path)
        store.append(GOOD)
        raw = path.read_text(encoding="utf-8").splitlines()
        assert raw[0] == TORN  # sealed: debris stays an isolated line
        assert json.loads(raw[1])["hash"] == "aaaa"
        assert set(store.load()) == {"aaaa"}

    def test_append_to_clean_store_adds_no_blank_line(self, tmp_path):
        store = ResultStore(tmp_path / "c.jsonl")
        store.append(GOOD)
        store.append({**GOOD, "hash": "cccc"})
        raw = (tmp_path / "c.jsonl").read_text(encoding="utf-8")
        assert raw.count("\n") == 2 and "\n\n" not in raw
        assert set(store.load()) == {"aaaa", "cccc"}


class TestCacheEventLogTornTail:
    def test_torn_event_tail_tolerated_sealed_and_quarantined(
        self, tmp_path
    ):
        cache = DiskCache(tmp_path)
        cache.get_or_compute({"x": 1}, lambda: 1)
        cache.get_or_compute({"x": 2}, lambda: 2)
        with cache.events_path.open("ab") as handle:
            handle.write(b'{"event": "compu')  # crashed writer's debris
        # The reader tolerates and quarantines the torn line...
        assert len(computed_events(tmp_path)) == 2
        side = tmp_path / "events.jsonl.quarantine"
        assert "compu" in side.read_text(encoding="utf-8")
        # ...and the next append seals it, so the new event parses.
        cache.get_or_compute({"x": 3}, lambda: 3)
        assert len(computed_events(tmp_path)) == 3


class TestStoreWriteRetry:
    def test_transient_enospc_is_retried_then_succeeds(
        self, tmp_path, monkeypatch
    ):
        spec = one_point_spec()
        point_hash = spec.expand()[0].content_hash()
        # A seed whose ENOSPC draw fires on write attempt 1 and clears
        # on attempt 2 — the retry must land the record.
        for seed in range(500):
            if (
                chaos_draw(seed, "enospc", point_hash, 1) < 0.5
                and chaos_draw(seed, "enospc", point_hash, 2) >= 0.5
            ):
                break
        else:
            raise AssertionError("no seed found — widen the search")
        monkeypatch.setenv("REPRO_CHAOS", f"enospc:0.5,seed:{seed}")
        store = ResultStore(tmp_path / "c.jsonl")
        result = run_campaign(spec, store=store)
        assert result.n_executed == 1 and result.n_failed == 0
        assert store.completed_hashes() == {point_hash}

    def test_persistent_enospc_fails_the_campaign_bounded(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "enospc:1.0")
        store = ResultStore(tmp_path / "c.jsonl")
        with pytest.raises(
            CampaignError, match="store append failed after 5 attempts"
        ):
            run_campaign(one_point_spec(), store=store)
