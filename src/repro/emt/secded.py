"""Hamming SEC/DED — the traditional ECC the paper compares against.

The paper's reference EMT is an extended Hamming code with Single Error
Correction and Double Error Detection ([14] in the paper): for 16 data
bits, 5 Hamming check bits plus 1 overall parity bit, i.e. a (22,16) code
— ``2 + log2(16) = 6`` extra bits per word, all stored alongside the data
in the *faulty* voltage-scaled memory (unlike DREAM's side memory, the
check bits themselves are exposed to stuck-at faults; the code is designed
for exactly that).

Decoding semantics (design decision D4 in DESIGN.md):

* syndrome 0, overall parity even — no error;
* syndrome 0, parity odd — the overall parity bit itself flipped, data OK;
* syndrome != 0, parity odd — single error at the syndrome position:
  flipped and fully corrected;
* syndrome != 0, parity even — double error: **detected but not
  corrected**; the decoder returns the raw (corrupted) data bits, which is
  why ECC SEC/DED underperforms DREAM below 0.55 V in Fig 4;
* three or more errors may alias onto any of the above, including silent
  miscorrection — the honest behaviour of real SEC/DED hardware.
"""

from __future__ import annotations

import numpy as np

from .._bitops import bit_mask, parity
from ..errors import EMTError
from .base import EMT, DecodeStats

__all__ = ["SecDedEMT", "hamming_check_bits"]


def hamming_check_bits(data_bits: int) -> int:
    """Number of Hamming check bits needed for ``data_bits`` payload bits.

    Smallest ``r`` with ``2**r >= data_bits + r + 1``.
    """
    if data_bits < 1:
        raise EMTError(f"data_bits must be positive, got {data_bits}")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class SecDedEMT(EMT):
    """Extended Hamming (n, k) SEC/DED code over ``data_bits`` payloads.

    Codeword layout (LSB first): bits ``[0, data_bits)`` carry the data,
    bits ``[data_bits, data_bits + r)`` the Hamming check bits, and the
    top bit the overall parity.  Internally each codeword bit index is
    assigned a *Hamming position* (1-based, check bits at powers of two)
    used for syndrome arithmetic; keeping the data bits contiguous in the
    stored word lets the fault-injection and significance analyses address
    data bit positions directly.

    Example:
        >>> import numpy as np
        >>> emt = SecDedEMT()
        >>> stored, _ = emt.encode(np.array([0x1234]))
        >>> int(emt.decode(stored ^ (1 << 7), None)[0])  # single fault
        4660
    """

    name = "secded"

    def __init__(self, data_bits: int = 16) -> None:
        super().__init__(data_bits)
        self.check_bits = hamming_check_bits(data_bits)
        self._build_code()

    # -- geometry ---------------------------------------------------------

    @property
    def stored_bits(self) -> int:
        """Data + Hamming check bits + overall parity (22 for 16 data bits)."""
        return self.data_bits + self.check_bits + 1

    # -- code construction --------------------------------------------------

    def _build_code(self) -> None:
        """Precompute encode/syndrome masks and the position-to-index map."""
        k, r = self.data_bits, self.check_bits
        n_positions = k + r  # Hamming positions 1..n_positions

        # Assign codeword bit indices to Hamming positions: data bits take
        # the non-power-of-two positions in increasing order, check bit j
        # takes position 2**j.
        position_of_data = []
        position = 1
        while len(position_of_data) < k:
            if position & (position - 1):  # not a power of two
                position_of_data.append(position)
            position += 1
        if position_of_data[-1] > n_positions:
            raise EMTError("Hamming construction overflow")  # pragma: no cover

        # encode mask for check bit j: data bits whose position has bit j.
        self._encode_masks = np.zeros(r, dtype=np.int64)
        for j in range(r):
            mask = 0
            for data_index, pos in enumerate(position_of_data):
                if (pos >> j) & 1:
                    mask |= 1 << data_index
            self._encode_masks[j] = mask

        # syndrome mask for bit j: codeword bit indices whose Hamming
        # position has bit j set (check bit 2**j participates in its own
        # syndrome bit).
        self._syndrome_masks = np.zeros(r, dtype=np.int64)
        for j in range(r):
            mask = 0
            for data_index, pos in enumerate(position_of_data):
                if (pos >> j) & 1:
                    mask |= 1 << data_index
            for check_index in range(r):
                if ((1 << check_index) >> j) & 1:
                    mask |= 1 << (k + check_index)
            self._syndrome_masks[j] = mask

        # Map a non-zero syndrome (Hamming position) back to the codeword
        # bit index; -1 marks positions outside the code (aliased
        # multi-error syndromes that must be treated as uncorrectable).
        pos_to_index = np.full(1 << r, -1, dtype=np.int64)
        for data_index, pos in enumerate(position_of_data):
            pos_to_index[pos] = data_index
        for check_index in range(r):
            pos_to_index[1 << check_index] = k + check_index
        self._pos_to_index = pos_to_index

        # Byte-folded lookup tables for the vectorised paths.  Parity is
        # linear over GF(2) — ``parity(a ^ b) == parity(a) ^ parity(b)``
        # — so the syndrome and overall-parity contributions of each
        # 8-bit chunk of a word fold independently and XOR together.
        # One gather + XOR per chunk replaces the per-check-bit
        # mask/popcount loop (bit-identical; the scalar reference paths
        # still run the direct parity-tree transcription and the test
        # suite pins the two together).
        # The encode fold's parity bit must cover the *codeword*: the
        # data chunk's own parity XOR the parity of the check bits that
        # chunk induces (parity distributes over XOR, so per-chunk
        # contributions compose).  The syndrome fold's parity bit covers
        # the received word alone.
        self._encode_luts = self._build_chunk_luts(
            n_bits=k, masks=self._encode_masks, fold_mask_parity=True
        )
        self._syndrome_luts = self._build_chunk_luts(
            n_bits=self.stored_bits,
            masks=self._syndrome_masks,
            fold_mask_parity=False,
        )

    def _build_chunk_luts(
        self, n_bits: int, masks: np.ndarray, fold_mask_parity: bool
    ) -> list[tuple[int, np.ndarray]]:
        """Per-byte-chunk tables of packed ``[parity | bits]`` words.

        Chunk table ``c`` maps a byte value ``v`` (bits ``[8c, 8c+8)``
        of the word) to ``r`` packed parity bits — bit ``j`` is the
        parity of the chunk against ``masks[j]`` — plus an overall
        parity contribution in bit ``r``: the chunk's own parity,
        additionally folded with the parity of its induced mask bits
        when ``fold_mask_parity`` is set.
        """
        r = masks.shape[0]
        luts: list[tuple[int, np.ndarray]] = []
        values = np.arange(256, dtype=np.int64)
        for shift in range(0, n_bits, 8):
            chunk_words = values << np.int64(shift)
            packed = np.zeros(256, dtype=np.int64)
            for j in range(r):
                bits = parity(np.bitwise_and(chunk_words, masks[j]))
                packed |= bits << np.int64(j)
            own = parity(chunk_words)
            if fold_mask_parity:
                own = np.bitwise_xor(own, parity(packed))
            packed |= own << np.int64(r)
            luts.append((shift, packed))
        return luts

    @staticmethod
    def _fold_chunks(
        words: np.ndarray, luts: list[tuple[int, np.ndarray]]
    ) -> np.ndarray:
        """XOR-fold the per-chunk packed parities of each word."""
        # Chunk 0 needs no shift: index the table with the low byte.
        packed = luts[0][1][np.bitwise_and(words, 0xFF)]
        for shift, lut in luts[1:]:
            packed = np.bitwise_xor(
                packed, lut[np.bitwise_and(words >> np.int64(shift), 0xFF)]
            )
        return packed

    # -- vectorised paths -------------------------------------------------

    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, None]:
        """Append Hamming check bits and the overall parity bit.

        One byte-LUT gather per data chunk folds all check bits and the
        overall parity at once (see :meth:`_build_chunk_luts`);
        bit-identical to the per-check-bit parity tree the scalar
        reference path still computes.
        """
        data = self._check_payload(payload, checked)
        packed = self._fold_chunks(data, self._encode_luts)
        check = np.bitwise_and(packed, bit_mask(self.check_bits))
        overall = packed >> np.int64(self.check_bits)
        codeword = np.bitwise_or(
            data,
            np.bitwise_or(
                check << np.int64(self.data_bits),
                overall << np.int64(self.stored_bits - 1),
            ),
        )
        return codeword, None

    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        """Syndrome decode with SEC/DED semantics (see module docstring)."""
        codeword = self._check_stored(stored, checked)

        packed = self._fold_chunks(codeword, self._syndrome_luts)
        syndrome = np.bitwise_and(packed, bit_mask(self.check_bits))
        overall_odd = (packed >> np.int64(self.check_bits)) == 1

        error_index = self._pos_to_index[syndrome]
        single_error = (syndrome != 0) & overall_odd & (error_index >= 0)

        # Flip the erroneous bit only where a correctable single error was
        # diagnosed; clip the index so the shift is always valid.
        flip = np.where(
            single_error,
            np.int64(1) << np.maximum(error_index, 0),
            np.int64(0),
        )
        corrected = np.bitwise_xor(codeword, flip)

        if stats is not None:
            stats.words += codeword.size
            # An error confined to the overall parity bit leaves the data
            # intact; it still counts as a repaired codeword.
            parity_bit_only = (syndrome == 0) & overall_odd
            stats.corrected += int(
                np.count_nonzero(single_error | parity_bit_only)
            )
            double_error = (syndrome != 0) & ~overall_odd
            aliased = (syndrome != 0) & overall_odd & (error_index < 0)
            stats.detected_uncorrectable += int(
                np.count_nonzero(double_error | aliased)
            )
        return np.bitwise_and(corrected, bit_mask(self.data_bits))

    # -- bit-serial reference ---------------------------------------------

    def encode_word(self, payload: int) -> tuple[int, int]:
        """Scalar reference encoder (direct parity-tree transcription)."""
        if not 0 <= payload <= bit_mask(self.data_bits):
            raise EMTError("payload out of range")
        codeword = payload
        for j in range(self.check_bits):
            masked = payload & int(self._encode_masks[j])
            check = bin(masked).count("1") & 1
            codeword |= check << (self.data_bits + j)
        overall = bin(codeword).count("1") & 1
        codeword |= overall << (self.stored_bits - 1)
        return codeword, 0

    def decode_word(self, stored: int, side: int) -> int:
        """Scalar reference decoder with SEC/DED semantics."""
        if not 0 <= stored <= bit_mask(self.stored_bits):
            raise EMTError("stored word out of range")
        syndrome = 0
        for j in range(self.check_bits):
            masked = stored & int(self._syndrome_masks[j])
            syndrome |= (bin(masked).count("1") & 1) << j
        overall_odd = bin(stored).count("1") & 1 == 1
        if syndrome != 0 and overall_odd:
            index = int(self._pos_to_index[syndrome])
            if index >= 0:
                stored ^= 1 << index
        return stored & bit_mask(self.data_bits)
