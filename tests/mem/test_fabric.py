"""Tests for the application-facing memory fabric."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emt import DreamEMT, NoProtection, SecDedEMT
from repro.errors import MemoryModelError
from repro.mem import (
    MemoryFabric,
    MemoryGeometry,
    position_fault_map,
    sample_fault_map,
)

SMALL = MemoryGeometry(n_words=512, word_bits=16, n_banks=4)


class TestAllocation:
    def test_allocate_is_idempotent_by_name(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        a = fabric.allocate("buf", 100)
        b = fabric.allocate("buf", 50)
        assert a == b
        assert fabric.words_allocated == 100

    def test_allocate_cannot_grow(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        fabric.allocate("buf", 10)
        with pytest.raises(MemoryModelError):
            fabric.allocate("buf", 20)

    def test_out_of_memory(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        with pytest.raises(MemoryModelError):
            fabric.allocate("huge", SMALL.n_words + 1)

    def test_buffer_lookup(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        fabric.allocate("x", 4)
        assert fabric.buffer("x").length == 4
        with pytest.raises(MemoryModelError):
            fabric.buffer("y")

    def test_rejects_non_positive_size(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        with pytest.raises(MemoryModelError):
            fabric.allocate("x", 0)

    def test_buffers_occupy_disjoint_regions(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        a = fabric.allocate("a", 10)
        b = fabric.allocate("b", 10)
        assert a.base + a.length <= b.base


class TestRoundtrip:
    @given(
        values=st.lists(
            st.integers(min_value=-32768, max_value=32767),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=50)
    def test_clean_roundtrip_exact_all_emts(self, values):
        for emt in (NoProtection(), DreamEMT(), SecDedEMT()):
            fabric = MemoryFabric(emt, geometry=SMALL)
            out = fabric.roundtrip("buf", np.array(values))
            assert out.tolist() == values

    def test_rejects_2d_values(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        handle = fabric.allocate("x", 4)
        with pytest.raises(MemoryModelError):
            fabric.write(handle, np.zeros((2, 2), dtype=np.int64))

    def test_write_overflow(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        handle = fabric.allocate("x", 4)
        with pytest.raises(MemoryModelError):
            fabric.write(handle, np.zeros(5, dtype=np.int64))

    def test_read_range_checks(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        handle = fabric.allocate("x", 4)
        fabric.write(handle, np.zeros(4, dtype=np.int64))
        with pytest.raises(MemoryModelError):
            fabric.read(handle, 5)
        with pytest.raises(MemoryModelError):
            fabric.read(handle, 0)


class TestFaultExposure:
    def test_msb_stuck_corrupts_unprotected(self):
        fm = position_fault_map(SMALL.n_words, 16, 15, 1)
        fabric = MemoryFabric(NoProtection(), fault_map=fm, geometry=SMALL)
        out = fabric.roundtrip("x", np.array([0, 100]))
        assert out.tolist() == [-32768, 100 - 32768]

    def test_dream_shields_msb_stuck(self):
        fm = position_fault_map(SMALL.n_words, 16, 15, 1)
        fabric = MemoryFabric(DreamEMT(), fault_map=fm, geometry=SMALL)
        out = fabric.roundtrip("x", np.array([0, 100, -5]))
        assert out.tolist() == [0, 100, -5]

    def test_secded_fault_map_covers_check_bits(self, rng):
        emt = SecDedEMT()
        fm = sample_fault_map(SMALL.n_words, emt.stored_bits, 0.0, rng)
        fabric = MemoryFabric(emt, fault_map=fm, geometry=SMALL)
        assert fabric.sram.geometry.word_bits == 22

    def test_width_mismatch_rejected(self, rng):
        fm = sample_fault_map(SMALL.n_words, 16, 0.01, rng)
        with pytest.raises(MemoryModelError):
            MemoryFabric(SecDedEMT(), fault_map=fm, geometry=SMALL)

    def test_lsb_stuck_bounded_error_everywhere(self, rng):
        fm = position_fault_map(SMALL.n_words, 16, 0, 1)
        for emt in (NoProtection(), DreamEMT()):
            fabric = MemoryFabric(emt, fault_map=fm, geometry=SMALL)
            values = rng.integers(-1000, 1000, size=32)
            out = fabric.roundtrip("x", values)
            assert np.all(np.abs(out - values) <= 1)


class TestStats:
    def test_access_counters(self):
        fabric = MemoryFabric(DreamEMT(), geometry=SMALL)
        fabric.roundtrip("x", np.arange(10))
        assert fabric.stats.data_writes == 10
        assert fabric.stats.data_reads == 10
        assert fabric.stats.side_writes == 10
        assert fabric.stats.side_reads == 10
        assert fabric.stats.decode.words == 10

    def test_no_side_traffic_without_side_bits(self):
        fabric = MemoryFabric(SecDedEMT(), geometry=SMALL)
        fabric.roundtrip("x", np.arange(10))
        assert fabric.stats.side_writes == 0
        assert fabric.stats.side_reads == 0

    def test_trace_recording(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL, record_trace=True)
        fabric.roundtrip("x", np.arange(8))
        assert fabric.trace is not None
        assert len(fabric.trace) == 2  # one write event, one read event
        write, read = fabric.trace
        assert write.is_write and not read.is_write
        assert write.length == read.length == 8
        assert write.buffer == "x"

    def test_trace_disabled_by_default(self):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        assert fabric.trace is None


class TestScrambling:
    def test_scrambled_fabric_roundtrips_exactly_when_clean(self, rng):
        from repro.mem import AddressMap

        amap = AddressMap(SMALL, rng=rng)
        fabric = MemoryFabric(
            NoProtection(), geometry=SMALL, address_map=amap
        )
        values = rng.integers(-32768, 32767, size=SMALL.n_words)
        out = fabric.roundtrip("all", values)
        assert np.array_equal(out, values)

    def test_scrambling_relocates_fault_impact(self):
        from repro.mem import AddressMap

        fm = position_fault_map(SMALL.n_words, 16, 15, 1)
        # With every word faulty, scrambling cannot help; use a single
        # stuck word instead.
        set_mask = np.zeros(SMALL.n_words, dtype=np.int64)
        set_mask[7] = 0x8000
        from repro.mem import FaultMap

        fm = FaultMap(word_bits=16, set_mask=set_mask,
                      clear_mask=np.zeros(SMALL.n_words, dtype=np.int64))
        hits = set()
        for seed in range(5):
            amap = AddressMap(SMALL, rng=np.random.default_rng(seed))
            fabric = MemoryFabric(
                NoProtection(), fault_map=fm, geometry=SMALL,
                address_map=amap,
            )
            out = fabric.roundtrip("all", np.zeros(SMALL.n_words, dtype=np.int64))
            hits.add(int(np.flatnonzero(out != 0)[0]))
        assert len(hits) > 1  # different runs hit different logical words
