"""Command-line interface: one declarative entry point, plus legacy shims.

The primary workflow runs declarative experiment files (TOML or JSON;
see :mod:`repro.api` and ``docs/api.md``)::

    python -m repro run examples/experiments/sweep_quick.toml
    python -m repro validate examples/experiments/*.toml
    python -m repro describe examples/experiments/cohort_pilot.toml

``run`` executes any workload kind — paper figures, Monte-Carlo sweeps,
adaptive-runtime missions, population cohorts — through the
:class:`repro.api.Session` facade: the experiment plans into campaign
grids, points fan out across the chosen execution backend, results land
in content-hash-keyed stores (re-running resumes), and the same report
tables the historical subcommands printed are rendered from the result
handle.  ``validate`` checks a file without running it; ``describe``
prints the execution plan (campaigns, grid sizes, store targets).

The historical subcommands remain as thin shims that construct the
equivalent experiment and hand it to the same session (each emits a
deprecation note on stderr)::

    python -m repro fig2 --apps dwt,morphology
    python -m repro fig4 --runs 25 --apps dwt --workers 4
    python -m repro energy
    python -m repro tradeoff --tolerance 5
    python -m repro sweep --apps dwt --workers 4
    python -m repro mission --scenario active_day
    python -m repro cohort --size 500 --workers 4

Utility subcommands (not experiments): ``overheads``, ``record``,
``lifetime``, ``cache``, ``report`` (render a run's trace), ``runs``,
``watch``, ``profile`` (merge a run's sampling-profile shards) and
``bench trend`` (benchmark-history drift); see
``docs/observability.md``.

The experiment service (``docs/service.md``) runs experiments as
asynchronous jobs: ``serve`` starts the daemon, ``submit`` enqueues an
experiment file and prints its job id, ``jobs`` lists the durable job
journal, ``cancel`` withdraws a queued job, and ``fetch`` re-attaches
to a finished job's result stores and prints the ordinary report.

Global options come before the subcommand: ``--seed`` fixes the master
Monte-Carlo seed of every experiment (overriding the file's ``seed``
for ``run``), so any artefact is reproducible from the command line
(``python -m repro --seed 7 fig4 ...``); ``--trace [DIR]`` records a
JSONL trace per run; ``--chaos SPEC`` injects deterministic faults
into supervised execution (see ``docs/robustness.md``); ``-v``/``-q``
adjust stderr diagnostics (stdout carries only tables/JSON, so
pipelines can consume it regardless of verbosity).
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from collections.abc import Sequence
from pathlib import Path

from . import __version__
from .energy.technology import PAPER_VOLTAGE_GRID
from .errors import ReproError, RunInterrupted
from .obs.logcfg import configure as _configure_logging
from .obs.logcfg import get_logger

__all__ = ["main", "build_parser"]

#: The CLI's stderr diagnostics logger (configured per main() call).
_LOG = get_logger("cli")

PAPER_APP_NAMES = (
    "dwt",
    "matrix_filter",
    "compressed_sensing",
    "morphology",
    "delineation",
)


def _csv(raw: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in raw.split(",") if item.strip())


def _csv_floats(raw: str) -> tuple[float, ...]:
    return tuple(float(item) for item in _csv(raw))


def _deprecation_note(command: str) -> None:
    """Point legacy-shim users at the unified experiment API."""
    _LOG.warning(
        "'repro %s' is a legacy shim over the unified experiment API; "
        "prefer 'repro run <experiment.toml|json>' (see docs/api.md)",
        command,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Energy vs. Reliability Trade-offs "
            "Exploration in Biomedical Ultra-Low Power Devices' "
            "(Duch et al., DATE 2016)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="master Monte-Carlo seed (default: the library's fixed seed); "
             "place before the subcommand",
    )
    parser.add_argument(
        "--verbose", "-v", action="count", default=0,
        help="more stderr diagnostics (repeatable; stdout is unaffected)",
    )
    parser.add_argument(
        "--quiet", "-q", action="count", default=0,
        help="fewer stderr diagnostics: suppress progress and notes, "
             "keep errors (repeatable; stdout is unaffected)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="", default=None, metavar="DIR",
        help="record a JSONL trace per run (span tree, metrics) into DIR "
             "(default: benchmarks/results/traces); inspect with "
             "'repro report <run-id>'",
    )
    parser.add_argument(
        "--profile", action="store_true", dest="profile_run",
        help="record a span-attributed sampling profile alongside the "
             "trace (implies --trace when tracing is unconfigured); "
             "inspect with 'repro profile <run-id>'",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="inject deterministic faults into supervised execution "
             "(testing aid): comma-separated clauses kill:P, raise:P, "
             "delay:P:S, enospc:P, interrupt:N, seed:N — e.g. "
             "'kill:0.2,raise:0.2,seed:7'; equivalent to REPRO_CHAOS",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -- the unified experiment API ---------------------------------------

    run = sub.add_parser(
        "run",
        help="run a declarative experiment file (.toml or .json) through "
             "the unified Session facade — the primary entry point",
    )
    run.add_argument("experiment", help="path to an experiment file")
    run.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (overrides the experiment's 'workers')",
    )
    run.add_argument(
        "--backend", default=None,
        help="execution backend (overrides the experiment's 'backend'; "
             "built in: inline, multiprocessing)",
    )
    run.add_argument(
        "--store", default=None,
        help="result-store basename (overrides the experiment's 'store')",
    )
    run.add_argument(
        "--store-dir", default=None,
        help="result-store directory (default: benchmarks/results/campaigns "
             "or $REPRO_CAMPAIGN_DIR)",
    )
    run.add_argument(
        "--fresh", action="store_true",
        help="re-execute every point, superseding stored results",
    )

    validate = sub.add_parser(
        "validate",
        help="parse and plan experiment files without running anything; "
             "exits non-zero if any file is invalid",
    )
    validate.add_argument("paths", nargs="+", help="experiment files")

    describe = sub.add_parser(
        "describe",
        help="print an experiment's execution plan: campaigns, grid "
             "sizes, store targets",
    )
    describe.add_argument("experiment", help="path to an experiment file")
    describe.add_argument(
        "--workers", type=int, default=None,
        help="worker processes assumed by the plan",
    )
    describe.add_argument(
        "--store-dir", default=None,
        help="result-store directory assumed by the plan",
    )

    # -- legacy experiment shims ------------------------------------------

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--records", type=_csv, default=("100", "106"),
        help="comma-separated record names (default: 100,106)",
    )
    common.add_argument(
        "--duration", type=float, default=8.0,
        help="seconds of each record to process (default: 8)",
    )

    def add_workers(sub_parser, default: int) -> None:
        # Not part of `common`: parents share action objects, so a
        # per-subcommand default would leak across all of them.
        sub_parser.add_argument(
            "--workers", type=int, default=default,
            help=f"worker processes for the grid (default: {default})",
        )

    fig2 = sub.add_parser(
        "fig2", parents=[common],
        help="Fig 2: SNR vs bit position of injected stuck-at errors",
    )
    fig2.add_argument(
        "--apps", type=_csv, default=PAPER_APP_NAMES,
        help="comma-separated application names",
    )
    add_workers(fig2, default=1)

    fig4 = sub.add_parser(
        "fig4", parents=[common],
        help="Fig 4a/b/c: SNR vs supply voltage per EMT",
    )
    fig4.add_argument("--apps", type=_csv, default=PAPER_APP_NAMES)
    fig4.add_argument(
        "--runs", type=int, default=12,
        help="Monte-Carlo runs per grid point (paper: 200)",
    )
    fig4.add_argument(
        "--emts", type=_csv, default=("none", "dream", "secded"),
        help="EMT registry names to sweep",
    )
    add_workers(fig4, default=1)

    sub.add_parser("energy", help="Section VI-B energy/area analysis")

    tradeoff = sub.add_parser(
        "tradeoff", parents=[common],
        help="Section VI-C voltage/quality trade-off for one app",
    )
    tradeoff.add_argument("--app", default="dwt")
    tradeoff.add_argument("--runs", type=int, default=12)
    tradeoff.add_argument(
        "--tolerance", type=float, default=1.0,
        help="allowed output degradation in dB (paper: 1)",
    )
    add_workers(tradeoff, default=1)

    sweep = sub.add_parser(
        "sweep", parents=[common],
        help="parallel voltage x EMT x app campaign with resume, "
             "Pareto frontier and VI-C extraction",
    )
    sweep.add_argument(
        "--apps", type=_csv, default=("dwt",),
        help="applications to sweep (default: dwt)",
    )
    sweep.add_argument(
        "--emts", type=_csv, default=("none", "dream", "secded"),
        help="EMT registry names to sweep",
    )
    sweep.add_argument(
        "--voltages", type=_csv_floats, default=PAPER_VOLTAGE_GRID,
        help="comma-separated supply voltages (default: the paper grid)",
    )
    sweep.add_argument(
        "--runs", type=int, default=6,
        help="Monte-Carlo runs per grid point (paper: 200)",
    )
    sweep.add_argument(
        "--tolerance", type=float, default=5.0,
        help="quality tolerance for the operating-point extraction (dB)",
    )
    sweep.add_argument(
        "--name", default="sweep",
        help="campaign name; the result store is <store-dir>/<name>-*.jsonl",
    )
    sweep.add_argument(
        "--store-dir", default=None,
        help="result-store directory (default: benchmarks/results/campaigns "
             "or $REPRO_CAMPAIGN_DIR)",
    )
    sweep.add_argument(
        "--fresh", action="store_true",
        help="re-execute every point, superseding stored results",
    )
    add_workers(sweep, default=2)

    mission = sub.add_parser(
        "mission",
        help="closed-loop adaptive-runtime mission: compare operating-"
             "point policies on one scenario (lifetime, quality, switches)",
    )
    mission.add_argument(
        "--scenario", default="active_day",
        help="scenario registry name (see repro.runtime.scenarios; "
             "default: active_day)",
    )
    mission.add_argument(
        "--policies",
        type=_csv,
        default=("static-ladder", "quality", "soc", "hysteresis"),
        help="comma-separated policy tokens: registry names "
             "('quality', 'soc', 'hysteresis'), 'static:EMT@V' for one "
             "pinned rung, or 'static-ladder' for one static policy per "
             "lattice rung (default: static-ladder plus every adaptive "
             "policy)",
    )
    mission.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="scale every segment duration AND the battery capacity "
             "(e.g. 0.1 for a quick look; reported lifetimes shrink by "
             "the same factor, policy orderings are preserved)",
    )
    mission.add_argument(
        "--window", type=float, default=None,
        help="override the scenario's processing window (seconds)",
    )
    mission.add_argument(
        "--probe-runs", type=int, default=3,
        help="fault-injection probes per calibrated quality model",
    )
    mission.add_argument(
        "--probe-duration", type=float, default=4.0,
        help="seconds of segment signal per calibration probe",
    )

    cohort = sub.add_parser(
        "cohort",
        help="population fleet simulation: survival curves, quality "
             "bands and tail-statistic Pareto frontier per policy",
    )
    cohort.add_argument(
        "--size", type=int, default=200,
        help="number of synthetic patients (default: 200)",
    )
    cohort.add_argument(
        "--policies", type=_csv, default=("static", "soc", "hysteresis"),
        help="comma-separated policy tokens (registry names or "
             "'static:EMT@V'; default: static,soc,hysteresis)",
    )
    cohort.add_argument(
        "--scenarios", default="active_day:0.7,overnight:0.3",
        help="scenario mix as name:weight pairs "
             "(default: active_day:0.7,overnight:0.3)",
    )
    cohort.add_argument(
        "--pathology", default=None,
        help="record mix as name:weight pairs (default: the "
             "PatientModel mix; e.g. '100:0.6,119:0.4' for a PVC-heavy "
             "ward)",
    )
    cohort.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="scale each patient's timeline AND battery (e.g. 0.02 for "
             "a quick look; policy orderings are preserved)",
    )
    cohort.add_argument(
        "--name", default="cohort",
        help="cohort name (labels the fleet; default: cohort)",
    )
    cohort.add_argument(
        "--probe-runs", type=int, default=3,
        help="fault-injection probes per calibrated quality model",
    )
    cohort.add_argument(
        "--probe-duration", type=float, default=4.0,
        help="seconds of segment signal per calibration probe",
    )
    add_workers(cohort, default=2)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the shared calibration cache "
             "(REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--info", action="store_true",
        help="print cache diagnostics (the default action)",
    )
    cache.add_argument(
        "--clear", action="store_true",
        help="delete every cached calibration entry",
    )

    report = sub.add_parser(
        "report",
        help="render a recorded run trace: wall-time span tree, worker "
             "utilization, cache hit rates, slowest spans — or diff two "
             "runs with --diff",
    )
    report.add_argument(
        "targets", nargs="+", metavar="target",
        help="a run id (resolved in the trace directory), 'latest', a "
             "trace .jsonl path, or a BENCH .json artefact; --diff "
             "takes exactly two",
    )
    report.add_argument(
        "--diff", action="store_true",
        help="compare two runs: per-span-path wall-time deltas and "
             "per-metric deltas, regressions highlighted",
    )
    report.add_argument(
        "--alerts", default=None, metavar="RULES.toml",
        help="evaluate TOML alert rules against the trace; any breach "
             "exits non-zero (with --diff, rules run against the "
             "second run)",
    )
    report.add_argument(
        "--top", type=int, default=10,
        help="slowest spans / biggest diff movers / hot functions to "
             "list per section (default: 10)",
    )
    report.add_argument(
        "--profile", action="store_true",
        help="append the run's sampling profile: top-N hot functions "
             "folded per span path (needs shards recorded with "
             "--profile/REPRO_PROFILE)",
    )
    report.add_argument(
        "--trace-dir", default=None,
        help="directory run ids resolve in (default: --trace/"
             "REPRO_TRACE_DIR, falling back to benchmarks/results/traces)",
    )

    runs = sub.add_parser(
        "runs",
        help="list runs from the trace directory's run registry",
    )
    runs.add_argument(
        "--kind", default=None,
        help="only runs of this experiment kind (figure/sweep/mission/"
             "cohort)",
    )
    runs.add_argument(
        "--status", default=None,
        help="only runs in this state (running/ok/failed/interrupted/"
             "stale — 'stale' means registered as running but the owner "
             "process is dead)",
    )
    runs.add_argument(
        "--name", default=None,
        help="only runs whose experiment name contains this substring",
    )
    runs.add_argument(
        "--limit", type=int, default=None,
        help="show at most this many runs (newest first)",
    )
    runs.add_argument(
        "--latest", action="store_true",
        help="print only the newest matching run id (for scripting, "
             "e.g. repro watch \"$(repro runs --latest)\")",
    )
    runs.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the matching registry records as a JSON array "
             "instead of a table",
    )
    runs.add_argument(
        "--prune-stale", action="store_true",
        help="finalize stale runs (owner process dead, never finalized) "
             "as 'interrupted' so they stop rendering as running",
    )
    runs.add_argument(
        "--trace-dir", default=None,
        help="trace directory whose registry to read (default: --trace/"
             "REPRO_TRACE_DIR, falling back to benchmarks/results/traces)",
    )

    watch = sub.add_parser(
        "watch",
        help="live dashboard over a traced run: progress/ETA, "
             "throughput, workers, cache, failures, alerts",
    )
    watch.add_argument(
        "target",
        help="a run id, 'latest' (newest registered run), or a trace "
             ".jsonl path",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (CI / non-interactive mode)",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between refreshes (default: 1.0)",
    )
    watch.add_argument(
        "--alerts", default=None, metavar="RULES.toml",
        help="re-evaluate TOML alert rules every frame; a breach at "
             "the final frame exits non-zero",
    )
    watch.add_argument(
        "--max-seconds", type=float, default=None,
        help="stop watching after this much wall time even if the run "
             "is still going",
    )
    watch.add_argument(
        "--trace-dir", default=None,
        help="directory run ids resolve in (default: --trace/"
             "REPRO_TRACE_DIR, falling back to benchmarks/results/traces)",
    )

    # -- the experiment service -------------------------------------------

    serve = sub.add_parser(
        "serve",
        help="run the experiment-service daemon: accept submissions "
             "over a unix socket, drain the durable job queue through "
             "a supervised worker fleet (see docs/service.md)",
    )
    serve.add_argument(
        "--root", default=None,
        help="service root directory: job journal, socket, discovery "
             "file (default: benchmarks/results/service or "
             "$REPRO_SERVICE_DIR)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="fleet size — jobs executing concurrently (default: 2)",
    )
    serve.add_argument(
        "--shards", type=int, default=4,
        help="shard count for result stores created by service jobs "
             "(default: 4; 1 keeps stores unsharded)",
    )
    serve.add_argument(
        "--store-dir", default=None,
        help="result-store directory jobs write into (default: "
             "benchmarks/results/campaigns or $REPRO_CAMPAIGN_DIR)",
    )
    serve.add_argument(
        "--trace-dir", default=None,
        help="trace/registry directory for job runs (default: --trace/"
             "REPRO_TRACE_DIR, falling back to benchmarks/results/traces)",
    )
    serve.add_argument(
        "--stop", action="store_true",
        help="ask the daemon at --root to drain in-flight jobs and "
             "exit, instead of starting one",
    )

    submit = sub.add_parser(
        "submit",
        help="submit an experiment file to the service daemon; prints "
             "the job id (content-hash keyed: identical resubmissions "
             "are deduplicated)",
    )
    submit.add_argument("experiment", help="path to an experiment file")
    submit.add_argument(
        "--root", default=None,
        help="service root the daemon was started with",
    )
    submit.add_argument(
        "--priority", type=int, default=0,
        help="dispatch priority; higher runs first (default: 0)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal, streaming progress "
             "heartbeats to stderr; exits non-zero if the job failed",
    )
    submit.add_argument(
        "--timeout", type=float, default=None,
        help="give up on --wait after this many seconds",
    )

    jobs = sub.add_parser(
        "jobs",
        help="list service jobs from the journal (reads the journal "
             "directly — works with the daemon down)",
    )
    jobs.add_argument(
        "--root", default=None,
        help="service root whose journal to read",
    )
    jobs.add_argument(
        "--status", default=None,
        help="only jobs in this state (queued/claimed/running/done/"
             "failed/cancelled)",
    )
    jobs.add_argument(
        "--kind", default=None,
        help="only jobs of this kind (experiment/campaign)",
    )
    jobs.add_argument(
        "--limit", type=int, default=None,
        help="show at most this many jobs (newest first)",
    )
    jobs.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the matching job records as a JSON array instead "
             "of a table",
    )

    cancel = sub.add_parser(
        "cancel",
        help="cancel a queued service job (jobs already executing run "
             "to completion)",
    )
    cancel.add_argument("job_id", help="the job id 'repro submit' printed")
    cancel.add_argument(
        "--root", default=None,
        help="service root the daemon was started with",
    )

    fetch = sub.add_parser(
        "fetch",
        help="fetch a finished service job's results from its stores "
             "and print the experiment report (no daemon needed)",
    )
    fetch.add_argument("job_id", help="the job id 'repro submit' printed")
    fetch.add_argument(
        "--root", default=None,
        help="service root the daemon was started with",
    )

    profile = sub.add_parser(
        "profile",
        help="merge a run's sampling-profile shards and print collapsed "
             "stacks (pipe into any flamegraph tool), or write "
             "speedscope JSON with --flamegraph",
    )
    profile.add_argument(
        "target",
        help="a run id (resolved in the trace directory), 'latest', or "
             "a trace .jsonl path whose profile shards to merge",
    )
    profile.add_argument(
        "--flamegraph", default=None, metavar="OUT.json",
        help="write a speedscope-compatible JSON document to OUT.json "
             "(open at https://www.speedscope.app) instead of printing "
             "collapsed stacks",
    )
    profile.add_argument(
        "--trace-dir", default=None,
        help="directory run ids resolve in (default: --trace/"
             "REPRO_TRACE_DIR, falling back to benchmarks/results/traces)",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark-history utilities (trajectories over every "
             "write_bench measurement)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    trend = bench_sub.add_parser(
        "trend",
        help="render per-metric history sparklines and flag drift "
             "beyond a rolling-median band (exits non-zero on drift)",
    )
    trend.add_argument(
        "metric", nargs="?", default=None,
        help="only series of this metric name (default: all)",
    )
    trend.add_argument(
        "--history", default=None, metavar="FILE",
        help="history file to read (default: $REPRO_BENCH_HISTORY or "
             "benchmarks/results/bench_history.jsonl)",
    )
    trend.add_argument(
        "--window", type=int, default=None,
        help="rolling-median window in points (default: 5)",
    )
    trend.add_argument(
        "--band", type=float, default=None,
        help="allowed fractional deviation from the rolling median "
             "(default: 0.25)",
    )

    sub.add_parser("overheads", help="Section V / Formula 2 bit overheads")

    record = sub.add_parser(
        "record", help="synthesise and describe one catalog record"
    )
    record.add_argument("name", help="record name, e.g. 106")
    record.add_argument("--duration", type=float, default=10.0)

    lifetime = sub.add_parser(
        "lifetime",
        help="battery-lifetime estimate for a monitoring node",
    )
    lifetime.add_argument("--voltage", type=float, default=0.65)
    lifetime.add_argument("--emt", default="dream")
    lifetime.add_argument(
        "--capacity-mah", type=float, default=230.0,
        help="battery capacity (default: CR2032-class, 230 mAh)",
    )
    return parser


# --------------------------------------------------------------------------
# Experiment construction (shims -> the unified API)
# --------------------------------------------------------------------------


def _seed_of(args) -> int | None:
    return getattr(args, "seed", None)


def fig2_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro fig2``."""
    from .api.schema import Experiment, Fig2Params

    return Experiment(
        name="fig2",
        kind="figure",
        params=Fig2Params(
            apps=args.apps, records=args.records, duration_s=args.duration
        ),
        seed=_seed_of(args),
        workers=args.workers,
    )


def fig4_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro fig4``."""
    from .api.schema import Experiment, Fig4Params

    return Experiment(
        name="fig4",
        kind="figure",
        params=Fig4Params(
            apps=args.apps,
            emts=args.emts,
            records=args.records,
            duration_s=args.duration,
            runs=args.runs,
        ),
        seed=_seed_of(args),
        workers=args.workers,
    )


def energy_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro energy``."""
    from .api.schema import EnergyParams, Experiment

    return Experiment(
        name="energy", kind="figure", params=EnergyParams(),
        seed=_seed_of(args),
    )


def tradeoff_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro tradeoff``."""
    from .api.schema import Experiment, TradeoffParams

    return Experiment(
        name="tradeoff",
        kind="figure",
        params=TradeoffParams(
            app=args.app,
            records=args.records,
            duration_s=args.duration,
            runs=args.runs,
            tolerance_db=args.tolerance,
        ),
        seed=_seed_of(args),
        workers=args.workers,
    )


def sweep_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro sweep``."""
    from .api.schema import Experiment, SweepParams

    return Experiment(
        name=args.name,
        kind="sweep",
        params=SweepParams(
            apps=args.apps,
            emts=args.emts,
            voltages=args.voltages,
            records=args.records,
            duration_s=args.duration,
            runs=args.runs,
            tolerance_db=args.tolerance,
        ),
        seed=_seed_of(args),
        workers=args.workers,
        store=args.name,
    )


def mission_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro mission``."""
    from .api.schema import Experiment, MissionParams

    return Experiment(
        name=f"mission-{args.scenario}",
        kind="mission",
        params=MissionParams(
            scenario=args.scenario,
            policies=tuple(args.policies),
            duration_scale=args.duration_scale,
            window_s=args.window,
            probe_runs=args.probe_runs,
            probe_duration_s=args.probe_duration,
        ),
        seed=_seed_of(args),
    )


def cohort_experiment(args):
    """The :class:`~repro.api.Experiment` equivalent of ``repro cohort``."""
    from .api.schema import CohortParams, Experiment
    from .api.serde import parse_mix

    return Experiment(
        name=args.name,
        kind="cohort",
        params=CohortParams(
            size=args.size,
            policies=tuple(args.policies),
            scenarios=parse_mix(args.scenarios),
            pathology=parse_mix(args.pathology) if args.pathology else None,
            duration_scale=args.duration_scale,
            probe_runs=args.probe_runs,
            probe_duration_s=args.probe_duration,
        ),
        seed=_seed_of(args),
        workers=args.workers,
    )


# --------------------------------------------------------------------------
# Shared report rendering (repro run and the shims print identically)
# --------------------------------------------------------------------------


def _stderr_progress(done: int, total: int, record: dict) -> None:
    if not _LOG.isEnabledFor(logging.INFO):  # --quiet silences progress
        return
    marker = "." if record.get("status") == "ok" else "!"
    print(f"\r  [{done}/{total}] {marker}", end="", file=sys.stderr)


def _print_point_failures(handle) -> int:
    """Report failed grid points on stderr; returns the failure count."""
    failures = handle.failures()
    for failure in failures:
        where = failure.get("coords", failure.get("params", {}))
        print(f"  failed: {where} -> {failure['error']}", file=sys.stderr)
    return len(failures)


def _print_figure_report(experiment, handle, workers: int) -> int:
    """Render a figure experiment with the historical table formatters."""
    from .api.schema import EnergyParams, Fig2Params, Fig4Params
    from .exp.report import (
        format_energy_analysis,
        format_fig2,
        format_fig4,
        format_paper_example,
        format_tradeoff,
    )

    if _print_point_failures(handle):
        return 1
    params = experiment.params
    if isinstance(params, Fig2Params):
        print(format_fig2(handle.result()))
    elif isinstance(params, Fig4Params):
        result = handle.result()
        for emt_name in params.emts:
            print(format_fig4(result, emt_name))
            print()
    elif isinstance(params, EnergyParams):
        print(format_energy_analysis(handle.result()))
    else:  # tradeoff
        from .exp.tradeoff import paper_example_savings

        print(format_tradeoff(handle.result()))
        print()
        print(format_paper_example(paper_example_savings()))
    return 0


def _print_sweep_report(experiment, handle, workers: int) -> int:
    """Render a sweep exactly as ``repro sweep`` always reported it."""
    from .exp.report import (
        format_frontier,
        format_operating_points,
        format_paper_example,
    )
    from .exp.tradeoff import paper_example_savings

    params = experiment.params
    base = experiment.store or experiment.name
    quality = handle.campaigns("quality")[0].result
    energy = [run.result for run in handle.campaigns("energy")]
    e_points = sum(len(c.records) for c in energy)
    e_executed = sum(c.n_executed for c in energy)
    e_cached = sum(c.n_cached for c in energy)
    e_failed = sum(c.n_failed for c in energy)

    print(f"campaign {experiment.name!r}: voltage x EMT x app grid, "
          f"{workers} workers")
    print(
        f"  {base}-quality: {len(quality.records)} points — "
        f"{quality.n_executed} executed, {quality.n_cached} cached, "
        f"{quality.n_failed} failed"
    )
    print(
        f"  {base}-energy: {e_points} points — {e_executed} executed, "
        f"{e_cached} cached, {e_failed} failed"
    )
    n_failed = _print_point_failures(handle)

    reduced = handle.result()
    for app_name in params.apps:
        entry = reduced[app_name]
        print()
        if "error" in entry:
            # A failed point can leave this app unanalysable (e.g. no
            # baseline at nominal supply); report and keep going so the
            # other apps still get their sections.
            print(f"[{app_name}] analysis skipped: {entry['error']}",
                  file=sys.stderr)
            continue
        print(format_frontier(app_name, entry["frontier"]))
        print(format_operating_points(
            app_name, entry["points"], params.tolerance_db
        ))

    print()
    print(format_paper_example(paper_example_savings()))
    if n_failed:
        print(
            f"warning: {n_failed} grid points failed; results above are "
            "partial (failed points are retried on the next run)",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_mission_header(experiment) -> None:
    """The mission context block: timeline and priced ladder."""
    from .api.session import resolved_mission_spec
    from .runtime import MissionSimulator

    params = experiment.params
    spec = resolved_mission_spec(params, experiment.seed)
    simulator = MissionSimulator(
        spec,
        n_probe=params.probe_runs,
        probe_duration_s=params.probe_duration_s,
    )
    hours = spec.total_duration_s / 3600.0
    print(
        f"scenario {spec.name!r}: {hours:.1f} h, {spec.n_windows} windows "
        f"of {spec.window_s:g} s, app {spec.app!r}, "
        f"{spec.battery.capacity_mah:g} mAh cell"
    )
    print("timeline: " + ", ".join(
        f"{seg.name} {seg.duration_s / 3600.0:.1f}h"
        + (f" (stress {seg.stress:g})" if seg.stress else "")
        for seg in spec.segments
    ))
    print("ladder:   " + ", ".join(
        f"{p.label} {p.energy_per_window_pj / 1e6:.1f} uJ/window"
        for p in simulator.ladder
    ))
    print()


def _print_mission_report(experiment, handle, workers: int) -> int:
    """Render the per-policy mission comparison table."""
    from .api.session import resolved_mission_spec
    from .exp.report import format_mission

    spec = resolved_mission_spec(experiment.params, experiment.seed)
    n_failed = _print_point_failures(handle)
    results = handle.result()
    if results:
        print(format_mission(spec.name, results))
    return 1 if n_failed else 0


def _print_cohort_header(experiment, workers: int) -> None:
    """The cohort context block: fleet size, mixes, scale, workers."""
    from .api.serde import format_mix

    params = experiment.params
    print(
        f"cohort {experiment.name!r}: {params.size} patients, scenarios "
        f"{format_mix(params.scenarios)}, duration scale "
        f"{params.duration_scale:g}, {workers} workers"
    )


def _print_cohort_report(experiment, handle, workers: int) -> int:
    """Render the population tables: fleet, survival, tail frontier.

    Failed *patients* degrade gracefully (the statistics cover the
    survivors, each failure is reported, exit is non-zero) — the
    historical ``repro cohort`` contract; failed *points* (a whole
    policy's fleet) are reported alongside.
    """
    from .api.serde import policy_label
    from .exp.report import format_fleet, format_survival

    reduced = handle.result()
    summaries = list(reduced["summaries"])
    point_failures = handle.failures()
    for failure in point_failures:
        # Failed policy points still get a row in the fleet table (the
        # formatter renders them as "(? failed)").
        summaries.append(
            {"policy": policy_label(failure.get("coords", {}).get("policy"))}
        )
    print()
    print(format_fleet(experiment.name, summaries))
    for policy_name, curve in reduced["survival"].items():
        if curve:
            print()
            print(format_survival(policy_name, curve))
    if reduced["frontier"]:
        print()
        print("population Pareto frontier "
              "(p5 lifetime vs p10 worst-window quality):")
        for s in reduced["frontier"]:
            print(
                f"  {s['policy']:>24s}  p5 {s['lifetime_p5_days']:6.2f} d  "
                f"p10 {s['quality_p10_db']:6.1f} dB"
            )
    n_failed_patients = 0
    for summary in reduced["summaries"]:
        for failure in summary.get("failures", []):
            n_failed_patients += 1
            print(
                f"  failed: patient {failure['patient']} -> "
                f"{failure['error']}",
                file=sys.stderr,
            )
    if n_failed_patients:
        print(
            f"warning: {n_failed_patients} patients failed; population "
            "statistics above exclude them",
            file=sys.stderr,
        )
    if point_failures:
        for failure in point_failures:
            print(f"  failed: {failure['error']}", file=sys.stderr)
        print(
            f"warning: {len(point_failures)} fleet points failed; "
            "population statistics above exclude them",
            file=sys.stderr,
        )
    return 1 if (n_failed_patients or point_failures) else 0


_REPORTERS = {
    "figure": _print_figure_report,
    "sweep": _print_sweep_report,
    "mission": _print_mission_report,
    "cohort": _print_cohort_report,
}


def _execute_and_report(experiment, session) -> int:
    """Run one experiment through a session and print its report."""
    _backend, workers = session.resolve_backend(experiment)
    if experiment.kind == "mission":
        _print_mission_header(experiment)
    elif experiment.kind == "cohort":
        _print_cohort_header(experiment, workers)
    handle = session.run(experiment)
    if session.progress is not None and _LOG.isEnabledFor(logging.INFO):
        print(file=sys.stderr)
    telemetry = handle.telemetry()
    if telemetry["enabled"]:
        _LOG.info(
            "trace recorded: %s (inspect with 'repro report %s')",
            telemetry["trace_path"], telemetry["run_id"],
        )
    return _REPORTERS[experiment.kind](experiment, handle, workers)


# --------------------------------------------------------------------------
# Unified-API subcommands
# --------------------------------------------------------------------------


def _cmd_run(args) -> int:
    from dataclasses import replace

    from .api.schema import load_experiment
    from .api.session import Session

    experiment = load_experiment(args.experiment)
    if args.seed is not None:
        experiment = experiment.with_seed(args.seed)
    if args.store is not None:
        experiment = replace(experiment, store=args.store)
    session = Session(
        backend=args.backend,
        workers=args.workers,
        store_dir=args.store_dir,
        fresh=args.fresh,
        progress=_stderr_progress,
    )
    return _execute_and_report(experiment, session)


def _cmd_validate(args) -> int:
    from .api.schema import load_experiment
    from .api.session import Session

    session = Session()
    failed = 0
    for path in args.paths:
        try:
            experiment = load_experiment(path)
            # validate() also checks what plan() alone would miss
            # (e.g. an unknown execution backend).
            session.validate(experiment)
            campaigns = session.plan(experiment)
            n_points = sum(len(c.spec.expand()) for c in campaigns)
        except ReproError as error:
            failed += 1
            print(f"error: {path}: {error}", file=sys.stderr)
            continue
        kind = experiment.kind
        if kind == "figure":
            kind = f"figure/{experiment.params.KIND}"
        print(
            f"{path}: ok — {kind} experiment {experiment.name!r}, "
            f"{len(campaigns)} campaign(s), {n_points} points"
        )
    return 1 if failed else 0


def _cmd_describe(args) -> int:
    from .api.schema import load_experiment
    from .api.session import Session

    session = Session(workers=args.workers, store_dir=args.store_dir)
    experiment = load_experiment(args.experiment)
    if args.seed is not None:
        experiment = experiment.with_seed(args.seed)
    print(session.describe(experiment))
    return 0


# --------------------------------------------------------------------------
# Legacy shims (construct an Experiment, call the Session)
# --------------------------------------------------------------------------


def _shim(args, command: str, experiment, **session_kwargs) -> int:
    from .api.session import Session

    _deprecation_note(command)
    session = Session(workers=getattr(args, "workers", None),
                      **session_kwargs)
    return _execute_and_report(experiment, session)


def _cmd_fig2(args) -> int:
    return _shim(args, "fig2", fig2_experiment(args))


def _cmd_fig4(args) -> int:
    return _shim(args, "fig4", fig4_experiment(args))


def _cmd_energy(args) -> int:
    return _shim(args, "energy", energy_experiment(args))


def _cmd_tradeoff(args) -> int:
    return _shim(args, "tradeoff", tradeoff_experiment(args))


def _cmd_sweep(args) -> int:
    return _shim(
        args, "sweep", sweep_experiment(args),
        store_dir=args.store_dir, fresh=args.fresh,
        progress=_stderr_progress,
    )


def _cmd_mission(args) -> int:
    return _shim(args, "mission", mission_experiment(args))


def _cmd_cohort(args) -> int:
    return _shim(
        args, "cohort", cohort_experiment(args), progress=_stderr_progress
    )


# --------------------------------------------------------------------------
# Utility subcommands (not experiments)
# --------------------------------------------------------------------------


def _cmd_cache(args) -> int:
    from .cache import event_stats, shared_cache

    cache = shared_cache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached calibrations from {cache.root}")
        return 0
    info = cache.info()
    print(f"calibration cache at {info['root']}")
    print(f"  persistent: {info['persistent']}")
    print(f"  entries:    {info['entries']}")
    print(f"  size:       {info['size_bytes']} bytes")
    stats = info["process"]
    print(
        f"  this process: {stats['memory_hits']} memory hits, "
        f"{stats['disk_hits']} disk hits, {stats['computed']} computed"
    )
    events = event_stats(cache.root)
    if events["computed"] or events["disk_hits"] or events["clears"]:
        # Fleet-wide history from the cache's event log — covers every
        # process that ever touched this cache root, unlike the
        # process-local counters above.
        print(
            f"  all processes: {events['computed']} computed "
            f"({events['unique_entries']} unique, "
            f"{events['recomputed']} recomputed after eviction), "
            f"{events['disk_hits']} disk hits, {events['clears']} clears"
        )
        print(f"  disk hit rate: {events['hit_rate']:.1%}")
    return 0


def _resolved_trace_dir(args) -> Path:
    """The trace directory a command's run ids/registry resolve in."""
    from .obs import configured_dir, default_trace_dir

    return (
        Path(args.trace_dir)
        if args.trace_dir is not None
        else (configured_dir() or default_trace_dir())
    )


def _resolve_run_target(target: str, trace_dir: Path):
    """Turn a run id / ``latest`` / path into ``(run_id, trace path)``.

    ``latest`` resolves through the registry; a known run id prefers
    the registry's recorded trace path; anything else falls back to
    :func:`repro.obs.resolve_trace` (direct paths, ``<dir>/<id>.jsonl``).
    """
    from .errors import ObsError
    from .obs import RunRegistry, resolve_trace

    registry = RunRegistry(trace_dir)
    if target == "latest":
        record = registry.latest()
        if record is None:
            raise ObsError(
                f"no runs registered in {trace_dir} — run a traced "
                "experiment first (repro --trace ...)"
            )
        target = record.run_id
    else:
        record = registry.get(target)
    if record is not None:
        # A registered run's sink may not exist yet (nothing flushed);
        # return the expected path anyway — the watch tail waits for it.
        if record.trace_path:
            recorded = Path(record.trace_path)
            if recorded.is_file():
                return record.run_id, recorded
        return record.run_id, trace_dir / f"{record.run_id}.jsonl"
    return target, resolve_trace(target, trace_dir)


def _cmd_report(args) -> int:
    from .errors import ObsError
    from .obs import (
        breached,
        diff_events,
        evaluate_rules,
        load_events,
        load_rules,
        render_diff,
        render_outcomes,
        render_report,
    )

    trace_dir = _resolved_trace_dir(args)
    rules = load_rules(args.alerts) if args.alerts else None

    if args.diff:
        if args.profile:
            raise ObsError("--profile cannot be combined with --diff")
        if len(args.targets) != 2:
            raise ObsError(
                "--diff compares exactly two runs "
                f"(got {len(args.targets)} target(s))"
            )
        sides = []
        for target in args.targets:
            _run_id, path = _resolve_run_target(target, trace_dir)
            sides.append(load_events(path))
        print(render_diff(diff_events(*sides), top=args.top))
        exit_code = 0
        if rules is not None:
            outcomes = evaluate_rules(rules, sides[1])
            print()
            print(render_outcomes(outcomes))
            exit_code = 1 if breached(outcomes) else 0
        return exit_code

    exit_code = 0
    for index, target in enumerate(args.targets):
        _run_id, path = _resolve_run_target(target, trace_dir)
        events = load_events(path)
        profile = None
        if args.profile:
            from .obs import load_profile

            profile = load_profile(path)
        if index:
            print()
        # A per-run trace sink with no closed spans yet is a run in
        # progress (exit 0: nothing is wrong); an entirely empty trace
        # is an error (exit 1).  BENCH .json artefacts are closed by
        # construction and never "in progress".
        print(
            render_report(
                events,
                top=args.top,
                live_source=path.suffix != ".json",
                profile=profile,
            )
        )
        if not events:
            exit_code = max(exit_code, 1)
        if rules is not None:
            outcomes = evaluate_rules(rules, events)
            print()
            print(render_outcomes(outcomes))
            if breached(outcomes):
                exit_code = max(exit_code, 1)
    return exit_code


def _cmd_runs(args) -> int:
    import datetime

    from .errors import ObsError
    from .obs import RunRegistry

    trace_dir = _resolved_trace_dir(args)
    registry = RunRegistry(trace_dir)
    if args.prune_stale:
        pruned = registry.prune_stale()
        for record in pruned:
            print(f"pruned stale run {record.run_id} -> interrupted "
                  f"({record.error})")
        if not pruned:
            print(f"no stale runs in {trace_dir}")
        return 0
    records = registry.runs(
        kind=args.kind, status=args.status, name=args.name,
        limit=args.limit,
    )
    if args.latest:
        if not records:
            raise ObsError(
                f"no matching runs registered in {trace_dir}"
            )
        print(records[0].run_id)
        return 0
    if args.as_json:
        import json as _json

        # Machine-readable registry dump: the effective status (with
        # owner-pid staleness applied) rides along so scripts need no
        # liveness logic of their own.
        payload = [
            {**record.to_dict(), "effective_status":
             record.effective_status()}
            for record in records
        ]
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not records:
        print(
            f"No runs registered in {trace_dir} — run a traced "
            "experiment first (repro --trace ...)"
        )
        return 0
    print(f"Runs in {trace_dir} ({len(records)} shown, newest first):")
    print(
        f"  {'RUN ID':<36} {'KIND':<8} {'STATUS':<11} "
        f"{'STARTED':<19} {'WALL':>9} {'POINTS':>7} "
        f"{'CPU':>8} {'PEAK RSS':>9}"
    )
    for record in records:
        started = (
            datetime.datetime.fromtimestamp(record.started_at)
            .strftime("%Y-%m-%d %H:%M:%S")
            if record.started_at
            else "-"
        )
        wall = (
            f"{record.wall_s:.1f} s" if record.wall_s is not None else "-"
        )
        points = record.metrics.get("n_points")
        failed = record.metrics.get("n_failed") or 0
        shown = "-" if points is None else str(points)
        if failed:
            shown += f" ({failed}!)"
        # Resource columns stay blank for records written before
        # schema revision 1.5 (they simply lack the fields).
        cpu = f"{record.cpu_s:.1f} s" if record.cpu_s is not None else "-"
        rss = (
            f"{record.peak_rss_bytes / 1048576.0:.0f} MB"
            if record.peak_rss_bytes is not None
            else "-"
        )
        print(
            f"  {record.run_id:<36} {record.kind or '-':<8} "
            f"{record.effective_status():<11} {started:<19} {wall:>9} "
            f"{shown:>7} {cpu:>8} {rss:>9}"
        )
        if record.error:
            print(f"      error: {record.error}")
        elif record.is_stale():
            print(
                f"      stale: owner pid {record.pid} is dead and never "
                "finalized this run (repro runs --prune-stale)"
            )
    return 0


def _cmd_watch(args) -> int:
    from .obs import RunRegistry, load_rules, watch

    trace_dir = _resolved_trace_dir(args)
    run_id, path = _resolve_run_target(args.target, trace_dir)
    rules = load_rules(args.alerts) if args.alerts else None
    registry = RunRegistry(trace_dir)

    def _finished() -> bool:
        record = registry.get(run_id)
        return record is not None and record.status in (
            "ok", "failed", "interrupted"
        )

    def _dead() -> str | None:
        # A run whose registry row says "running" but whose owner pid
        # is gone will never produce another event: tell the user
        # instead of tailing forever.
        record = registry.get(run_id)
        if record is not None and record.is_stale():
            return (
                f"owner pid {record.pid} of run {run_id} is dead and "
                "the run was never finalized"
            )
        return None

    return watch(
        path,
        run_id=run_id,
        once=args.once,
        interval_s=args.interval,
        rules=rules,
        is_finished=_finished,
        is_dead=_dead,
        max_seconds=args.max_seconds,
    )


# --------------------------------------------------------------------------
# Experiment-service subcommands
# --------------------------------------------------------------------------


def _service_root(args) -> Path | None:
    return Path(args.root) if getattr(args, "root", None) else None


def _cmd_serve(args) -> int:
    from .service import ExperimentService, ServiceClient

    if args.stop:
        client = ServiceClient(root=_service_root(args))
        client.shutdown(wait=True)
        print(f"service daemon at {client.root} drained and stopped")
        return 0
    service = ExperimentService(
        root=_service_root(args),
        workers=args.workers,
        store_dir=args.store_dir,
        trace_dir=args.trace_dir,
        shards=args.shards,
    )
    _LOG.info(
        "service daemon starting: root=%s workers=%d shards=%d "
        "store_dir=%s trace_dir=%s (submit with 'repro submit', stop "
        "with 'repro serve --stop' or SIGTERM)",
        service.root, service.workers, service.shards,
        service.store_dir, service.trace_dir,
    )
    return service.serve()


def _cmd_submit(args) -> int:
    from .api.schema import load_experiment
    from .service import ServiceClient

    client = ServiceClient(root=_service_root(args))
    experiment = load_experiment(args.experiment)
    if args.seed is not None:
        experiment = experiment.with_seed(args.seed)
    job, created = client.submit(experiment, priority=args.priority)
    _LOG.info(
        "job %s %s (status %s, priority %d)",
        job.job_id,
        "submitted" if created else "already known — deduplicated",
        job.status, job.priority,
    )
    print(job.job_id)
    if not args.wait:
        return 0
    for event in client.progress_stream(
        job.job_id, timeout_s=args.timeout
    ):
        total = event.get("attrs", {}).get("total")
        if _LOG.isEnabledFor(logging.INFO):
            print(
                f"\r  {job.job_id}: {int(event.get('value', 0))}"
                f"/{int(total) if total else '?'} points",
                end="", file=sys.stderr, flush=True,
            )
    if _LOG.isEnabledFor(logging.INFO):
        print(file=sys.stderr)
    record = client.status(job.job_id)
    _LOG.info("job %s finished: %s", job.job_id, record.status)
    if record.error:
        _LOG.error(str(record.error))
    return 0 if record.status == "done" else 1


def _cmd_jobs(args) -> int:
    import datetime
    import json as _json

    from .service import ServiceClient

    client = ServiceClient(root=_service_root(args))
    records = client.jobs(
        status=args.status, kind=args.kind, limit=args.limit
    )
    if args.as_json:
        print(_json.dumps(
            [record.to_dict() for record in records],
            indent=2, sort_keys=True,
        ))
        return 0
    if not records:
        print(
            f"No service jobs recorded in {client.queue.path} — submit "
            "one with 'repro submit <experiment.toml>'"
        )
        return 0
    print(
        f"Jobs in {client.queue.path} ({len(records)} shown, newest "
        "first):"
    )
    print(
        f"  {'JOB ID':<36} {'KIND':<10} {'STATUS':<10} {'PRI':>4} "
        f"{'SUBMITTED':<19} {'WALL':>9} {'NAME'}"
    )
    for record in records:
        submitted = (
            datetime.datetime.fromtimestamp(record.submitted_at)
            .strftime("%Y-%m-%d %H:%M:%S")
            if record.submitted_at
            else "-"
        )
        wall = (
            f"{record.updated_at - record.submitted_at:.1f} s"
            if record.terminal and record.updated_at
            else "-"
        )
        print(
            f"  {record.job_id:<36} {record.kind:<10} "
            f"{record.status:<10} {record.priority:>4} {submitted:<19} "
            f"{wall:>9} {record.name}"
        )
        if record.error:
            print(f"      error: {record.error}")
    return 0


def _cmd_cancel(args) -> int:
    from .service import ServiceClient

    client = ServiceClient(root=_service_root(args))
    record = client.cancel(args.job_id)
    print(f"job {record.job_id} cancelled")
    return 0


def _cmd_fetch(args) -> int:
    from .api.schema import experiment_from_payload
    from .errors import ServiceError
    from .service import ServiceClient

    client = ServiceClient(root=_service_root(args))
    record = client.status(args.job_id)
    if record.kind != "experiment":
        raise ServiceError(
            f"job {args.job_id} is a {record.kind} job; its records "
            "live in its campaign store"
        )
    handle = client.fetch(args.job_id)
    experiment = experiment_from_payload(record.payload)
    if not handle.records:
        raise ServiceError(
            f"no stored results for job {args.job_id} (status "
            f"{record.status}); experiments without a 'store' field "
            "are not persisted"
        )
    return _REPORTERS[experiment.kind](experiment, handle, 1)


def _cmd_profile(args) -> int:
    import json as _json

    from .obs import load_profile, speedscope_document
    from .obs.profile import collapsed_lines

    trace_dir = _resolved_trace_dir(args)
    _run_id, path = _resolve_run_target(args.target, trace_dir)
    profile = load_profile(path)
    _LOG.info(
        "merged %d shard(s): %d samples at %.1f ms, %d idle-thread "
        "samples skipped",
        len(profile["shards"]), profile["samples"],
        profile["interval_s"] * 1000.0, profile["skipped"],
    )
    if args.flamegraph:
        out = Path(args.flamegraph)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            _json.dumps(speedscope_document(profile), sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        print(f"wrote speedscope profile to {out}")
        return 0
    # Bare collapsed-stack lines on stdout (the summary goes to the
    # stderr logger) so the output pipes straight into flamegraph.pl.
    for line in collapsed_lines(profile):
        print(line)
    return 0


def _cmd_bench(args) -> int:
    from .obs import bench as bench_history

    history = (
        Path(args.history)
        if args.history is not None
        else bench_history.default_history_path()
    )
    events = bench_history.load_history(history)
    kwargs = {}
    if args.window is not None:
        kwargs["window"] = args.window
    if args.band is not None:
        kwargs["band"] = args.band
    text, drifting = bench_history.render_trend(
        events, metric=args.metric, **kwargs
    )
    print(text)
    return 1 if drifting else 0


def _cmd_overheads(args) -> int:
    from .exp.overheads import overhead_table
    from .exp.report import format_overheads

    print(format_overheads(overhead_table()))
    return 0


def _cmd_record(args) -> int:
    from .signals.dataset import load_record

    record = load_record(args.name, duration_s=args.duration)
    labels = "".join(record.labels)
    print(f"record {record.name}: {record.duration_s:.1f} s @ "
          f"{record.fs_hz:.0f} Hz, {len(record.samples)} samples")
    print(f"  beats: {len(record.labels)}  rhythm: {labels}")
    print(f"  sample range: [{int(record.samples.min())}, "
          f"{int(record.samples.max())}]")
    return 0


def _cmd_lifetime(args) -> int:
    from .emt import make_emt
    from .energy.battery import BatteryModel, estimate_lifetime
    from .energy.technology import TECH_32NM_LP
    from .exp.energy_table import measure_workload

    battery = BatteryModel(capacity_mah=args.capacity_mah)
    workload = measure_workload("dwt")
    print(f"{args.capacity_mah:.0f} mAh battery, DWT monitoring workload")
    print(f"{'configuration':>24s} {'power':>10s} {'lifetime':>10s}")
    rows = [("none", TECH_32NM_LP.v_nominal), (args.emt, args.voltage)]
    for emt_name, voltage in rows:
        estimate = estimate_lifetime(
            make_emt(emt_name), voltage, battery, workload=workload
        )
        print(
            f"{emt_name + f' @ {voltage:.2f} V':>24s} "
            f"{estimate.average_power_uw:8.2f}uW "
            f"{estimate.lifetime_days:8.0f} d"
        )
    return 0


_HANDLERS = {
    "run": _cmd_run,
    "validate": _cmd_validate,
    "describe": _cmd_describe,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "energy": _cmd_energy,
    "tradeoff": _cmd_tradeoff,
    "overheads": _cmd_overheads,
    "record": _cmd_record,
    "lifetime": _cmd_lifetime,
    "sweep": _cmd_sweep,
    "mission": _cmd_mission,
    "cohort": _cmd_cohort,
    "cache": _cmd_cache,
    "report": _cmd_report,
    "runs": _cmd_runs,
    "watch": _cmd_watch,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "jobs": _cmd_jobs,
    "cancel": _cmd_cancel,
    "fetch": _cmd_fetch,
    "profile": _cmd_profile,
    "bench": _cmd_bench,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose - args.quiet)
    if args.trace is not None:
        from .obs import default_trace_dir, set_trace_dir

        set_trace_dir(args.trace if args.trace else default_trace_dir())
    if args.profile_run:
        from .obs import configured_dir, default_trace_dir, set_trace_dir
        from .obs.profile import ENV_PROFILE

        os.environ[ENV_PROFILE] = "1"
        # Profile shards live beside the trace sink, so profiling
        # implies tracing; an explicit --trace/REPRO_TRACE_* wins.
        if configured_dir() is None:
            set_trace_dir(default_trace_dir())
    if args.chaos is not None:
        from .resilience import ENV_CHAOS, parse_chaos

        try:
            parse_chaos(args.chaos)  # fail fast on a malformed spec
        except ReproError as error:
            _LOG.error(str(error))
            return 1
        os.environ[ENV_CHAOS] = args.chaos
    try:
        return _HANDLERS[args.command](args)
    except RunInterrupted as error:
        # The session already drained and persisted completed work and
        # finalized the registry row as 'interrupted'; exit like a
        # SIGINT'd process so wrappers treat the run as cancelled.
        _LOG.error("interrupted: %s", error)
        return 130
    except ReproError as error:
        # The CLI formatter renders ERROR records as "error: ..." on
        # stderr; --quiet lowers verbosity but never silences these.
        _LOG.error(str(error))
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
