"""The PR's acceptance gates, pinned as tests.

A campaign and a cohort fleet disturbed by deterministic chaos (worker
kills, transient exceptions) must complete with results *bit-identical*
to an undisturbed run's — recovery must be invisible in the science
output.  An interrupted campaign must leave a loadable store behind and
resume to the same answer.  Seeds are *searched*, not guessed: each
test derives one from the actual work keys so the scenario (some faults
fire, every key converges within the retry budget) holds by
construction.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.cohort import CohortSpec, FleetSimulator, PatientModel
from repro.errors import RunInterrupted
from repro.resilience import chaos_draw

#: Per-site fault probability of the disturbance the tests inject.
P = 0.3
MAX_ATTEMPTS = 3  # the default RetryPolicy budget


def _faults(seed: int, key: str, attempt: int) -> bool:
    return (
        chaos_draw(seed, "kill", key, attempt) < P
        or chaos_draw(seed, "raise", key, attempt) < P
    )


def converging_seed(keys: list[str]) -> int:
    """A seed where >=1 key faults yet every key converges in budget."""
    for seed in range(500):
        some_fault = any(_faults(seed, key, 1) for key in keys)
        all_converge = all(
            not all(
                _faults(seed, key, attempt)
                for attempt in range(1, MAX_ATTEMPTS + 1)
            )
            for key in keys
        )
        if some_fault and all_converge:
            return seed
    raise AssertionError("no seed found — widen the search")


def canon(records: list[dict]) -> list[dict]:
    """Records without wall-clock noise, JSON-normalised (tuples ->
    lists), sorted by hash — the bit-identical comparison form."""
    stripped = [
        {k: v for k, v in record.items() if k != "elapsed_s"}
        for record in records
    ]
    return sorted(
        json.loads(json.dumps(stripped, sort_keys=True)),
        key=lambda record: record["hash"],
    )


def energy_spec() -> CampaignSpec:
    return CampaignSpec(
        name="acceptance-energy",
        kind="energy",
        axes={
            "emt": ("none", "dream", "secded"),
            "voltage": (0.9, 0.65, 0.5),
        },
        fixed={"workload": {
            "n_reads": 20_000, "n_writes": 20_000, "duration_s": 1e-3,
        }},
    )


def small_cohort() -> CohortSpec:
    return CohortSpec(
        name="acceptance-fleet",
        size=6,
        model=PatientModel(
            record_mix=(("100", 0.6), ("119", 0.4)),
            environment_mix=((1.0, 0.7), (1.5, 0.3)),
        ),
        duration_scale=0.01,
        voltages=(0.65, 0.8),
    )


class TestChaosBitIdentical:
    def test_campaign_under_chaos_matches_undisturbed_run(
        self, monkeypatch
    ):
        spec = energy_spec()
        plain = run_campaign(spec, n_workers=1)
        assert plain.n_failed == 0

        keys = [point.content_hash() for point in spec.expand()]
        seed = converging_seed(keys)
        monkeypatch.setenv(
            "REPRO_CHAOS", f"kill:{P},raise:{P},seed:{seed}"
        )
        chaotic = run_campaign(spec, n_workers=2)
        assert chaotic.n_failed == 0
        assert canon(chaotic.records) == canon(plain.records)

    def test_fleet_under_chaos_matches_undisturbed_run(self, monkeypatch):
        simulator = FleetSimulator(
            small_cohort(), n_probe=2, probe_duration_s=2.0
        )
        plain = simulator.run("hysteresis", n_workers=2)
        assert plain.failures() == []

        keys = [f"patient-{i}" for i in range(6)]
        seed = converging_seed(keys)
        monkeypatch.setenv(
            "REPRO_CHAOS", f"kill:{P},raise:{P},seed:{seed}"
        )
        chaotic = simulator.run("hysteresis", n_workers=2)
        assert chaotic.failures() == []
        assert json.loads(json.dumps(chaotic.rows)) == json.loads(
            json.dumps(plain.rows)
        )
        # Population statistics follow (wall-clock fields excluded).
        plain_summary = plain.summary()
        chaotic_summary = chaotic.summary()
        for volatile in ("elapsed_s", "patients_per_s"):
            plain_summary.pop(volatile, None)
            chaotic_summary.pop(volatile, None)
        assert chaotic_summary == plain_summary


class TestInterruptResume:
    def test_interrupted_campaign_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        spec = energy_spec()
        plain = run_campaign(spec, n_workers=1)

        store = ResultStore(tmp_path / "acceptance.jsonl")
        monkeypatch.setenv("REPRO_CHAOS", "interrupt:3")
        with pytest.raises(RunInterrupted, match="injected interrupt"):
            run_campaign(spec, store=store, n_workers=2)

        # Completed work was persisted before the cancellation, and the
        # torn run left a loadable store behind.
        persisted = store.completed_hashes()
        assert len(persisted) >= 3

        monkeypatch.delenv("REPRO_CHAOS")
        resumed = run_campaign(spec, store=store, n_workers=1)
        assert resumed.n_cached >= 3
        assert resumed.n_cached + resumed.n_executed == len(plain.records)
        assert resumed.n_failed == 0
        assert canon(resumed.records) == canon(plain.records)
