"""Point evaluators: map a campaign point's parameters to a result dict.

Each evaluator *kind* scores one family of grid points with a pure
function from JSON-serialisable parameters to a JSON-serialisable result,
so points can be fanned out across worker processes and their results
cached by content hash.  The built-in kinds cover the paper's three
methodologies:

* ``montecarlo`` — the Section V protocol: stuck-at fault maps drawn at
  the technology's BER(V), every EMT of the point sharing each run's
  defect sample (Fig 4's grid);
* ``bit_position`` — Fig 2's deterministic sweep: one bit position of
  every data word stuck at a chosen value, no EMT;
* ``energy`` — the Section VI-B accounting model: workload energy of one
  EMT-protected memory system at one supply voltage;
* ``mission`` — the :mod:`repro.runtime` closed-loop mission simulator:
  one (policy, scenario) pair per point, scoring lifetime and per-window
  quality, so policy x scenario grids sweep through the same parallel
  runner/store/Pareto machinery as the paper's static grids;
* ``cohort`` — the :mod:`repro.cohort` fleet simulator: one (policy,
  cohort) pair per point, scoring *population* statistics (survival
  fraction, lifetime/quality percentiles), so policy x cohort grids run
  through the same machinery and feed
  :func:`repro.cohort.analytics.population_frontier`.

Custom kinds can be added with :func:`register_evaluator`.

Seeding: ``montecarlo`` derives its per-point stream from
``(seed, grid_seed(app, voltage))`` with the same CRC-32 grid seed the
serial Fig 4 driver has always used, so campaign results are bit-identical
to the historical serial sweeps and independent of execution order.
"""

from __future__ import annotations

import zlib
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import asdict, replace
from functools import lru_cache
from typing import Any

import numpy as np

# The model-object serde helpers historically lived here; they moved to
# the shared :mod:`repro.api.serde` layer with the unified experiment
# API and are re-exported below (``__all__``) for compatibility.
from ..api.serde import (
    geometry_from_dict,
    geometry_to_dict,
    technology_from_dict,
    technology_to_dict,
    workload_from_dict,
    workload_to_dict,
)
from ..apps.base import clean_fabric
from ..apps.registry import cached_app, make_app
from ..emt import make_emt
from ..emt.base import NoProtection
from ..energy.accounting import EnergySystemModel, Workload
from ..errors import CampaignError
from ..mem.fabric import MemoryFabric
from ..mem.faults import position_fault_map
from ..signals.dataset import load_record
from ..signals.metrics import SNR_CAP_DB
from ..soc.config import SoCConfig
from .spec import CampaignPoint

__all__ = [
    "EVALUATORS",
    "EVALUATION_HINTS",
    "evaluation_hints",
    "register_evaluator",
    "evaluate_point",
    "grid_seed",
    "technology_to_dict",
    "technology_from_dict",
    "geometry_to_dict",
    "geometry_from_dict",
    "workload_to_dict",
    "workload_from_dict",
    "measured_workload",
]

#: Registry of evaluator kinds, populated by :func:`register_evaluator`.
EVALUATORS: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {}

#: Process-local execution hints for evaluators.  Hints are *never*
#: part of a point's parameters — they must not influence results or
#: content hashes — only how a point is computed (e.g.
#: ``cohort_workers``: patient-level fan-out inside a ``cohort`` point
#: when the campaign itself runs inline).  Set them with
#: :func:`evaluation_hints`; worker processes of a multiprocessing
#: campaign never see hints (pool workers must not nest pools).
EVALUATION_HINTS: dict[str, Any] = {}


@contextmanager
def evaluation_hints(**hints: Any) -> Iterator[None]:
    """Scope process-local evaluation hints around in-process campaigns.

    Example: the experiment session wraps an inline cohort campaign in
    ``evaluation_hints(cohort_workers=4)`` so each policy point fans its
    patients across four worker processes — the execution grain the
    historical ``repro cohort`` CLI used — without touching the point's
    parameters or stored identity.
    """
    previous = dict(EVALUATION_HINTS)
    EVALUATION_HINTS.update(hints)
    try:
        yield
    finally:
        EVALUATION_HINTS.clear()
        EVALUATION_HINTS.update(previous)


def register_evaluator(
    kind: str,
) -> Callable[[Callable[[dict], dict]], Callable[[dict], dict]]:
    """Decorator registering a point evaluator under ``kind``.

    Registration is per-process.  Worker processes created with the
    ``fork`` start method (the Linux default) inherit custom kinds
    registered in the parent; under ``spawn`` (macOS/Windows default)
    workers re-import this module and only see kinds registered at
    import time — register custom kinds in an importable module (not in
    ``__main__`` scripting code) or run those campaigns with
    ``n_workers=1``.
    """

    def _register(func: Callable[[dict], dict]) -> Callable[[dict], dict]:
        if kind in EVALUATORS:
            raise CampaignError(f"evaluator kind {kind!r} already registered")
        EVALUATORS[kind] = func
        return func

    return _register


def evaluate_point(point: CampaignPoint) -> dict[str, Any]:
    """Dispatch one campaign point to its registered evaluator."""
    evaluator = EVALUATORS.get(point.kind)
    if evaluator is None:
        raise CampaignError(
            f"unknown evaluator kind {point.kind!r}; "
            f"available: {sorted(EVALUATORS)}"
        )
    return evaluator(point.params)


def grid_seed(app_name: str, voltage: float) -> int:
    """Deterministic per-(app, voltage) Monte-Carlo seed.

    ``hash()`` is salted per process, which would break run-to-run (and
    worker-vs-parent) reproducibility, so the seed is a CRC-32 of the
    point's coordinates — the exact formula the serial Fig 4 driver used,
    keeping campaign results bit-identical to the historical sweeps.
    """
    return zlib.crc32(f"{app_name}:{round(voltage * 100)}".encode())


def measured_workload(
    app_name: str = "dwt",
    record: str = "100",
    duration_s: float = 10.0,
    soc: SoCConfig | None = None,
) -> Workload:
    """Derive an accounting workload from a real application run.

    Runs the application against a clean fabric, reads the access
    counters, and converts the access volume to active processing time
    with the SoC cycle model (accesses dominate the inner loops of these
    kernels, so cycles-per-access approximates the activity window).
    """
    soc = soc or SoCConfig()
    app = make_app(app_name)
    samples = load_record(record, duration_s=duration_s).samples
    fabric = clean_fabric()
    app.run(samples, fabric)
    n_reads = fabric.stats.data_reads
    n_writes = fabric.stats.data_writes
    cycles = (n_reads + n_writes) * soc.cycles_per_access
    return Workload(
        n_reads=n_reads,
        n_writes=n_writes,
        duration_s=cycles / soc.clock_hz,
    )


@lru_cache(maxsize=8)
def _cached_corpus(
    records: tuple[str, ...], duration_s: float
) -> dict[str, np.ndarray]:
    """Per-process record cache: synthesis dominates tiny grid points."""
    return {
        name: load_record(name, duration_s=duration_s).samples
        for name in records
    }


#: Per-process workload-measurement cache: one energy grid shares the
#: same measured run across all its (EMT, voltage) points.
_cached_workload = lru_cache(maxsize=32)(measured_workload)


def _soc_from(params: dict[str, Any]) -> SoCConfig:
    payload = params.get("soc")
    if payload is None:
        return SoCConfig()
    return SoCConfig(**payload)


# --------------------------------------------------------------------------
# Built-in evaluator kinds
# --------------------------------------------------------------------------


@register_evaluator("montecarlo")
def _eval_montecarlo(params: dict[str, Any]) -> dict[str, Any]:
    """Section V Monte-Carlo protocol at one (app, voltage) point.

    Parameters: ``app``, ``voltage``, ``emts`` (grouped so every EMT sees
    the same defect samples, as the paper requires), ``records``,
    ``duration_s``, ``n_runs``, ``seed``, and optionally ``snr_cap_db``,
    ``tech`` and ``geometry`` dicts.
    """
    # Imported lazily: repro.exp depends on repro.campaign at module
    # level, so the reverse edge must resolve at call time.
    from ..exp.common import ExperimentConfig, run_monte_carlo

    app_name = params["app"]
    voltage = params["voltage"]
    tech = technology_from_dict(params.get("tech"))
    config = ExperimentConfig(
        records=tuple(params["records"]),
        duration_s=params["duration_s"],
        n_runs=params["n_runs"],
        seed=params.get("seed", ExperimentConfig.seed),
        snr_cap_db=params.get("snr_cap_db", SNR_CAP_DB),
        geometry=geometry_from_dict(params.get("geometry")),
    )
    corpus = _cached_corpus(config.records, config.duration_s)
    emts = {name: make_emt(name) for name in params["emts"]}
    # The shared per-process instance keeps clean reference outputs warm
    # across the worker's points (the historical per-point instance
    # recomputed them for every voltage).
    result = run_monte_carlo(
        cached_app(app_name),
        emts,
        tech.ber(voltage),
        config,
        corpus,
        grid_seed(app_name, voltage),
    )
    return {
        "snr_mean_db": result.snr_mean_db,
        "snr_std_db": result.snr_std_db,
        "n_runs": result.n_runs,
    }


@register_evaluator("bit_position")
def _eval_bit_position(params: dict[str, Any]) -> dict[str, Any]:
    """Fig 2 methodology: one bit of every data word stuck at a value.

    Parameters: ``app``, ``position``, ``stuck_value``, ``records``,
    ``duration_s``, and optionally ``snr_cap_db``/``geometry``/
    ``data_bits``.  Deterministic — no seed involved.
    """
    geometry = geometry_from_dict(params.get("geometry"))
    data_bits = params.get("data_bits", 16)
    corpus = _cached_corpus(tuple(params["records"]), params["duration_s"])
    cap_db = params.get("snr_cap_db", SNR_CAP_DB)
    fault_map = position_fault_map(
        geometry.n_words, data_bits, params["position"], params["stuck_value"]
    )
    app = cached_app(params["app"])
    snrs = []
    for samples in corpus.values():
        fabric = MemoryFabric(
            NoProtection(), fault_map=fault_map, geometry=geometry
        )
        output = app.run(samples, fabric)
        snrs.append(app.output_snr(samples, output, cap_db=cap_db))
    return {"snr_db": float(np.mean(snrs))}


@register_evaluator("mission")
def _eval_mission(params: dict[str, Any]) -> dict[str, Any]:
    """Adaptive-runtime mission at one (policy, scenario) point.

    Parameters: a ``policy`` (registry name or ``{"name", "params"}``
    dict) plus either a ``scenario`` registry name or a full ``mission``
    dict (:meth:`repro.runtime.MissionSpec.to_dict` form).  Optional:
    ``duration_scale`` (shrink the timeline, preserving its shape),
    ``seed``/``window_s`` overrides, and the simulator fidelity knobs
    ``n_probe``/``probe_duration_s``.  Returns the
    :class:`~repro.runtime.MissionResult` metrics dict (lifetime, mean/
    worst/p5 quality, switches, violations, energy).
    """
    # Imported lazily: repro.runtime prices windows through this module,
    # so the reverse edge must resolve at call time.
    from ..runtime import MissionSimulator, policy_from_dict
    from ..runtime.mission import MissionSpec
    from ..runtime.scenarios import scenario_spec

    if "mission" in params:
        spec = MissionSpec.from_dict(params["mission"])
    elif "scenario" in params:
        spec = scenario_spec(params["scenario"])
    else:
        raise CampaignError(
            "mission point needs a 'scenario' name or a 'mission' dict"
        )
    if "duration_scale" in params:
        spec = spec.scaled(params["duration_scale"])
    overrides = {
        key: params[key] for key in ("seed", "window_s") if key in params
    }
    if overrides:
        spec = replace(spec, **overrides)
    if "policy" not in params:
        raise CampaignError(
            "mission point needs a 'policy' (registry name or "
            "{'name', 'params'} dict)"
        )
    simulator = MissionSimulator(
        spec,
        n_probe=params.get("n_probe", 3),
        probe_duration_s=params.get("probe_duration_s", 4.0),
    )
    result = simulator.run(policy_from_dict(params["policy"]))
    return result.to_dict()


@register_evaluator("cohort")
def _eval_cohort(params: dict[str, Any]) -> dict[str, Any]:
    """Population fleet at one (policy, cohort) point.

    Parameters: a ``policy`` (registry name or ``{"name", "params"}``
    dict) plus a ``cohort`` dict
    (:meth:`repro.cohort.CohortSpec.to_dict` form).  Optional: ``size``/
    ``duration_scale``/``seed`` overrides on the cohort,
    ``allow_failed_patients`` (see below), and the simulator fidelity
    knobs ``n_probe``/``probe_duration_s``.  Patients run serially
    inside this worker by default — the campaign runner already fans
    *points* across processes, and the shared disk calibration cache
    keeps fleet-wide calibration work deduplicated either way; an
    inline campaign may instead fan patients across processes via the
    ``cohort_workers`` entry of :data:`EVALUATION_HINTS` (results are
    bit-identical for any worker count).

    Returns the :meth:`~repro.cohort.FleetResult.summary` population
    metrics plus a ``"survival"`` battery-survival curve (``[t_days,
    fraction_alive]`` pairs — deterministic, so it stores and resumes
    like any other metric).  A point with any failed patient raises by
    default, so the campaign records it as failed (and retries it on
    the next run); with ``allow_failed_patients`` true the point
    instead degrades gracefully — population statistics cover the
    surviving patients and the summary carries a ``"failures"`` list —
    which is how the experiment API runs fleets (the historical
    ``repro cohort`` behaviour).
    """
    # Imported lazily: repro.cohort builds on repro.runtime, which
    # prices windows through this module.
    from ..cohort import CohortSpec, FleetSimulator, survival_curve

    if "cohort" not in params:
        raise CampaignError("cohort point needs a 'cohort' dict")
    if "policy" not in params:
        raise CampaignError(
            "cohort point needs a 'policy' (registry name or "
            "{'name', 'params'} dict)"
        )
    payload = dict(params["cohort"])
    for key in ("size", "duration_scale", "seed"):
        if key in params:
            payload[key] = params[key]
    fleet = FleetSimulator(
        CohortSpec.from_dict(payload),
        n_probe=params.get("n_probe", 3),
        probe_duration_s=params.get("probe_duration_s", 4.0),
    )
    result = fleet.run(
        params["policy"],
        n_workers=int(EVALUATION_HINTS.get("cohort_workers", 1)),
    )
    failures = result.failures()
    if failures and not params.get("allow_failed_patients", False):
        first = failures[0]
        raise CampaignError(
            f"{len(failures)} of {len(result.rows)} patients failed; "
            f"first (patient {first['patient']}): {first['error']}"
        )
    summary = result.summary()
    # Wall-clock and cache-occupancy figures vary run to run; stored
    # campaign results carry only the deterministic population metrics.
    for volatile in ("elapsed_s", "patients_per_s", "cache"):
        summary.pop(volatile, None)
    if failures:
        summary["failures"] = [
            {"patient": row["patient"], "error": row["error"]}
            for row in failures
        ]
    summary["survival"] = [
        [t_days, alive]
        for t_days, alive in survival_curve(result.ok_rows(), n_points=9)
    ] if result.ok_rows() else []
    return summary


@register_evaluator("energy")
def _eval_energy(params: dict[str, Any]) -> dict[str, Any]:
    """Section VI-B accounting at one (EMT, voltage) point.

    Parameters: ``emt``, ``voltage``, a ``workload`` dict *or* a
    ``workload_app`` name (measured in-worker via
    :func:`measured_workload`, honouring an optional ``soc`` dict and
    ``workload_record``/``workload_duration_s``), plus optional ``tech``
    and ``mask_memory_scaled``.
    """
    tech = technology_from_dict(params.get("tech"))
    if "workload" in params:
        workload = workload_from_dict(params["workload"])
    elif "workload_app" in params:
        workload = _cached_workload(
            app_name=params["workload_app"],
            record=params.get("workload_record", "100"),
            duration_s=params.get("workload_duration_s", 10.0),
            soc=_soc_from(params),
        )
    else:
        raise CampaignError(
            "energy point needs a 'workload' dict or a 'workload_app' name"
        )
    model = EnergySystemModel(
        make_emt(params["emt"]),
        tech=tech,
        mask_memory_scaled=params.get("mask_memory_scaled", True),
    )
    breakdown = model.evaluate(params["voltage"], workload)
    payload = asdict(breakdown)
    payload["total_pj"] = breakdown.total_pj
    return payload
