"""Cross-run diff: golden assertions over two committed mini-traces.

``data/mini_a.jsonl`` -> ``data/mini_b.jsonl`` is a deliberately
regressed pair: every shared span path slowed beyond the 25 %
threshold, one path is new on the b side, one point failed, and the
metrics moved in known ways — so every rendered feature of
``repro report --diff`` is pinned by value.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import diff_events, load_trace, render_diff

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def diff():
    return diff_events(
        load_trace(DATA / "mini_a.jsonl"),
        load_trace(DATA / "mini_b.jsonl"),
    )


def test_sides_identify_the_runs(diff):
    assert diff["a"]["run_id"] == "mini-a"
    assert diff["b"]["run_id"] == "mini-b"
    assert diff["a"]["wall_s"] == pytest.approx(1.0)
    assert diff["b"]["wall_s"] == pytest.approx(1.5)
    assert (diff["a"]["failed"], diff["b"]["failed"]) == (0, 1)
    assert diff["a"]["attrs"]["kind"] == "sweep"


def test_span_rows_cover_the_union_sorted_by_delta(diff):
    rows = {row["path"]: row for row in diff["spans"]}
    point = rows[("session.run", "campaign", "point")]
    assert (point["count_a"], point["count_b"]) == (2, 2)
    assert point["total_a"] == pytest.approx(0.45)
    assert point["total_b"] == pytest.approx(0.95)
    assert point["delta_s"] == pytest.approx(0.5)
    assert point["pct"] == pytest.approx(0.5 / 0.45)
    assert point["regression"]
    assert (point["failed_a"], point["failed_b"]) == (0, 1)

    # calibrate exists only on the b side: counts 0 there, pct None.
    calibrate = rows[("session.run", "campaign", "calibrate")]
    assert (calibrate["count_a"], calibrate["count_b"]) == (0, 1)
    assert calibrate["pct"] is None
    assert calibrate["regression"]  # new 0.3 s of work is a regression

    # Sorted by |delta|, biggest mover first.
    deltas = [abs(row["delta_s"]) for row in diff["spans"]]
    assert deltas == sorted(deltas, reverse=True)


def test_metric_rows_fold_both_sides(diff):
    rows = {row["name"]: row for row in diff["metrics"]}
    executed = rows["campaign.points_executed"]
    assert (executed["a"], executed["b"], executed["delta"]) == (2, 2, 0)

    failed = rows["campaign.points_failed"]  # b-side only
    assert failed["a"] is None
    assert failed["b"] == 1
    assert failed["delta"] is None

    throughput = rows["mission.windows_per_s"]
    assert throughput["delta"] == pytest.approx(-200.0)
    assert throughput["pct"] == pytest.approx(-0.2)

    # Histograms compare their mean: 0.02/2 -> 0.06/2.
    append = rows["store.append_s"]
    assert append["a"] == pytest.approx(0.01)
    assert append["b"] == pytest.approx(0.03)
    assert append["delta"] == pytest.approx(0.02)


def test_render_diff_golden(diff):
    text = render_diff(diff)
    assert "Run diff — a: mini-a  ->  b: mini-b" in text
    assert "wall time 1.000 s -> 1.500 s" in text
    assert "spans 4 -> 5" in text
    assert "failed 0 -> 1" in text
    assert "REGRESSION" in text
    assert "[failed 0->1]" in text
    assert "  (new)" in text  # the b-only calibrate path
    # All four paths (session.run, campaign, point, calibrate) slowed
    # beyond the 25% threshold.
    assert "4 span path(s) regressed more than 25%" in text


def test_top_limits_span_rows(diff):
    text = render_diff(diff, top=1)
    assert "top 1 by |delta|" in text


def test_identical_runs_have_no_regressions():
    events = load_trace(DATA / "mini_a.jsonl")
    text = render_diff(diff_events(events, events))
    assert "No span-path regressions beyond 25%" in text
    assert "REGRESSION" not in text


def test_cli_report_diff(capsys):
    code = main(
        ["report", "--diff", str(DATA / "mini_a.jsonl"),
         str(DATA / "mini_b.jsonl")]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Run diff — a: mini-a  ->  b: mini-b" in out
    assert "REGRESSION" in out


def test_cli_report_diff_requires_two_targets(capsys):
    assert main(["report", "--diff", str(DATA / "mini_a.jsonl")]) == 1
    assert "exactly two" in capsys.readouterr().err
