"""Span-attributed sampling profiler (stdlib-only, off by default).

The PR 6/7 telemetry spine says *which* spans are slow; this module
says *why*: a background daemon thread samples every Python frame
stack in the process via ``sys._current_frames()`` and tags each
sample with the sampled thread's currently-open span path (from
:meth:`repro.obs.core._Tracer.open_span_paths`).  Samples fold into
collapsed-stack form in memory and land as one ``profile-<pid>.jsonl``
shard per process, in a ``<run_id>-profile/`` directory beside the
trace sink — pool workers inherit activation through the same
environment propagation as the tracer (the :data:`ENV_PROFILE` flag is
ordinary environment, and each worker's lazily-built tracer starts its
own sampler), so a profiled cohort run yields one mergeable fleet-wide
profile.

Sampling policy: threads holding open spans are always sampled; the
process's main thread is sampled even between spans (tagged with the
empty span path); other span-less threads — pool queue feeders,
condition waiters — are *counted* (the shard header's ``skipped``) but
not stacked, so wall-clock samples of idle machinery never drown the
attributed work.

Activation: ``repro --profile ...`` or ``REPRO_PROFILE=1`` (the
sampling interval is ``REPRO_PROFILE_INTERVAL`` seconds, default
``0.005``).  The off path costs nothing on hot seams: the environment
is consulted once per tracer construction, never per probe.

Reading back: ``repro profile <run-id|latest>`` merges the run's
shards and prints collapsed-stack text (one ``frame;frame;... count``
line per unique stack — pipe it into any flamegraph tool), and
``--flamegraph out.json`` writes a speedscope-compatible document
(https://www.speedscope.app — "Browse" the file, no upload needed).
``repro report --profile`` renders the top-N hot functions folded per
span path instead.

Shard format (one JSON object per line)::

    {"profile": "v1", "trace": ..., "pid": ..., "interval_s": ...,
     "samples": N, "skipped": M, "t0": ..., "t": ...}
    {"span": ["session.run", "campaign"], "stack": ["mod.fn", ...],
     "n": 12}

Shards are rewritten atomically (temp file + ``os.replace``) about
once a second, so a worker killed by ``Pool.terminate()`` loses at
most the last second of samples — the same discipline as the tracer's
flush-on-empty-stack.
"""

from __future__ import annotations

import atexit
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any

from ..errors import ObsError

__all__ = [
    "ENV_PROFILE",
    "ENV_PROFILE_INTERVAL",
    "DEFAULT_INTERVAL_S",
    "requested",
    "ensure_started",
    "stop_sampler",
    "sampler_active",
    "profile_dir_for",
    "shard_paths",
    "load_shard",
    "load_profile",
    "collapsed_lines",
    "hot_by_span",
    "render_hot_section",
    "speedscope_document",
]

#: Boolean switch activating the sampler in every traced process.
ENV_PROFILE = "REPRO_PROFILE"
#: Sampling interval override, in (fractional) seconds.
ENV_PROFILE_INTERVAL = "REPRO_PROFILE_INTERVAL"

#: Default seconds between stack samples (200 Hz).
DEFAULT_INTERVAL_S = 0.005

#: Shards are rewritten at most this often (and at sampler stop).
_SHARD_FLUSH_S = 1.0

#: Stack frames kept per sample, innermost last.
_MAX_DEPTH = 80

#: The shard header's format tag.
_SHARD_VERSION = "v1"


def requested() -> bool:
    """True when the environment asks for sampling profiles."""
    return os.environ.get(ENV_PROFILE, "") in ("1", "true")


def sample_interval_s() -> float:
    """The configured sampling interval (invalid values fall back)."""
    raw = os.environ.get(ENV_PROFILE_INTERVAL)
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return DEFAULT_INTERVAL_S


def profile_dir_for(trace_path: Path | str) -> Path:
    """Where a trace sink's profile shards live (``<stem>-profile/``)."""
    sink = Path(trace_path)
    return sink.parent / f"{sink.stem}-profile"


def _frame_stack(frame: Any) -> tuple[str, ...]:
    """One sampled thread's stack as ``module.qualname`` strings.

    Outermost (root) first — collapsed-stack order.  Depth is bounded
    by :data:`_MAX_DEPTH`; deeper stacks lose their outermost frames,
    which keeps the hot leaves intact.
    """
    names: list[str] = []
    cursor = frame
    while cursor is not None and len(names) < _MAX_DEPTH:
        code = cursor.f_code
        module = cursor.f_globals.get("__name__", "?")
        qualname = getattr(code, "co_qualname", code.co_name)
        names.append(f"{module}.{qualname}")
        cursor = cursor.f_back
    names.reverse()
    return tuple(names)


class Sampler:
    """The per-process sampling thread and its folded sample store."""

    def __init__(
        self,
        tracer: Any,
        out_path: Path,
        interval_s: float | None = None,
    ) -> None:
        self.tracer = tracer
        self.out_path = Path(out_path)
        self.interval_s = (
            sample_interval_s() if interval_s is None else interval_s
        )
        self.pid = os.getpid()
        self.samples = 0
        self.skipped = 0
        self.t0 = time.time()
        self._folds: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._last_write = 0.0
        self._thread = threading.Thread(
            target=self._run, name="repro-profile-sampler", daemon=True
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and write the final shard."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=2.0)
        self.write_shard()

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # -- the sampling loop -------------------------------------------------

    def _run(self) -> None:
        main_id = threading.main_thread().ident
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_s):
            self._sample_once(main_id, own_id)
            now = time.monotonic()
            if now - self._last_write >= _SHARD_FLUSH_S:
                self.write_shard()

    def _sample_once(self, main_id: int | None, own_id: int) -> None:
        spans = self.tracer.open_span_paths()
        frames = sys._current_frames()
        with self._lock:
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                span_path = spans.get(thread_id)
                if span_path is None:
                    if thread_id != main_id:
                        # Span-less helper threads (pool feeders,
                        # waiters) are idle machinery: count, don't
                        # stack.
                        self.skipped += 1
                        continue
                    span_path = ()
                key = (span_path, _frame_stack(frame))
                self._folds[key] = self._folds.get(key, 0) + 1
                self.samples += 1

    # -- shard I/O ---------------------------------------------------------

    def write_shard(self) -> None:
        """Atomically rewrite this process's shard with current folds."""
        self._last_write = time.monotonic()
        with self._lock:
            header = {
                "profile": _SHARD_VERSION,
                "trace": self.tracer.run_id,
                "pid": self.pid,
                "interval_s": self.interval_s,
                "samples": self.samples,
                "skipped": self.skipped,
                "t0": self.t0,
                "t": time.time(),
            }
            entries = [
                {"span": list(span), "stack": list(stack), "n": count}
                for (span, stack), count in sorted(self._folds.items())
            ]
        if not self.samples and not self.skipped:
            return
        self.out_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.out_path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for entry in entries:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")
        os.replace(tmp, self.out_path)


# -- module state ----------------------------------------------------------

_SAMPLER: Sampler | None = None
_SAMPLER_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def ensure_started(tracer: Any, fresh: bool = False) -> Sampler:
    """Start (or return) this process's sampler for ``tracer``.

    Called from the tracer-construction seams in
    :mod:`repro.obs.core` — owner ``enable()`` (``fresh=True`` clears
    stale shards of a re-run), fork rebind, and the spawn path's lazy
    build.  A sampler inherited across ``fork`` is dead (threads do not
    survive the fork) and is replaced.
    """
    global _SAMPLER, _ATEXIT_REGISTERED
    with _SAMPLER_LOCK:
        sampler = _SAMPLER
        if (
            sampler is not None
            and sampler.pid == os.getpid()
            and sampler.alive
        ):
            return sampler
        directory = profile_dir_for(tracer.path)
        if fresh and directory.is_dir():
            for stale in directory.glob("profile-*.jsonl"):
                stale.unlink(missing_ok=True)
        sampler = Sampler(
            tracer, directory / f"profile-{os.getpid()}.jsonl"
        )
        _SAMPLER = sampler
        if not _ATEXIT_REGISTERED:
            # Fast pool workers may exit before the periodic rewrite
            # ever fires; a clean interpreter exit writes the final
            # shard (Pool.terminate() still loses at most ~1 s).
            atexit.register(stop_sampler)
            _ATEXIT_REGISTERED = True
        sampler.start()
        return sampler


def stop_sampler() -> None:
    """Stop this process's sampler (final shard write); no-op when idle."""
    global _SAMPLER
    with _SAMPLER_LOCK:
        sampler = _SAMPLER
        _SAMPLER = None
    if sampler is not None and sampler.pid == os.getpid():
        sampler.stop()


def sampler_active() -> bool:
    """True while this process has a live sampling thread."""
    sampler = _SAMPLER
    return (
        sampler is not None
        and sampler.pid == os.getpid()
        and sampler.alive
    )


# -- reading shards back ---------------------------------------------------


def shard_paths(trace_path: Path | str) -> list[Path]:
    """The run's shard files, sorted for deterministic merges."""
    return sorted(profile_dir_for(trace_path).glob("profile-*.jsonl"))


def load_shard(path: Path | str) -> dict[str, Any]:
    """Parse one shard into ``{"header": ..., "folds": {key: n}}``.

    A malformed shard is a hard :class:`~repro.errors.ObsError` — the
    same contract as the trace reader: a profile that lies is worse
    than no profile.
    """
    source = Path(path)
    try:
        lines = source.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ObsError(f"cannot read profile shard {source}: {exc}") from exc
    if not lines:
        raise ObsError(f"{source}: empty profile shard")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ObsError(f"{source}:1: not valid JSON: {exc}") from exc
    if (
        not isinstance(header, dict)
        or header.get("profile") != _SHARD_VERSION
        or not isinstance(header.get("pid"), int)
    ):
        raise ObsError(
            f"{source}: not a {_SHARD_VERSION} profile shard header"
        )
    folds: dict[tuple, int] = {}
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(
                f"{source}:{lineno}: not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("span"), list)
            or not isinstance(entry.get("stack"), list)
            or not isinstance(entry.get("n"), int)
            or entry["n"] < 1
        ):
            raise ObsError(
                f"{source}:{lineno}: malformed profile entry "
                "(need span list, stack list, positive n)"
            )
        key = (
            tuple(str(name) for name in entry["span"]),
            tuple(str(name) for name in entry["stack"]),
        )
        folds[key] = folds.get(key, 0) + entry["n"]
    return {"header": header, "folds": folds}


def load_profile(trace_path: Path | str) -> dict[str, Any]:
    """Merge all of a run's shards into one fleet-wide profile.

    Returns ``{"trace", "interval_s", "samples", "skipped", "shards",
    "folds"}`` where ``folds`` maps ``(span path, stack)`` tuples to
    summed sample counts across every process.
    """
    paths = shard_paths(trace_path)
    if not paths:
        raise ObsError(
            f"no profile shards under {profile_dir_for(trace_path)} — "
            "run with --profile (or REPRO_PROFILE=1) to record them"
        )
    folds: dict[tuple, int] = {}
    headers: list[dict] = []
    for path in paths:
        shard = load_shard(path)
        headers.append(shard["header"])
        for key, count in shard["folds"].items():
            folds[key] = folds.get(key, 0) + count
    return {
        "trace": headers[0].get("trace", ""),
        "interval_s": max(
            float(header.get("interval_s") or 0.0) for header in headers
        ) or DEFAULT_INTERVAL_S,
        "samples": sum(int(header.get("samples", 0)) for header in headers),
        "skipped": sum(int(header.get("skipped", 0)) for header in headers),
        "shards": headers,
        "folds": folds,
    }


def _collapsed_key(span: tuple, stack: tuple) -> str:
    """One collapsed-stack line's frame part: spans first, then code."""
    parts = [f"span:{name}" for name in span]
    parts.extend(stack)
    return ";".join(parts) if parts else "(idle)"


def collapsed_lines(profile: dict[str, Any]) -> list[str]:
    """Collapsed-stack text lines, heaviest stack first (then lexical).

    The standard ``frame;frame;... count`` format every flamegraph
    tool consumes; span frames carry a ``span:`` prefix so work is
    attributed under its span path in the rendered flame.
    """
    rows = [
        (_collapsed_key(span, stack), count)
        for (span, stack), count in profile["folds"].items()
    ]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return [f"{key} {count}" for key, count in rows]


def hot_by_span(
    profile: dict[str, Any],
) -> dict[tuple[str, ...], dict[str, int]]:
    """Self-sample counts of each executing function, per span path.

    The *leaf* frame of every sample is the code actually on-stack-top
    when the sampler fired — the flat-profile "self time" notion —
    folded separately under each span path.
    """
    folded: dict[tuple[str, ...], dict[str, int]] = {}
    for (span, stack), count in profile["folds"].items():
        leaf = stack[-1] if stack else "(no python frames)"
        slot = folded.setdefault(tuple(span), {})
        slot[leaf] = slot.get(leaf, 0) + count
    return folded


def render_hot_section(profile: dict[str, Any], top: int = 10) -> str:
    """The ``repro report --profile`` section: hot functions per span.

    Span paths order by total sample weight (heaviest first); within
    each, the top-N functions by self samples with their share of the
    path's samples.
    """
    folded = hot_by_span(profile)
    interval = profile["interval_s"]
    total = profile["samples"] or 1
    lines = [
        f"Sampling profile: {profile['samples']} samples · "
        f"interval {interval * 1000.0:.1f} ms · "
        f"{len(profile['shards'])} process(es) · "
        f"{profile['skipped']} idle-thread samples skipped"
    ]
    by_weight = sorted(
        folded.items(),
        key=lambda item: (-sum(item[1].values()), item[0]),
    )
    for span, functions in by_weight:
        span_total = sum(functions.values())
        label = " > ".join(span) if span else "(no open span)"
        lines.append(
            f"  {label} — {span_total} samples "
            f"({100.0 * span_total / total:.1f}% · "
            f"~{span_total * interval:.2f} s)"
        )
        ranked = sorted(
            functions.items(), key=lambda item: (-item[1], item[0])
        )[: max(0, top)]
        for name, count in ranked:
            lines.append(
                f"    {count:>6} ({100.0 * count / span_total:>5.1f}%)  "
                f"{name}"
            )
    return "\n".join(lines)


def speedscope_document(profile: dict[str, Any]) -> dict[str, Any]:
    """A speedscope-compatible ``sampled`` profile of the merged folds.

    Weights are seconds (sample count x interval); span frames are
    prefixed ``span:`` exactly as in the collapsed text, so the two
    views of one run agree frame-for-frame.
    """
    frame_index: dict[str, int] = {}
    samples: list[list[int]] = []
    weights: list[float] = []
    interval = profile["interval_s"]
    rows = sorted(
        profile["folds"].items(), key=lambda item: (-item[1], item[0])
    )
    for (span, stack), count in rows:
        names = [f"span:{name}" for name in span] + list(stack)
        if not names:
            names = ["(idle)"]
        indices = []
        for name in names:
            index = frame_index.setdefault(name, len(frame_index))
            indices.append(index)
        samples.append(indices)
        weights.append(count * interval)
    total = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": profile["trace"] or "repro profile",
        "exporter": "repro.obs.profile",
        "shared": {
            "frames": [{"name": name} for name in frame_index],
        },
        "profiles": [
            {
                "type": "sampled",
                "name": profile["trace"] or "repro profile",
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }
