"""Property tests: the trial-batched pipeline is bit-identical.

ISSUE 4's contract: every batched path — fault-map sampling, EMT
encode/decode, fabric write/read (including window stacking), the
Monte-Carlo protocol and the mission calibrator — must produce *exactly*
the numbers the sequential seed implementation produced from the same
seeds, because cached calibrations and published figures must not shift.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._bitops import _popcount_swar, popcount, sign_run_length, to_signed
from repro.apps.registry import make_app
from repro.emt import make_emt
from repro.emt.base import NoProtection
from repro.emt.dream import DreamEMT
from repro.emt.hybrid import HybridEMT, VoltageRange
from repro.emt.secded import SecDedEMT
from repro.energy.technology import TECH_32NM_LP
from repro.mem.fabric import MemoryFabric
from repro.mem.faults import (
    position_fault_map,
    position_fault_map_batch,
    sample_fault_map,
    sample_fault_map_batch,
)
from repro.mem.layout import PAPER_GEOMETRY, MemoryGeometry
from repro.signals.metrics import snr_db, snr_db_batch

#: Registry names of every EMT codec the acceptance criteria call out,
#: plus a voltage-switching hybrid assembled from the paper's members.
CODEC_NAMES = ("none", "parity", "secded", "dream", "dream_secded", "hybrid")


def build_emt(name: str):
    if name == "hybrid":
        members = {
            e.name: e for e in (NoProtection(), DreamEMT(), SecDedEMT())
        }
        policy = [
            VoltageRange(0.85, 0.90, "none"),
            VoltageRange(0.65, 0.85, "dream"),
            VoltageRange(0.40, 0.65, "secded"),
        ]
        return HybridEMT(members, policy, voltage=0.6)
    return make_emt(name)


class TestBatchedFaultSampling:
    @pytest.mark.parametrize("ber", [0.0, 1e-4, 5e-3, 0.3])
    @pytest.mark.parametrize("n_trials", [1, 3, 7])
    def test_batch_rows_equal_sequential_draws(self, ber, n_trials):
        """Row t of the batch is the t-th sequential draw, bit for bit."""
        rng = np.random.default_rng(42)
        singles = [
            sample_fault_map(257, 22, ber, rng) for _ in range(n_trials)
        ]
        rng = np.random.default_rng(42)
        batch = sample_fault_map_batch(n_trials, 257, 22, ber, rng)
        assert batch.n_trials == n_trials and batch.is_batched
        for t, single in enumerate(singles):
            trial = batch.trial(t)
            assert np.array_equal(trial.set_mask, single.set_mask)
            assert np.array_equal(trial.clear_mask, single.clear_mask)

    def test_batch_leaves_rng_in_sequential_state(self):
        """Consuming the stream batched ends at the same generator state."""
        rng_a = np.random.default_rng(7)
        for _ in range(4):
            sample_fault_map(64, 16, 1e-2, rng_a)
        rng_b = np.random.default_rng(7)
        sample_fault_map_batch(4, 64, 16, 1e-2, rng_b)
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)

    def test_masks_match_historical_weighted_reduction(self):
        """packbits packing reproduces the where/sum mask layout."""
        rng = np.random.default_rng(3)
        draws = rng.random((128, 22)), rng.random((128, 22))
        failed, stuck = draws[0] < 0.2, draws[1] < 0.5
        weights = (np.int64(1) << np.arange(22, dtype=np.int64))[None, :]
        expected_set = np.where(failed & stuck, weights, 0).sum(axis=1)
        expected_clear = np.where(failed & ~stuck, weights, 0).sum(axis=1)
        rng = np.random.default_rng(3)
        fault_map = sample_fault_map(128, 22, 0.2, rng)
        assert np.array_equal(fault_map.set_mask, expected_set)
        assert np.array_equal(fault_map.clear_mask, expected_clear)

    def test_position_batch_stacks_single_maps(self):
        configurations = [
            (position, stuck) for stuck in (0, 1) for position in range(16)
        ]
        batch = position_fault_map_batch(64, 16, configurations)
        assert batch.n_trials == 32
        for row, (position, stuck) in enumerate(configurations):
            single = position_fault_map(64, 16, position, stuck)
            assert np.array_equal(
                batch.trial(row).set_mask, single.set_mask
            )
            assert np.array_equal(
                batch.trial(row).clear_mask, single.clear_mask
            )

    def test_restriction_and_slicing_of_batches(self):
        rng = np.random.default_rng(11)
        batch = sample_fault_map_batch(3, 50, 22, 0.3, rng)
        narrow = batch.restricted_to(16)
        assert narrow.is_batched and narrow.word_bits == 16
        assert int(narrow.set_mask.max()) < (1 << 16)
        ranged = batch.restricted_to_words(10, 20)
        assert ranged.n_trials == 3
        assert not ranged.set_mask[:, :10].any()
        assert not ranged.clear_mask[:, 30:].any()


class TestBatchedCodecs:
    @pytest.mark.parametrize("name", CODEC_NAMES)
    def test_encode_decode_shape_agnostic(self, name):
        """2-D payload batches encode/decode row-for-row identically."""
        emt = build_emt(name)
        rng = np.random.default_rng(5)
        payload = rng.integers(0, 1 << 16, size=(4, 33), dtype=np.int64)
        stored2d, side2d = emt.encode(payload)
        corrupt2d = np.bitwise_xor(
            stored2d, rng.integers(0, 4, size=stored2d.shape) << 3
        )
        decoded2d = emt.decode(corrupt2d, side2d)
        for row in range(payload.shape[0]):
            stored1d, side1d = emt.encode(payload[row])
            assert np.array_equal(stored2d[row], stored1d)
            if side1d is not None:
                assert np.array_equal(side2d[row], side1d)
            decoded1d = emt.decode(
                corrupt2d[row],
                None if side2d is None else side2d[row],
            )
            assert np.array_equal(decoded2d[row], decoded1d)

    def test_secded_lut_fold_matches_bit_serial_reference(self):
        """The byte-LUT syndrome path equals the scalar parity trees."""
        emt = SecDedEMT()
        rng = np.random.default_rng(9)
        payload = rng.integers(0, 1 << 16, size=200, dtype=np.int64)
        stored, _ = emt.encode(payload)
        corrupted = np.bitwise_xor(
            stored, np.int64(1) << rng.integers(0, 22, size=200)
        )
        vector = emt.decode(corrupted.copy(), None)
        scalar = np.asarray(
            [emt.decode_word(int(word), 0) for word in corrupted]
        )
        assert np.array_equal(vector, scalar)

    def test_checked_kwarg_does_not_change_values(self):
        emt = SecDedEMT()
        payload = np.arange(128, dtype=np.int64)
        assert np.array_equal(
            emt.encode(payload)[0], emt.encode(payload, checked=True)[0]
        )


class TestBatchedFabric:
    def test_stacked_roundtrip_equals_window_loop(self):
        """(T, W, k) roundtrips == looping the windows one at a time."""
        geo = MemoryGeometry(n_words=256, word_bits=22, n_banks=4)
        rng = np.random.default_rng(21)
        windows = rng.integers(-30000, 30000, size=(5, 64), dtype=np.int64)
        for name in ("none", "dream", "secded"):
            emt = make_emt(name)
            fmap = sample_fault_map_batch(
                3, geo.n_words, emt.stored_bits, 0.02,
                np.random.default_rng(1),
            )
            loop_fabric = MemoryFabric(make_emt(name), fault_map=fmap, geometry=geo)
            looped = np.stack(
                [loop_fabric.roundtrip("buf", w) for w in windows], axis=1
            )
            stack_fabric = MemoryFabric(make_emt(name), fault_map=fmap, geometry=geo)
            stacked = stack_fabric.roundtrip("buf", windows[None])
            assert stacked.shape == (3, 5, 64)
            assert np.array_equal(stacked, looped)
            # End state: the last window is what the cells retain.
            assert np.array_equal(
                stack_fabric.read(stack_fabric.buffer("buf"), 64),
                loop_fabric.read(loop_fabric.buffer("buf"), 64),
            )

    def test_batched_write_read_matches_per_trial_fabrics(self):
        geo = MemoryGeometry(n_words=128, word_bits=16, n_banks=4)
        values = np.arange(-40, 40, dtype=np.int64)
        fmap = sample_fault_map_batch(
            4, geo.n_words, 16, 0.05, np.random.default_rng(2)
        )
        batched = MemoryFabric(NoProtection(), fault_map=fmap, geometry=geo)
        out = batched.roundtrip("x", values)
        assert out.shape == (4, 80)
        for t in range(4):
            single = MemoryFabric(
                NoProtection(), fault_map=fmap.trial(t), geometry=geo
            )
            assert np.array_equal(out[t], single.roundtrip("x", values))

    def test_trial_fabric_preserves_address_map_and_stats_mode(self):
        """The per-trial fallback fabrics must corrupt the same physical
        words as a sequential run with the same scrambling."""
        from repro.mem.layout import AddressMap

        geo = MemoryGeometry(n_words=64, word_bits=16, n_banks=4)
        address_map = AddressMap(geo, np.random.default_rng(3))
        fmap = sample_fault_map_batch(
            2, geo.n_words, 16, 0.1, np.random.default_rng(4)
        )
        batched = MemoryFabric(
            NoProtection(),
            fault_map=fmap,
            geometry=geo,
            address_map=address_map,
            collect_decode_stats=False,
        )
        values = np.arange(32, dtype=np.int64)
        for t in range(2):
            single = MemoryFabric(
                NoProtection(),
                fault_map=fmap.trial(t),
                geometry=geo,
                address_map=address_map,
            )
            per_trial = batched.trial(t)
            assert per_trial.sram.address_map is address_map
            assert per_trial.collect_decode_stats is False
            assert np.array_equal(
                per_trial.roundtrip("x", values),
                single.roundtrip("x", values),
            )

    def test_window_stacking_disabled_with_trace_or_scrambling(self):
        fmap = sample_fault_map_batch(
            2, PAPER_GEOMETRY.n_words, 16, 0.0, np.random.default_rng(0)
        )
        fabric = MemoryFabric(NoProtection(), fault_map=fmap)
        assert fabric.window_stacking
        traced = MemoryFabric(
            NoProtection(), fault_map=fmap, record_trace=True
        )
        assert not traced.window_stacking


class TestBatchedApps:
    #: Sample lengths covering whole-window, odd and sub-window counts.
    LENGTHS = (2880, 1023, 700)

    @pytest.mark.parametrize("app_name", ["dwt", "morphology", "matrix_filter", "compressed_sensing", "delineation"])
    @pytest.mark.parametrize("codec", CODEC_NAMES)
    def test_run_batch_bit_identical_to_sequential(self, app_name, codec):
        app = make_app(app_name)
        rng = np.random.default_rng(17)
        for n_samples in self.LENGTHS:
            samples = rng.integers(
                -3000, 3000, size=n_samples
            ).astype(np.int64)
            for n_trials in (1, 3):
                emt = build_emt(codec)
                seq_rng = np.random.default_rng(99)
                sequential = np.stack(
                    [
                        app.run(
                            samples,
                            MemoryFabric(
                                build_emt(codec),
                                fault_map=sample_fault_map(
                                    PAPER_GEOMETRY.n_words,
                                    emt.stored_bits,
                                    2e-3,
                                    seq_rng,
                                ),
                            ),
                        )
                        for _ in range(n_trials)
                    ]
                )
                bat_rng = np.random.default_rng(99)
                fault_map = sample_fault_map_batch(
                    n_trials,
                    PAPER_GEOMETRY.n_words,
                    emt.stored_bits,
                    2e-3,
                    bat_rng,
                )
                batched = app.run_batch(
                    samples,
                    MemoryFabric(build_emt(codec), fault_map=fault_map),
                )
                assert np.array_equal(batched, sequential), (
                    app_name, codec, n_samples, n_trials,
                )

    def test_output_snr_batch_matches_scalar(self):
        app = make_app("dwt")
        rng = np.random.default_rng(4)
        samples = rng.integers(-2000, 2000, size=1500).astype(np.int64)
        fault_map = sample_fault_map_batch(
            3, PAPER_GEOMETRY.n_words, 16, 5e-3, np.random.default_rng(8)
        )
        outputs = app.run_batch(
            samples, MemoryFabric(NoProtection(), fault_map=fault_map)
        )
        batched = app.output_snr_batch(samples, outputs)
        scalar = [app.output_snr(samples, row) for row in outputs]
        assert np.array_equal(batched, np.asarray(scalar))


class TestMonteCarloProtocol:
    @pytest.mark.parametrize("voltage", [0.9, 0.6, 0.5])
    def test_batched_equals_sequential_across_voltages(self, voltage):
        from repro.exp.common import (
            ExperimentConfig,
            load_corpus,
            run_monte_carlo,
            run_monte_carlo_sequential,
        )

        config = ExperimentConfig(
            records=("100",), duration_s=3.0, n_runs=5
        )
        corpus = load_corpus(config)
        app = make_app("dwt")
        emts = {n: make_emt(n) for n in ("none", "dream", "secded")}
        ber = TECH_32NM_LP.ber(voltage)
        batched = run_monte_carlo(app, emts, ber, config, corpus, 123)
        sequential = run_monte_carlo_sequential(
            app, emts, ber, config, corpus, 123
        )
        assert batched.snr_mean_db == sequential.snr_mean_db
        assert batched.snr_std_db == sequential.snr_std_db

    def test_fig2_fast_path_equals_campaign_path(self, tmp_path):
        from repro.campaign.store import ResultStore
        from repro.exp.common import ExperimentConfig
        from repro.exp.fig2 import run_fig2

        config = ExperimentConfig(records=("100",), duration_s=2.0)
        fast = run_fig2(app_names=("morphology",), config=config)
        store = ResultStore(tmp_path / "fig2.jsonl")
        campaign = run_fig2(
            app_names=("morphology",), config=config, store=store
        )
        assert fast.snr_db == campaign.snr_db


class TestBitopsKernels:
    def test_popcount_swar_matches_dispatch(self):
        rng = np.random.default_rng(12)
        words = rng.integers(0, 1 << 40, size=10_000, dtype=np.int64)
        assert np.array_equal(popcount(words), _popcount_swar(words))

    def test_to_signed_matches_historical_where_form(self):
        rng = np.random.default_rng(13)
        for width in (3, 11, 16, 22):
            patterns = rng.integers(
                0, 1 << width, size=500, dtype=np.int64
            )
            sign_bit = np.int64(1) << np.int64(width - 1)
            magnitude = np.bitwise_and(
                patterns, (np.int64(1) << width) - 1
            )
            expected = np.where(
                np.bitwise_and(magnitude, sign_bit) != 0,
                magnitude - (np.int64(1) << np.int64(width)),
                magnitude,
            )
            assert np.array_equal(to_signed(patterns, width), expected)

    def test_sign_run_length_matches_threshold_form(self):
        rng = np.random.default_rng(14)
        for width in (4, 15, 16):
            values = rng.integers(
                -(1 << (width - 1)), 1 << (width - 1), size=400
            ).astype(np.int64)
            got = sign_run_length(values, width)
            # Historical branch-free threshold count.
            mask = (np.int64(1) << width) - 1
            patterns = np.bitwise_and(values, mask)
            msb = np.bitwise_and(patterns >> (width - 1), 1)
            folded = np.bitwise_xor(patterns, msb * mask)
            run = np.zeros(patterns.shape, dtype=np.int64)
            for k in range(1, width + 1):
                run += (
                    folded < (np.int64(1) << np.int64(width - k))
                ).astype(np.int64)
            assert np.array_equal(got, np.clip(run, 1, width))

    def test_snr_db_batch_matches_scalar_with_edge_cases(self):
        rng = np.random.default_rng(15)
        theo = rng.normal(size=64)
        batch = np.stack([
            theo.copy(),                     # exact -> cap
            theo + rng.normal(size=64),      # ordinary
            np.zeros(64),                    # heavy corruption
        ])
        got = snr_db_batch(theo, batch, cap_db=90.0)
        expected = [snr_db(theo, row, cap_db=90.0) for row in batch]
        assert np.array_equal(got, np.asarray(expected))
        # Zero reference: 0 dB for corrupted rows, cap for exact rows.
        zero_ref = np.zeros(8)
        rows = np.stack([np.zeros(8), np.ones(8)])
        got = snr_db_batch(zero_ref, rows, cap_db=50.0)
        assert got.tolist() == [50.0, 0.0]
