"""Vectorised bit-manipulation helpers shared across the package.

All functions operate on numpy integer arrays and are branch-free where
possible: the quality experiments corrupt and decode millions of words, so
these helpers are the hot path of the whole library.

Words are handled as *unsigned* bit patterns held in ``int64`` arrays (wide
enough for the 22-bit SEC/DED codewords with headroom) unless a function
documents otherwise.  Conversion to and from two's-complement ``int16``
payloads is done at the edges (:func:`to_unsigned`, :func:`to_signed`).
"""

from __future__ import annotations

import numpy as np

from .errors import FixedPointError

__all__ = [
    "HAS_BITWISE_COUNT",
    "bit_mask",
    "field_mask",
    "to_unsigned",
    "to_signed",
    "popcount",
    "parity",
    "sign_run_length",
    "extract_bit",
    "set_bit",
    "clear_bit",
    "pack_fields",
    "unpack_field",
]


def bit_mask(width: int) -> int:
    """Return an integer with the ``width`` least-significant bits set.

    >>> bit_mask(4)
    15
    """
    if width < 0:
        raise FixedPointError(f"bit width must be non-negative, got {width}")
    return (1 << width) - 1


def field_mask(lsb: int, width: int) -> int:
    """Return a mask covering ``width`` bits starting at bit ``lsb``.

    >>> hex(field_mask(4, 4))
    '0xf0'
    """
    if lsb < 0:
        raise FixedPointError(f"field lsb must be non-negative, got {lsb}")
    return bit_mask(width) << lsb


def to_unsigned(values: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret two's-complement signed values as ``width``-bit patterns.

    The result is an ``int64`` array whose elements lie in
    ``[0, 2**width)``.  This is the canonical entry point for feeding signed
    samples into the bit-accurate memory model.
    """
    arr = np.asarray(values, dtype=np.int64)
    return np.bitwise_and(arr, bit_mask(width))


def to_signed(patterns: np.ndarray, width: int) -> np.ndarray:
    """Reinterpret ``width``-bit patterns as two's-complement signed values.

    Inverse of :func:`to_unsigned`; returns ``int64``.  Branch-free:
    subtracting ``sign_bit << 1`` exactly when the sign bit is set
    equals the conditional ``magnitude - 2**width`` without
    materialising a boolean select (this sits on every fabric read of
    the trial-batched hot path).
    """
    arr = np.asarray(patterns, dtype=np.int64)
    magnitude = np.bitwise_and(arr, bit_mask(width))
    # (m ^ 2**(w-1)) - 2**(w-1): adds the offset below the sign point,
    # subtracts it above — two's complement in two vector ops.
    sign_bit = np.int64(1) << np.int64(width - 1)
    return np.bitwise_xor(magnitude, sign_bit) - sign_bit


#: Whether the running numpy provides the native popcount ufunc
#: (numpy >= 2.0).  Exposed so the micro-benchmarks can report which
#: implementation they measured.
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_swar(arr: np.ndarray) -> np.ndarray:
    """SWAR (parallel-bits) popcount for numpy < 2.0.

    The classic 64-bit divide-and-conquer reduction: pair sums, nibble
    sums, then a multiply-accumulate folding all byte counts into the
    top byte.  Works on any shape; ~5 vector ops per element versus a
    Python loop per bit.
    """
    x = arr.astype(np.uint64)
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return ((x * h01) >> np.uint64(56)).astype(np.int64)


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count (number of set bits).

    Uses :func:`numpy.bitwise_count` (a native ufunc, numpy >= 2.0) when
    available and a vectorised SWAR reduction otherwise; inputs must be
    non-negative.  Shape-agnostic — the trial-batched pipeline feeds it
    ``(n_trials, n_words)`` arrays.
    """
    arr = np.asarray(values)
    if arr.size and int(arr.min()) < 0:
        raise FixedPointError("popcount requires non-negative bit patterns")
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(arr).astype(np.int64)
    return _popcount_swar(np.asarray(arr, dtype=np.int64))


def parity(values: np.ndarray) -> np.ndarray:
    """Per-element XOR-reduction of all bits (0 for even parity, 1 for odd)."""
    return np.bitwise_and(popcount(values), 1)


def sign_run_length(values: np.ndarray, width: int) -> np.ndarray:
    """Length of the run of identical most-significant bits per word.

    For a ``width``-bit two's-complement word, the result counts how many
    leading bits (starting at the MSB) share the MSB's value.  The result is
    in ``[1, width]``; it equals ``width`` exactly for the all-zeros and
    all-ones patterns.

    This is the quantity DREAM's write-path logic computes: the number of
    sign-extension bits that carry no information beyond the sign itself.

    The implementation is branch-free: XOR-ing the word with a copy of its
    MSB replicated everywhere turns the leading run into leading zeros,
    whose count is ``width`` minus the folded word's bit length.  The bit
    length comes from the exact base-2 exponent :func:`numpy.frexp`
    reports — ``folded`` fits far below the 2**53 double-precision
    ceiling, so the conversion is lossless (and three vector ops replace
    the ``width`` threshold comparisons this function historically made
    per word; it is the hottest kernel of DREAM's batched encode path).
    """
    if width > 52:  # pragma: no cover - EMTs cap payloads at 32 bits
        raise FixedPointError(
            f"sign_run_length supports widths <= 52, got {width}"
        )
    patterns = to_unsigned(values, width)
    msb = np.bitwise_and(patterns >> (width - 1), 1)
    # Replicate the MSB across the full word, XOR to make the run zeros.
    replicated = msb * np.int64(bit_mask(width))
    folded = np.bitwise_xor(patterns, replicated)
    # frexp: folded = m * 2**e with m in [0.5, 1) -> e == bit_length.
    # folded's MSB is zero by construction (it equals the word's MSB
    # XOR itself), so bit_length <= width - 1 and the run lands in
    # [1, width] without clamping; frexp(0) reports exponent 0, mapping
    # the all-equal word to the full-width run.
    bit_length = np.frexp(folded.astype(np.float64))[1]
    return np.int64(width) - bit_length.astype(np.int64)


def extract_bit(values: np.ndarray, position: int) -> np.ndarray:
    """Return bit ``position`` (0 = LSB) of each element as 0/1 ``int64``."""
    arr = np.asarray(values).astype(np.int64)
    return np.bitwise_and(arr >> np.int64(position), 1)


def set_bit(values: np.ndarray, position: int) -> np.ndarray:
    """Return a copy of ``values`` with bit ``position`` forced to 1."""
    arr = np.asarray(values).astype(np.int64)
    return np.bitwise_or(arr, np.int64(1) << np.int64(position))


def clear_bit(values: np.ndarray, position: int) -> np.ndarray:
    """Return a copy of ``values`` with bit ``position`` forced to 0."""
    arr = np.asarray(values).astype(np.int64)
    return np.bitwise_and(arr, ~(np.int64(1) << np.int64(position)))


def pack_fields(fields: list[tuple[np.ndarray, int]]) -> np.ndarray:
    """Pack ``(values, width)`` pairs into single words, first pair at LSB.

    Each ``values`` array must already fit in its ``width`` bits.

    >>> import numpy as np
    >>> pack_fields([(np.array([3]), 2), (np.array([1]), 1)])
    array([7])
    """
    if not fields:
        raise FixedPointError("pack_fields requires at least one field")
    result = None
    lsb = 0
    for values, width in fields:
        arr = np.asarray(values).astype(np.int64)
        if arr.size and (int(arr.max()) > bit_mask(width) or int(arr.min()) < 0):
            raise FixedPointError(
                f"field values do not fit in {width} bits"
            )
        shifted = arr << np.int64(lsb)
        result = shifted if result is None else np.bitwise_or(result, shifted)
        lsb += width
    return result


def unpack_field(words: np.ndarray, lsb: int, width: int) -> np.ndarray:
    """Extract a ``width``-bit field starting at bit ``lsb`` from each word."""
    arr = np.asarray(words).astype(np.int64)
    return np.bitwise_and(arr >> np.int64(lsb), bit_mask(width))
