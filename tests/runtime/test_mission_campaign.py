"""Policy x scenario sweeps through the campaign engine.

This is the PR's acceptance gate: a grid of >= 3 policies x >= 3 shipped
scenarios runs through the existing ``repro.campaign`` runner and store
(resume included), and on the lifetime-vs-worst-window-quality plane the
hysteresis controller strictly dominates a static operating point that
sits on the static Pareto frontier.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.campaign.analysis import pareto_frontier

#: Static design points (the paper's answer) plus the adaptive policies.
STATIC_POLICIES = tuple(
    {"name": "static", "params": {"emt": "secded", "voltage": voltage}}
    for voltage in (0.65, 0.70, 0.80)
)
ADAPTIVE_POLICIES = ("quality", "soc", "hysteresis")
SCENARIOS = ("overnight", "active_day", "harvester")


def mission_campaign(name: str = "mission-grid") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="mission",
        axes={
            "policy": STATIC_POLICIES + ADAPTIVE_POLICIES,
            "scenario": SCENARIOS,
        },
        # Scaled timelines keep the sweep fast while preserving every
        # segment proportion and stress episode.
        fixed={"duration_scale": 0.1, "n_probe": 2, "probe_duration_s": 3.0},
    )


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One shared sweep: first run executes, second resumes from disk."""
    store = ResultStore(
        tmp_path_factory.mktemp("campaigns") / "mission-grid.jsonl"
    )
    first = run_campaign(mission_campaign(), store=store, n_workers=2)
    resumed = run_campaign(mission_campaign(), store=store)
    return first, resumed


def records_for(result, scenario: str) -> list[dict]:
    return [
        record
        for record in result.ok_records()
        if record["coords"]["scenario"] == scenario
    ]


class TestEvaluatorValidation:
    def test_missing_scenario_and_policy_fail_descriptively(self):
        from repro.campaign.evaluators import evaluate_point
        from repro.campaign.spec import CampaignPoint
        from repro.errors import CampaignError

        with pytest.raises(CampaignError, match="'scenario' name"):
            evaluate_point(
                CampaignPoint(
                    kind="mission", coords={"policy": "soc"}, fixed={}
                )
            )
        with pytest.raises(CampaignError, match="needs a 'policy'"):
            evaluate_point(
                CampaignPoint(
                    kind="mission",
                    coords={"scenario": "overnight"},
                    fixed={"duration_scale": 0.01},
                )
            )


class TestSweepMechanics:
    def test_grid_covers_policies_by_scenarios(self, sweep):
        first, _ = sweep
        assert len(first.records) == len(STATIC_POLICIES + ADAPTIVE_POLICIES) * len(
            SCENARIOS
        )
        assert first.n_failed == 0
        assert first.n_executed == len(first.records)

    def test_resume_executes_nothing(self, sweep):
        first, resumed = sweep
        assert resumed.n_executed == 0
        assert resumed.n_cached == len(first.records)
        assert [r["result"] for r in resumed.records] == [
            r["result"] for r in first.records
        ]

    def test_results_carry_mission_metrics(self, sweep):
        first, _ = sweep
        for record in first.ok_records():
            result = record["result"]
            assert {"lifetime_days", "mean_snr_db", "worst_snr_db",
                    "n_switches", "n_violations", "survived"} <= set(result)


class TestAdaptiveDominance:
    """The acceptance criterion, verified scenario by scenario."""

    def static_frontier(self, records) -> list[dict]:
        statics = [
            r for r in records if isinstance(r["coords"]["policy"], dict)
        ]
        assert len(statics) == len(STATIC_POLICIES)
        return pareto_frontier(
            statics,
            x_key="lifetime_days",
            y_key="worst_snr_db",
            minimize_x=False,
            maximize_y=True,
        )

    def adaptive(self, records, name: str) -> dict:
        return next(
            r["result"] for r in records if r["coords"]["policy"] == name
        )

    @staticmethod
    def dominates(a: dict, b: dict) -> bool:
        """Pareto domination on (lifetime, worst window quality)."""
        no_worse = (
            a["lifetime_days"] >= b["lifetime_days"]
            and a["worst_snr_db"] >= b["worst_snr_db"]
        )
        better = (
            a["lifetime_days"] > b["lifetime_days"]
            or a["worst_snr_db"] > b["worst_snr_db"]
        )
        return no_worse and better

    def test_hysteresis_dominates_a_static_frontier_point(self, sweep):
        first, _ = sweep
        dominated_somewhere = []
        for scenario in SCENARIOS:
            records = records_for(first, scenario)
            frontier = self.static_frontier(records)
            assert frontier, f"no static frontier in {scenario}"
            hysteresis = self.adaptive(records, "hysteresis")
            dominated = [
                point
                for point in frontier
                if self.dominates(hysteresis, point["result"])
            ]
            dominated_somewhere.append(bool(dominated))
        # The criterion asks for at least one scenario; the shipped
        # timelines deliver it in every one.
        assert any(dominated_somewhere)
        assert all(dominated_somewhere)

    def test_hysteresis_beats_best_safe_static_on_lifetime(self, sweep):
        """Against the static point with the best worst-window quality
        (the conservative design-time choice), the adaptive controller
        buys strictly longer lifetime at no worst-quality cost."""
        first, _ = sweep
        for scenario in SCENARIOS:
            records = records_for(first, scenario)
            frontier = self.static_frontier(records)
            safest = max(
                (p["result"] for p in frontier),
                key=lambda r: (r["worst_snr_db"], r["lifetime_days"]),
            )
            hysteresis = self.adaptive(records, "hysteresis")
            assert hysteresis["worst_snr_db"] >= safest["worst_snr_db"]
            assert hysteresis["lifetime_days"] > safest["lifetime_days"]

    def test_soc_scheduler_survives_where_top_static_dies(self, sweep):
        """The harvester scenario's buffer cannot sustain the top rung;
        the state-of-charge scheduler degrades instead of dying."""
        first, _ = sweep
        records = records_for(first, "harvester")
        top_static = next(
            r["result"]
            for r in records
            if isinstance(r["coords"]["policy"], dict)
            and r["coords"]["policy"]["params"]["voltage"] == 0.80
        )
        soc = self.adaptive(records, "soc")
        assert not top_static["survived"]
        assert soc["survived"]
