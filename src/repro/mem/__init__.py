"""Faulty-memory substrate: the voltage-scaled data memory of the paper.

The paper's INYU-like platform stores application buffers in a 32 kB
shared SRAM (16 banks) whose supply is scaled below nominal, causing
permanent stuck-at faults at random bit positions.  This package models
that memory bit-accurately:

* :mod:`repro.mem.faults` — stuck-at fault maps: Monte-Carlo sampling at a
  given Bit Error Rate (Fig 4) and deterministic single-position maps
  (Fig 2's significance sweep).
* :mod:`repro.mem.layout` — the banked address space and the random
  logical-to-physical scrambling the paper invokes to justify fresh fault
  locations per run.
* :mod:`repro.mem.sram` — the bit-accurate banked SRAM with access
  counters.
* :mod:`repro.mem.fabric` — :class:`~repro.mem.fabric.MemoryFabric`, the
  store/load interface applications use; every buffer round-trip passes
  through the configured EMT and the fault map.
"""

from .fabric import BufferHandle, MemoryFabric
from .faults import (
    FaultMap,
    empty_fault_map,
    position_fault_map,
    position_fault_map_batch,
    sample_fault_map,
    sample_fault_map_batch,
)
from .layout import AddressMap, MemoryGeometry
from .sram import FaultySRAM

__all__ = [
    "BufferHandle",
    "MemoryFabric",
    "FaultMap",
    "empty_fault_map",
    "position_fault_map",
    "position_fault_map_batch",
    "sample_fault_map",
    "sample_fault_map_batch",
    "AddressMap",
    "MemoryGeometry",
    "FaultySRAM",
]
