"""Cross-module integration tests: the paper's pipelines end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import PAPER_APPS, make_app
from repro.apps.base import clean_fabric
from repro.emt import DreamEMT, HybridEMT, NoProtection, SecDedEMT, VoltageRange
from repro.energy import TECH_32NM_LP
from repro.mem import AddressMap, MemoryFabric, sample_fault_map
from repro.mem.layout import PAPER_GEOMETRY
from repro.signals import load_record


@pytest.fixture(scope="module")
def samples():
    return load_record("106", duration_s=6.0).samples


class TestAllAppsAllEmts:
    @pytest.mark.parametrize("app_name", sorted(PAPER_APPS))
    def test_clean_fabric_is_bit_exact_for_every_emt(self, app_name, samples):
        """With zero faults, every EMT is transparent to every app."""
        app = make_app(app_name)
        reference = app.run(samples, clean_fabric())
        for emt in (DreamEMT(), SecDedEMT()):
            out = app.run(samples, MemoryFabric(emt))
            assert np.array_equal(out, reference), (app_name, emt.name)

    @pytest.mark.parametrize("app_name", sorted(PAPER_APPS))
    def test_protection_ordering_under_moderate_faults(self, app_name, samples):
        """At BER 3e-4 (single-error regime): both protected variants
        beat no protection for every application."""
        app = make_app(app_name)
        snrs = {}
        for emt in (NoProtection(), DreamEMT(), SecDedEMT()):
            values = []
            for seed in range(3):
                rng = np.random.default_rng(seed)
                shared = sample_fault_map(
                    PAPER_GEOMETRY.n_words, 22, 3e-4, rng
                )
                fabric = MemoryFabric(
                    emt, fault_map=shared.restricted_to(emt.stored_bits)
                )
                out = app.run(samples, fabric)
                values.append(app.output_snr(samples, out))
            snrs[emt.name] = float(np.mean(values))
        assert snrs["dream"] > snrs["none"], snrs
        assert snrs["secded"] > snrs["none"], snrs


class TestVoltageDrivenPipeline:
    def test_ber_to_quality_chain(self, samples):
        """Technology BER -> fault map -> fabric -> app -> SNR, at two
        voltages with the expected relation."""
        app = make_app("dwt")
        results = {}
        for voltage in (0.55, 0.80):
            ber = TECH_32NM_LP.ber(voltage)
            rng = np.random.default_rng(11)
            fm = sample_fault_map(PAPER_GEOMETRY.n_words, 16, ber, rng)
            fabric = MemoryFabric(NoProtection(), fault_map=fm)
            out = app.run(samples, fabric)
            results[voltage] = app.output_snr(samples, out)
        assert results[0.80] > results[0.55] + 30

    def test_hybrid_emt_runs_apps(self, samples):
        """The Section VI-C deployment object drives a real app."""
        members = {
            e.name: e for e in (NoProtection(), DreamEMT(), SecDedEMT())
        }
        policy = [
            VoltageRange(0.85, 0.90, "none"),
            VoltageRange(0.65, 0.85, "dream"),
            VoltageRange(0.50, 0.65, "secded"),
        ]
        hybrid = HybridEMT(members, policy, voltage=0.70)
        app = make_app("morphology")
        reference = app.reference_output(samples)

        out = app.run(samples, MemoryFabric(hybrid))
        assert np.array_equal(out, reference)

        hybrid.set_voltage(0.55)
        assert hybrid.active.name == "secded"
        out = app.run(samples, MemoryFabric(hybrid))
        assert np.array_equal(out, reference)  # still fault-free fabric


class TestScrambledMonteCarlo:
    def test_fixed_defects_plus_scrambling_vary_impact(self, samples):
        """Section V: one *fixed* physical defect pattern plus address
        randomisation yields run-to-run variation in output quality."""
        app = make_app("dwt")
        rng = np.random.default_rng(99)
        fixed_defects = sample_fault_map(PAPER_GEOMETRY.n_words, 16, 2e-4, rng)
        snrs = []
        for seed in range(6):
            amap = AddressMap(
                PAPER_GEOMETRY, rng=np.random.default_rng(seed)
            )
            fabric = MemoryFabric(
                NoProtection(), fault_map=fixed_defects, address_map=amap
            )
            out = app.run(samples, fabric)
            snrs.append(round(app.output_snr(samples, out), 3))
        assert len(set(snrs)) > 1


class TestMemoryBudget:
    @pytest.mark.parametrize("app_name", sorted(PAPER_APPS))
    def test_apps_fit_the_32kb_memory(self, app_name, samples):
        """Every case study must fit its static buffers in the paper's
        32 kB shared memory."""
        app = make_app(app_name)
        fabric = clean_fabric()
        app.run(samples, fabric)
        assert fabric.words_allocated <= PAPER_GEOMETRY.n_words


class TestDecodeStatsPlumbing:
    def test_fabric_accumulates_decoder_stats(self, samples):
        rng = np.random.default_rng(3)
        emt = SecDedEMT()
        fm = sample_fault_map(PAPER_GEOMETRY.n_words, 22, 2e-3, rng)
        fabric = MemoryFabric(emt, fault_map=fm)
        make_app("dwt").run(samples, fabric)
        stats = fabric.stats.decode
        assert stats.words == fabric.stats.data_reads
        assert stats.corrected > 0
