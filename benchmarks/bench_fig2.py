"""E1 — regenerate Fig 2: SNR vs bit position of injected stuck-at errors.

One benchmark per application (the sweep is deterministic — 16 positions
x 2 stuck values x the record corpus); the combined two-table report
(stuck-at-1 / stuck-at-0, all five case studies) is emitted at session
end, matching the series plotted in the paper's Fig 2.
"""

from __future__ import annotations

import pytest

from repro.exp.fig2 import Fig2Result, run_fig2
from repro.exp.report import format_fig2

APP_NAMES = (
    "dwt",
    "matrix_filter",
    "compressed_sensing",
    "morphology",
    "delineation",
)


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_fig2_app(benchmark, app_name, bench_config, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig2(app_names=(app_name,), config=bench_config),
        rounds=1,
        iterations=1,
    )
    merged: Fig2Result = report_sink.shared.setdefault(
        "fig2", Fig2Result(config=bench_config)
    )
    merged.snr_db.update(result.snr_db)
    report_sink.add("fig2", format_fig2(merged))

    # Shape assertions from the paper's Section III findings.
    for stuck in (0, 1):
        series = result.series(app_name, stuck)
        assert series[15] < series[1], (
            f"{app_name}: MSB errors must hurt more than LSB errors"
        )
