"""Shared fixtures for the experiment-service tests.

The daemon deliberately mutates process-global state — the sharding
environment knob, the tracer's configured directory — so every test
here runs against private tmp roots and restores the environment on the
way out, exactly like the obs suite does for the tracer.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro import obs
from repro.campaign.store import SHARDS_ENV
from repro.errors import ServiceError
from repro.obs.core import (
    ENV_DIR,
    ENV_FILE,
    ENV_FLAG,
    ENV_PARENT,
    ENV_RUN,
    ENV_TRACEMALLOC,
)
from repro.service import ExperimentService, ServiceClient

_GLOBAL_ENV = (
    ENV_FILE,
    ENV_RUN,
    ENV_PARENT,
    ENV_DIR,
    ENV_FLAG,
    ENV_TRACEMALLOC,
    SHARDS_ENV,
    "REPRO_SERVICE_DIR",
    "REPRO_CAMPAIGN_DIR",
    "REPRO_CHAOS",
    "REPRO_RETRY_MAX_ATTEMPTS",
    "REPRO_WORK_TIMEOUT_S",
)


def _reset() -> None:
    obs.disable()
    for key in _GLOBAL_ENV:
        os.environ.pop(key, None)


@pytest.fixture(autouse=True)
def _isolated_service_env(tmp_path, monkeypatch):
    """Private service/store roots per test; no global state leaks out."""
    _reset()
    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "service"))
    monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path / "stores"))
    yield
    _reset()


@pytest.fixture()
def service_paths(tmp_path):
    """The per-test root/store/trace directories, as one namespace."""
    return {
        "root": tmp_path / "service",
        "store": tmp_path / "stores",
        "trace": tmp_path / "traces",
    }


@contextmanager
def daemon(paths, **overrides):
    """An in-process daemon on private roots, torn down on exit.

    Runs :meth:`ExperimentService.serve` in a thread (signal-handler
    installation degrades gracefully off the main thread) and yields
    ``(service, client)`` once the socket answers pings.
    """
    settings = {
        "root": paths["root"],
        "workers": 1,
        "store_dir": paths["store"],
        "trace_dir": paths["trace"],
        "shards": 2,
        "poll_s": 0.02,
    }
    settings.update(overrides)
    service = ExperimentService(**settings)
    exit_code: list[int] = []
    thread = threading.Thread(
        target=lambda: exit_code.append(service.serve()), daemon=True
    )
    thread.start()
    client = ServiceClient(root=service.root, timeout_s=5.0)
    deadline = time.monotonic() + 15.0
    while True:
        try:
            client.ping()
            break
        except ServiceError:
            if not thread.is_alive():
                raise AssertionError("daemon thread died during startup")
            if time.monotonic() > deadline:
                raise AssertionError("daemon never became reachable")
            time.sleep(0.05)
    try:
        yield service, client
    finally:
        service.request_stop()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "daemon failed to drain and stop"


@pytest.fixture()
def run_daemon(service_paths):
    """Factory fixture: ``with run_daemon(workers=2) as (service, client)``."""

    def _start(**overrides):
        return daemon(service_paths, **overrides)

    return _start
