"""Single-parity EMT — a detection-only baseline for the ablation benches.

Not part of the paper's comparison, but the natural lower bound of the
EMT design space: one parity bit per word, stored in the faulty memory
like ECC's check bits.  The decoder can *detect* an odd number of errors
but has no way to locate them, so it always returns the raw data bits —
its value is purely as a monitoring signal (``detected_uncorrectable``
counts in :class:`~repro.emt.base.DecodeStats`).

Including it in the energy/quality sweeps shows that detection without
correction buys no output quality at a non-zero cost, framing why the
paper jumps straight from no-protection to DREAM/ECC.
"""

from __future__ import annotations

import numpy as np

from .._bitops import bit_mask, parity
from ..errors import EMTError
from .base import EMT, DecodeStats

__all__ = ["ParityEMT"]


class ParityEMT(EMT):
    """Even-parity protection: one extra bit in the faulty memory."""

    name = "parity"

    @property
    def stored_bits(self) -> int:
        return self.data_bits + 1

    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, None]:
        data = self._check_payload(payload, checked)
        check = parity(data)
        stored = np.bitwise_or(data, check << np.int64(self.data_bits))
        return stored, None

    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        codeword = self._check_stored(stored, checked)
        if stats is not None:
            stats.words += codeword.size
            stats.detected_uncorrectable += int(
                np.count_nonzero(parity(codeword) == 1)
            )
        return np.bitwise_and(codeword, bit_mask(self.data_bits))

    def encode_word(self, payload: int) -> tuple[int, int]:
        if not 0 <= payload <= bit_mask(self.data_bits):
            raise EMTError("payload out of range")
        check = bin(payload).count("1") & 1
        return payload | (check << self.data_bits), 0

    def decode_word(self, stored: int, side: int) -> int:
        if not 0 <= stored <= bit_mask(self.stored_bits):
            raise EMTError("stored word out of range")
        return stored & bit_mask(self.data_bits)
