"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fft"])

    def test_csv_arguments(self):
        args = build_parser().parse_args(
            ["fig2", "--apps", "dwt, morphology", "--records", "100"]
        )
        assert args.apps == ("dwt", "morphology")
        assert args.records == ("100",)

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.runs == 12
        assert args.emts == ("none", "dream", "secded")
        assert args.workers == 1
        assert args.seed is None

    def test_global_seed_option(self):
        args = build_parser().parse_args(["--seed", "7", "fig4"])
        assert args.seed == 7

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_mission_defaults(self):
        args = build_parser().parse_args(["mission"])
        assert args.scenario == "active_day"
        assert "static-ladder" in args.policies
        assert "hysteresis" in args.policies
        assert args.duration_scale == 1.0

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.apps == ("dwt",)
        assert args.emts == ("none", "dream", "secded")
        assert args.workers == 2
        assert len(args.voltages) == 9

    def test_sweep_voltage_csv(self):
        args = build_parser().parse_args(["sweep", "--voltages", "0.5, 0.9"])
        assert args.voltages == (0.5, 0.9)

    def test_chaos_spec_exports_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert main(["--chaos", "delay:0.0:0.0,seed:3", "overheads"]) == 0
        import os

        assert os.environ.get("REPRO_CHAOS") == "delay:0.0:0.0,seed:3"
        monkeypatch.delenv("REPRO_CHAOS", raising=False)

    def test_malformed_chaos_spec_errors_before_running(
        self, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert main(["--chaos", "kill:2.0", "overheads"]) == 1
        err = capsys.readouterr().err
        assert "malformed chaos clause" in err
        assert "expected kill:P" in err
        # The bad spec was rejected up front, never exported.
        import os

        assert "REPRO_CHAOS" not in os.environ


class TestCommands:
    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "DREAM 5, ECC 6" in out

    def test_energy(self, capsys):
        assert main(["energy"]) == 0
        out = capsys.readouterr().out
        assert "paper: ~34%" in out and "paper: ~55%" in out

    def test_record(self, capsys):
        assert main(["record", "106", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "record 106" in out
        assert "360 Hz" in out

    def test_record_unknown_returns_error(self, capsys):
        assert main(["record", "999"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_fig2_small(self, capsys):
        assert main([
            "fig2", "--apps", "morphology",
            "--records", "100", "--duration", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "stuck-at-1" in out and "stuck-at-0" in out

    def test_fig4_small(self, capsys):
        assert main([
            "fig4", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fig 4.a" in out and "Fig 4.b" in out and "Fig 4.c" in out

    def test_tradeoff_small(self, capsys):
        assert main([
            "tradeoff", "--app", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2", "--tolerance", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "Section VI-C" in out
        assert "12.7" in out  # paper-example table is always appended

    def test_lifetime(self, capsys):
        assert main(["lifetime", "--voltage", "0.65", "--emt", "dream"]) == 0
        out = capsys.readouterr().out
        assert "lifetime" in out
        assert "dream @ 0.65 V" in out

    def test_lifetime_unknown_emt(self, capsys):
        assert main(["lifetime", "--emt", "bch"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_mission_small(self, capsys):
        assert main([
            "mission", "--scenario", "overnight",
            "--duration-scale", "0.02", "--probe-runs", "2",
            "--probe-duration", "2", "--policies",
            "static:secded@0.65,hysteresis",
        ]) == 0
        out = capsys.readouterr().out
        assert "scenario 'overnight'" in out
        assert "adaptive-runtime mission" in out
        assert "static:secded@0.65" in out
        assert "hysteresis" in out

    def test_mission_unknown_scenario(self, capsys):
        assert main(["mission", "--scenario", "mars"]) == 1
        assert "unknown scenario" in capsys.readouterr().err

    def test_mission_bad_policy_token(self, capsys):
        assert main([
            "mission", "--scenario", "overnight", "--policies", "pid",
        ]) == 1
        assert "unknown policy" in capsys.readouterr().err

    def test_fig4_seed_changes_output(self, capsys):
        argv = [
            "fig4", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2",
        ]
        assert main(["--seed", "7", *argv]) == 0
        seed7 = capsys.readouterr().out
        assert main(["--seed", "7", *argv]) == 0
        assert capsys.readouterr().out == seed7  # reproducible
        assert main(["--seed", "8", *argv]) == 0
        assert capsys.readouterr().out != seed7  # seed actually threads


class TestSweep:
    ARGS = [
        "sweep", "--apps", "morphology", "--records", "100",
        "--duration", "3", "--runs", "2", "--workers", "2",
        "--voltages", "0.55,0.65,0.75,0.85,0.9", "--tolerance", "40",
    ]

    def test_runs_resumes_and_extracts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "5 points — 5 executed, 0 cached, 0 failed" in out
        assert "15 points — 15 executed, 0 cached, 0 failed" in out
        assert "Pareto frontier" in out
        assert "operating points at -40.0 dB" in out
        # The paper's Section VI-C operating points are always appended.
        assert "12.7" in out and "30.6" in out and "39.5" in out
        assert (tmp_path / "sweep-quality.jsonl").exists()
        assert (tmp_path / "sweep-energy.jsonl").exists()

        # Second invocation resumes from the store: zero new executions.
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "5 points — 0 executed, 5 cached, 0 failed" in out
        assert "15 points — 0 executed, 15 cached, 0 failed" in out

    def test_fresh_reexecutes_but_still_writes_store(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        argv = [
            "sweep", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2",
            "--voltages", "0.9", "--fresh",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cached" in out  # second --fresh run re-executed everything
        # ... but the recomputed records supersede the stored ones, so a
        # later non-fresh run resumes from fresh data.
        assert (tmp_path / "sweep-quality.jsonl").exists()
        assert main(argv[:-1]) == 0  # without --fresh
        out = capsys.readouterr().out
        assert "0 executed, 1 cached" in out

    def test_multi_app_sweep_prices_each_app_workload(
        self, capsys, tmp_path, monkeypatch
    ):
        """The energy grid sweeps the workload's app as an axis, so each
        application's operating points use its own workload energy."""
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert main([
            "sweep", "--apps", "morphology,dwt", "--records", "100",
            "--duration", "3", "--runs", "2",
            "--voltages", "0.9", "--tolerance", "40",
        ]) == 0
        out = capsys.readouterr().out
        # 2 quality points (2 apps x 1 V); 6 energy points (3 EMTs x 1 V
        # x 2 workload apps).
        assert "2 points — 2 executed" in out
        assert "6 points — 6 executed" in out
        assert "[morphology]" in out and "[dwt]" in out

    def test_unknown_app_fails_cleanly(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert main(["sweep", "--apps", "fft", "--voltages", "0.9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_baseline_fails_before_the_campaign(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert main(["sweep", "--emts", "dream,secded"]) == 1
        assert "baseline 'none'" in capsys.readouterr().err
        assert not list(tmp_path.iterdir())  # nothing ran or was stored

    def test_growing_app_list_keeps_cached_energy_points(
        self, capsys, tmp_path, monkeypatch
    ):
        """Energy point hashes depend only on their own app's workload,
        so extending --apps must not invalidate stored energy results."""
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        base = [
            "sweep", "--records", "100", "--duration", "3", "--runs", "2",
            "--voltages", "0.9", "--tolerance", "40",
        ]
        assert main([*base, "--apps", "dwt"]) == 0
        capsys.readouterr()
        assert main([*base, "--apps", "dwt,morphology"]) == 0
        out = capsys.readouterr().out
        # dwt's 3 energy points resume from the store; morphology's 3 run.
        assert "6 points — 3 executed, 3 cached" in out

    def test_nominal_voltage_failure_skips_analysis_not_report(
        self, capsys, tmp_path, monkeypatch
    ):
        """A failed point at nominal supply must not abort the report:
        the app's analysis is skipped, the rest still prints, exit is 1."""
        from repro.campaign import evaluators, runner

        def flaky(point):
            if point.kind == "montecarlo" and point.params["voltage"] == 0.9:
                raise RuntimeError("injected fault at nominal")
            return evaluators.evaluate_point(point)

        monkeypatch.setattr(runner, "evaluate_point", flaky)
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert main([
            "sweep", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2", "--workers", "1",
            "--voltages", "0.85,0.9", "--tolerance", "40",
        ]) == 1
        captured = capsys.readouterr()
        assert "analysis skipped" in captured.err
        assert "results above are partial" in captured.err
        assert "12.7" in captured.out  # paper-example table still printed

    def test_failed_points_give_partial_results_and_nonzero_exit(
        self, capsys, tmp_path, monkeypatch
    ):
        """A sweep with failed grid points must not exit 0: scripts
        consuming its output need to see the result is partial."""
        from repro.campaign import evaluators, runner

        def flaky(point):
            if point.kind == "montecarlo" and point.params["voltage"] == 0.75:
                raise RuntimeError("injected fault")
            return evaluators.evaluate_point(point)

        monkeypatch.setattr(runner, "evaluate_point", flaky)
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        assert main([
            "sweep", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2", "--workers", "1",
            "--voltages", "0.65,0.75,0.85,0.9", "--tolerance", "40",
        ]) == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "results above are partial" in captured.err
        # The planned grid is threaded into the extraction, so no safe
        # range crosses the unvalidated 0.75 V gap.
        for line in captured.out.splitlines():
            if "down to" in line:
                assert "0.65" not in line


class TestCohortParser:
    def test_defaults(self):
        args = build_parser().parse_args(["cohort"])
        assert args.size == 200
        assert args.policies == ("static", "soc", "hysteresis")
        assert args.workers == 2
        assert args.duration_scale == 1.0

    def test_cache_flags(self):
        args = build_parser().parse_args(["cache", "--clear"])
        assert args.clear and not args.info
        args = build_parser().parse_args(["cache", "--info"])
        assert args.info and not args.clear


class TestCohortCommand:
    ARGS = [
        "cohort", "--size", "6", "--duration-scale", "0.01",
        "--policies", "static:secded@0.65,hysteresis",
        "--probe-runs", "2", "--probe-duration", "2", "--workers", "1",
    ]

    def test_population_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "population fleet" in out
        assert "battery survival" in out
        assert "Pareto frontier" in out
        assert "static:secded@0.65" in out or "static(" in out

    def test_seed_threads_into_population(self, capsys):
        assert main(["--seed", "7", *self.ARGS]) == 0
        seed7 = capsys.readouterr().out
        assert main(["--seed", "7", *self.ARGS]) == 0
        assert capsys.readouterr().out == seed7  # reproducible
        assert main(["--seed", "8", *self.ARGS]) == 0
        assert capsys.readouterr().out != seed7

    def test_bad_mix_rejected(self, capsys):
        assert main(["cohort", "--scenarios", "active_day"]) == 1
        assert "name:weight" in capsys.readouterr().err

    def test_bad_policy_rejected_before_running(self, capsys):
        assert main([*self.ARGS[:-8], "--policies", "pid"]) == 1
        assert "unknown policy" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.cache import shared_cache

        shared_cache().get_or_compute({"k": 1}, lambda: 1)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries:    1" in out
        assert str(tmp_path) in out
        assert main(["cache", "--clear"]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert main(["cache", "--info"]) == 0
        assert "entries:    0" in capsys.readouterr().out


class TestGridFailureExitCodes:
    """`repro sweep`/`repro mission` must exit non-zero when any grid
    point (or the mission itself) fails."""

    def test_sweep_failed_points_exit_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CAMPAIGN_DIR", str(tmp_path))
        import repro.exp.common as common

        def boom(*args, **kwargs):
            raise RuntimeError("injected grid failure")

        monkeypatch.setattr(common, "run_monte_carlo", boom)
        assert main([
            "sweep", "--apps", "morphology", "--records", "100",
            "--duration", "3", "--runs", "2", "--workers", "1",
            "--voltages", "0.9",
        ]) == 1
        err = capsys.readouterr().err
        assert "failed" in err
        assert "injected grid failure" in err

    def test_mission_failure_exits_nonzero(self, capsys, monkeypatch):
        from repro.errors import MissionError
        from repro.runtime import MissionSimulator

        def boom(self, policy):
            raise MissionError("injected mission failure")

        monkeypatch.setattr(MissionSimulator, "run", boom)
        assert main([
            "mission", "--scenario", "overnight",
            "--duration-scale", "0.02",
        ]) == 1
        assert "injected mission failure" in capsys.readouterr().err

    def test_cohort_failed_patients_exit_nonzero(self, capsys, monkeypatch):
        import repro.cohort.fleet as fleet_module
        from repro.errors import MissionError

        original = fleet_module.MissionSimulator.run

        def flaky(self, policy):
            if "p00002" in self.spec.name:
                raise MissionError("injected patient failure")
            return original(self, policy)

        monkeypatch.setattr(fleet_module.MissionSimulator, "run", flaky)
        assert main([
            "cohort", "--size", "4", "--duration-scale", "0.01",
            "--policies", "hysteresis", "--probe-runs", "2",
            "--probe-duration", "2", "--workers", "1",
        ]) == 1
        err = capsys.readouterr().err
        assert "patients failed" in err or "failed: patient" in err
