"""The memory fabric: how applications touch the faulty data memory.

:class:`MemoryFabric` is the integration point between the biomedical
applications and the reliability machinery.  An application declares
named buffers (static allocation, as embedded firmware would), writes
samples into them and reads them back; every round-trip passes through

    EMT encode -> faulty SRAM write .. read -> EMT decode

with DREAM's side information held in a separate always-correct array
(the nominal-voltage mask memory).  Stuck-at corruption therefore reaches
the application exactly where the paper's platform lets it: in the input,
intermediate and output buffers living in the voltage-scaled memory.

The fabric also keeps the counters the energy model consumes (reads and
writes to the data and mask memories) and an optional access trace for
the MPSoC crossbar simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._bitops import to_signed, to_unsigned
from ..emt.base import EMT, DecodeStats, NoProtection
from ..errors import MemoryModelError
from .faults import FaultMap
from .layout import PAPER_GEOMETRY, AddressMap, MemoryGeometry
from .sram import FaultySRAM

__all__ = ["BufferHandle", "AccessEvent", "MemoryFabric"]


@dataclass(frozen=True)
class BufferHandle:
    """A named, statically allocated region of the data memory."""

    name: str
    base: int
    length: int


@dataclass(frozen=True)
class AccessEvent:
    """One batched access, for the crossbar simulator's trace replay."""

    is_write: bool
    base: int
    length: int
    buffer: str


@dataclass
class FabricStats:
    """Aggregate activity counters for one fabric lifetime."""

    data_reads: int = 0
    data_writes: int = 0
    side_reads: int = 0
    side_writes: int = 0
    decode: DecodeStats = field(default_factory=DecodeStats)


class MemoryFabric:
    """Application-facing view of the protected, faulty data memory.

    Args:
        emt: the error-mitigation technique in effect.
        fault_map: permanent defects of the physical array.  Its width
            must equal ``emt.stored_bits`` (use
            :meth:`repro.mem.faults.FaultMap.restricted_to` when sharing
            one defect set across EMTs of different widths, as the paper's
            fair-comparison methodology requires).  ``None`` means a
            defect-free memory.
        geometry: data-memory organisation; defaults to the paper's
            32 kB / 16-bank array, widened to the EMT's stored width.
        address_map: optional logical-to-physical scrambling.
        record_trace: keep an :class:`AccessEvent` list for the MPSoC
            simulator.
        collect_decode_stats: maintain the per-decode correction
            counters in ``stats.decode``.  The Monte-Carlo quality
            drivers only consume SNRs, so they turn this off — the
            counters cost several extra whole-array passes per decode
            (SEC/DED classifies every word three ways to count them).

    Example:
        >>> import numpy as np
        >>> from repro.emt import DreamEMT
        >>> fabric = MemoryFabric(DreamEMT())
        >>> out = fabric.roundtrip("samples", np.array([-5, 123]))
        >>> out.tolist()
        [-5, 123]
    """

    def __init__(
        self,
        emt: EMT,
        fault_map: FaultMap | None = None,
        geometry: MemoryGeometry | None = None,
        address_map: AddressMap | None = None,
        record_trace: bool = False,
        collect_decode_stats: bool = True,
    ) -> None:
        if geometry is None:
            geometry = PAPER_GEOMETRY
        geometry = geometry.with_word_bits(emt.stored_bits)
        if fault_map is not None and fault_map.word_bits != emt.stored_bits:
            raise MemoryModelError(
                f"fault map width {fault_map.word_bits} != EMT stored "
                f"width {emt.stored_bits}; restrict or resample the map"
            )
        self.emt = emt
        self.sram = FaultySRAM(geometry, fault_map, address_map)
        # The mask/side memory runs at nominal supply: plain intact array.
        # For a batched fabric each trial keeps its own side array — side
        # info diverges across trials once corrupted intermediates are
        # re-encoded.
        side_shape = (
            (self.sram.n_trials, geometry.n_words)
            if self.sram.is_batched
            else (geometry.n_words,)
        )
        self._side = (
            np.zeros(side_shape, dtype=np.int64) if emt.side_bits else None
        )
        self._buffers: dict[str, BufferHandle] = {}
        self._next_free = 0
        self.stats = FabricStats()
        self.collect_decode_stats = collect_decode_stats
        self.trace: list[AccessEvent] | None = [] if record_trace else None

    @property
    def n_trials(self) -> int:
        """Stacked Monte-Carlo trials this fabric simulates (1 = classic)."""
        return self.sram.n_trials

    @property
    def is_batched(self) -> bool:
        """Whether buffers carry a leading ``(n_trials, ...)`` axis."""
        return self.sram.is_batched

    def trial(self, index: int) -> "MemoryFabric":
        """A fresh single-trial fabric for row ``index`` of a batched map.

        The sequential-fallback path of
        :meth:`repro.apps.base.BiomedicalApp.run_batch` uses this to run
        applications whose control flow cannot be vectorised across
        trials; each returned fabric starts with empty buffers, exactly
        like one iteration of the historical per-trial loop.  Address
        scrambling and stats collection carry over; the access trace
        does not (per-trial traces would be discarded with the
        throwaway fabric).
        """
        return MemoryFabric(
            self.emt,
            fault_map=self.sram.fault_map.trial(index),
            geometry=self.sram.geometry,
            address_map=self.sram.address_map,
            collect_decode_stats=self.collect_decode_stats,
        )

    # -- allocation ---------------------------------------------------------

    def allocate(self, name: str, n_words: int) -> BufferHandle:
        """Reserve ``n_words`` for buffer ``name`` (idempotent by name)."""
        if n_words <= 0:
            raise MemoryModelError(
                f"buffer size must be positive, got {n_words}"
            )
        existing = self._buffers.get(name)
        if existing is not None:
            if existing.length < n_words:
                raise MemoryModelError(
                    f"buffer {name!r} already allocated with "
                    f"{existing.length} words; cannot grow to {n_words}"
                )
            return existing
        if self._next_free + n_words > self.sram.geometry.n_words:
            raise MemoryModelError(
                f"out of data memory allocating {n_words} words for "
                f"{name!r} ({self._next_free} already in use of "
                f"{self.sram.geometry.n_words})"
            )
        handle = BufferHandle(name=name, base=self._next_free, length=n_words)
        self._buffers[name] = handle
        self._next_free += n_words
        return handle

    @property
    def words_allocated(self) -> int:
        """Words currently reserved by named buffers."""
        return self._next_free

    def buffer(self, name: str) -> BufferHandle:
        """Look up an allocated buffer by name."""
        if name not in self._buffers:
            raise MemoryModelError(f"buffer {name!r} was never allocated")
        return self._buffers[name]

    # -- data movement ------------------------------------------------------

    def write(self, handle: BufferHandle, values: np.ndarray) -> None:
        """Encode signed values and store them at the buffer's base.

        On a batched fabric ``values`` may be ``(n_trials, k)`` — one
        row per trial — or 1-D, in which case the same words are written
        to every trial (encoded once and broadcast, since the EMTs are
        deterministic per word).
        """
        signed = np.asarray(values, dtype=np.int64)
        if signed.ndim == 2 and not self.is_batched:
            raise MemoryModelError(
                "2-D writes require a batched fabric (stacked fault map)"
            )
        if signed.ndim == 2 and signed.shape[0] != self.n_trials:
            raise MemoryModelError(
                f"writing {signed.shape[0]} trial rows into a "
                f"{self.n_trials}-trial fabric"
            )
        if signed.ndim not in (1, 2):
            raise MemoryModelError(
                "fabric buffers are one-dimensional (per trial)"
            )
        n_words = int(signed.shape[-1])
        if n_words > handle.length:
            raise MemoryModelError(
                f"writing {n_words} words into {handle.length}-word "
                f"buffer {handle.name!r}"
            )
        # ``to_unsigned`` masks to ``data_bits``, so the codec's range
        # scan is redundant here.
        payload = to_unsigned(signed, self.emt.data_bits)
        stored, side = self.emt.encode(payload, checked=True)
        # Static buffers are contiguous: slice addressing lets the SRAM
        # and fault masks work on views instead of gather copies.  The
        # EMT's codewords fit the array width by construction, so the
        # per-write range scan is skipped.
        addresses = slice(handle.base, handle.base + n_words)
        self.sram.write(addresses, stored, checked=True)
        self.stats.data_writes += n_words * self.n_trials
        if side is not None:
            if self._side is None:  # pragma: no cover - guarded by side_bits
                raise MemoryModelError("EMT produced side info unexpectedly")
            self._side[..., addresses] = side
            self.stats.side_writes += n_words * self.n_trials
        if self.trace is not None:
            self.trace.append(
                AccessEvent(True, handle.base, n_words, handle.name)
            )

    def read(self, handle: BufferHandle, n_words: int | None = None) -> np.ndarray:
        """Load, decode and sign-extend the buffer's first ``n_words``.

        Returns ``(n_trials, n_words)`` on a batched fabric — the whole
        Monte-Carlo batch decoded in one vectorised pass.
        """
        count = handle.length if n_words is None else n_words
        if not 0 < count <= handle.length:
            raise MemoryModelError(
                f"cannot read {count} words from {handle.length}-word "
                f"buffer {handle.name!r}"
            )
        addresses = slice(handle.base, handle.base + count)
        # View read: every EMT decoder derives fresh arrays before the
        # fabric hands anything to the application, so the cells are
        # never exposed to mutation.
        stored = self.sram.read(addresses, copy=False)
        self.stats.data_reads += count * self.n_trials
        side = None
        if self._side is not None:
            side = self._side[..., addresses]
            self.stats.side_reads += count * self.n_trials
        # Cells only ever hold ``word_bits`` patterns, so the codec's
        # range scan is redundant here.
        payload = self.emt.decode(
            stored,
            side,
            self.stats.decode if self.collect_decode_stats else None,
            checked=True,
        )
        if self.trace is not None:
            self.trace.append(
                AccessEvent(False, handle.base, count, handle.name)
            )
        return to_signed(payload, self.emt.data_bits)

    @property
    def window_stacking(self) -> bool:
        """Whether applications may fold their window loop into the batch.

        On a batched fabric each :meth:`roundtrip` is a pure
        write-then-read of the same addresses, so successive processing
        windows are independent and can ride through the pipeline as an
        extra ``(n_trials, n_windows, k)`` axis — the corruption every
        window sees is the per-address stuck-at mask, which does not
        depend on what a previous window stored.  Disabled when an
        access trace is recorded (the trace must keep its per-window
        event granularity) or the address space is scrambled (the fast
        path indexes fault masks by logical address).
        """
        return (
            self.is_batched
            and self.trace is None
            and self.sram.address_map is None
        )

    def roundtrip(self, name: str, values: np.ndarray) -> np.ndarray:
        """Write ``values`` to buffer ``name`` and read them straight back.

        The idiom applications use at every pipeline-stage boundary: the
        stage's result is parked in the faulty memory and whatever
        survives is what the next stage computes on.  Buffer sizing uses
        the per-trial word count, so batched and single-trial runs share
        one static allocation layout (identical addresses — a
        precondition for bit-identical corruption).

        On a batched fabric, 3-D ``(n_trials | 1, n_windows, k)`` values
        take the window-stacked fast path (see :attr:`window_stacking`):
        every window of every trial round-trips in one vectorised pass,
        bit-identical to looping the windows through :meth:`write` /
        :meth:`read` one at a time.
        """
        signed = np.asarray(values, dtype=np.int64)
        n_words = int(signed.shape[-1]) if signed.ndim else 0
        handle = self.allocate(name, max(n_words, 1))
        if signed.ndim == 3:
            return self._roundtrip_stacked(handle, signed)
        self.write(handle, signed)
        return self.read(handle, n_words)

    def _roundtrip_stacked(
        self, handle: BufferHandle, signed: np.ndarray
    ) -> np.ndarray:
        """Window-stacked roundtrip: ``(n_trials, n_windows, k)`` at once.

        Semantically equivalent to looping ``write(w); read(w)`` over
        the window axis: corruption-on-write means every window reads
        back ``apply(encode(window))``, and the cells (and side memory)
        are left holding the *last* window — the sequential end state.
        """
        if not self.window_stacking:
            raise MemoryModelError(
                "window-stacked roundtrips need a batched, untraced fabric"
            )
        n_trials = self.n_trials
        if signed.shape[0] == 1:
            signed = np.broadcast_to(signed, (n_trials,) + signed.shape[1:])
        elif signed.shape[0] != n_trials:
            raise MemoryModelError(
                f"window stack carries {signed.shape[0]} trial rows for a "
                f"{n_trials}-trial fabric"
            )
        n_windows, n_words = int(signed.shape[1]), int(signed.shape[2])
        if n_words > handle.length:
            raise MemoryModelError(
                f"writing {n_words} words into {handle.length}-word "
                f"buffer {handle.name!r}"
            )
        payload = to_unsigned(signed, self.emt.data_bits)
        # NoProtection's encode/decode are identities (modulo defensive
        # copies); short-circuiting them saves two whole-batch copies
        # per roundtrip on the unprotected third of every sweep.
        identity = type(self.emt) is NoProtection
        if identity:
            stored, side = payload, None
        else:
            stored, side = self.emt.encode(payload, checked=True)
        addresses = slice(handle.base, handle.base + n_words)
        corrupted = self.sram.write_readback_stacked(addresses, stored)
        count = n_words * n_windows * n_trials
        self.stats.data_writes += count
        self.stats.data_reads += count
        if side is not None:
            if self._side is None:  # pragma: no cover - guarded by side_bits
                raise MemoryModelError("EMT produced side info unexpectedly")
            self._side[:, addresses] = side[:, -1, :]
            self.stats.side_writes += count
            self.stats.side_reads += count
        if identity:
            if self.collect_decode_stats:
                self.stats.decode.words += corrupted.size
            decoded = corrupted
        else:
            decoded = self.emt.decode(
                corrupted,
                side,
                self.stats.decode if self.collect_decode_stats else None,
                checked=True,
            )
        return to_signed(decoded, self.emt.data_bits)
