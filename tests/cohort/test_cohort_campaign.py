"""Policy x cohort grids through the campaign engine (kind="cohort")."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.cohort import CohortSpec, population_frontier

POLICIES = ("hysteresis", {"name": "static", "params": {"index": 0}})


def cohort_campaign(name: str = "cohort-grid") -> CampaignSpec:
    cohort = CohortSpec(
        name="campaign-cohort",
        size=4,
        duration_scale=0.01,
        voltages=(0.65, 0.8),
    )
    return CampaignSpec(
        name=name,
        kind="cohort",
        axes={"policy": POLICIES},
        fixed={
            "cohort": cohort.to_dict(),
            "n_probe": 2,
            "probe_duration_s": 2.0,
        },
    )


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """One shared sweep: first run executes, second resumes from disk."""
    store = ResultStore(
        tmp_path_factory.mktemp("campaigns") / "cohort-grid.jsonl"
    )
    first = run_campaign(cohort_campaign(), store=store)
    resumed = run_campaign(cohort_campaign(), store=store)
    return first, resumed


class TestCohortEvaluator:
    def test_population_metrics_per_point(self, sweep):
        first, _ = sweep
        assert first.n_executed == len(POLICIES)
        assert not first.failures()
        for record in first.records:
            result = record["result"]
            assert result["n_patients"] == 4
            assert "lifetime_p5_days" in result
            assert "quality_p10_db" in result
            # Volatile fields are stripped from stored results.
            assert "elapsed_s" not in result
            assert "cache" not in result

    def test_resume_executes_nothing(self, sweep):
        first, resumed = sweep
        assert resumed.n_executed == 0
        assert resumed.n_cached == len(POLICIES)
        assert [r["result"] for r in resumed.records] == [
            r["result"] for r in first.records
        ]

    def test_frontier_over_stored_records(self, sweep):
        first, _ = sweep
        frontier = population_frontier(
            [record["result"] for record in first.records]
        )
        assert 1 <= len(frontier) <= len(POLICIES)

    def test_overrides_and_validation(self):
        base = cohort_campaign("cohort-overrides")
        point = type(base.expand()[0])(
            kind="cohort",
            coords={"policy": "hysteresis", "size": 2},
            fixed=dict(base.fixed),
        )
        from repro.campaign.evaluators import evaluate_point

        result = evaluate_point(point)
        assert result["n_patients"] == 2

    def test_missing_parameters(self):
        from repro.campaign.evaluators import EVALUATORS
        from repro.errors import CampaignError

        evaluator = EVALUATORS["cohort"]
        with pytest.raises(CampaignError, match="'cohort' dict"):
            evaluator({"policy": "hysteresis"})
        with pytest.raises(CampaignError, match="'policy'"):
            evaluator({"cohort": {}})

    def test_patient_failure_fails_the_point(self):
        spec = cohort_campaign("cohort-failing")
        result = run_campaign(
            CampaignSpec(
                name="cohort-failing",
                kind="cohort",
                axes={"policy": ("no-such-policy",)},
                fixed=dict(spec.fixed),
            )
        )
        assert result.n_failed == 1
        assert "patients failed" in result.failures()[0]["error"]
