"""The Session facade: backends, stores, and the uniform ResultHandle."""

from __future__ import annotations

import pytest

from repro.api.results import ResultHandle
from repro.api.schema import Experiment, Fig2Params, experiment_from_payload
from repro.api.session import (
    BACKENDS,
    InlineBackend,
    MultiprocessingBackend,
    Session,
    backend_names,
    make_backend,
    register_backend,
)
from repro.errors import ExperimentSpecError, ReproError


def tiny_fig2(name: str = "tiny", **top) -> Experiment:
    return Experiment(
        name=name,
        kind="figure",
        params=Fig2Params(
            apps=("morphology",), records=("100",), duration_s=2.0
        ),
        **top,
    )


@pytest.fixture(scope="module")
def executed(tmp_path_factory):
    """One stored fig2 run shared by the read-only assertions."""
    store_dir = tmp_path_factory.mktemp("api-stores")
    experiment = tiny_fig2(store="tiny-fig2")
    session = Session(store_dir=store_dir)
    return experiment, session, session.run(experiment)


class TestBackends:
    def test_builtins_registered(self):
        assert {"inline", "multiprocessing"} <= set(backend_names())

    def test_make_backend(self):
        assert isinstance(make_backend("inline", 4), InlineBackend)
        backend = make_backend("multiprocessing", 3)
        assert isinstance(backend, MultiprocessingBackend)
        assert backend.workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentSpecError, match="unknown execution"):
            make_backend("ray", 2)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ExperimentSpecError, match=">= 1"):
            MultiprocessingBackend(0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ExperimentSpecError, match="already registered"):
            register_backend("inline", lambda workers: InlineBackend())

    def test_custom_backend_selected_per_experiment(self):
        calls = []

        class Recording(InlineBackend):
            name = "recording"

            def execute(self, spec, store=None, resume=True, progress=None):
                calls.append(spec.name)
                return super().execute(spec, store, resume, progress)

        if "recording" not in BACKENDS:
            register_backend("recording", lambda workers: Recording())
        experiment = tiny_fig2("custom-backend", backend="recording")
        handle = Session().run(experiment)
        assert handle.ok
        assert calls == ["custom-backend"]

    def test_registered_backend_receives_planned_spec_unchanged(self):
        captured = []

        class Capturing(InlineBackend):
            name = "capturing"

            def execute(self, spec, store=None, resume=True, progress=None):
                captured.append(spec)
                return super().execute(spec, store, resume, progress)

        if "capturing" not in BACKENDS:
            register_backend("capturing", lambda workers: Capturing())
        experiment = tiny_fig2("spec-passthrough", backend="capturing")
        assert Session().run(experiment).ok
        planned = Session().plan(experiment)
        assert [spec.name for spec in captured] == [
            campaign.spec.name for campaign in planned
        ]
        for spec, campaign in zip(captured, planned):
            assert spec.kind == campaign.spec.kind
            assert spec.axes == campaign.spec.axes
            assert spec.fixed == campaign.spec.fixed

    def test_resolution_precedence(self):
        session = Session(backend="inline", workers=1)
        experiment = tiny_fig2(
            "prec", backend="multiprocessing", workers=8
        )
        # Session settings override the experiment's.
        assert session.resolve_backend(experiment) == ("inline", 1)
        # Without session overrides the experiment decides.
        assert Session().resolve_backend(experiment) == (
            "multiprocessing", 8
        )
        # With neither: one worker, inline.
        assert Session().resolve_backend(tiny_fig2("bare")) == ("inline", 1)

    def test_validate_rejects_unknown_backend(self):
        with pytest.raises(ExperimentSpecError, match="unknown execution"):
            Session().validate(tiny_fig2("bad-backend", backend="ray"))


class TestRunAndResume:
    def test_first_run_executes_and_persists(self, executed):
        _experiment, _session, handle = executed
        assert handle.ok
        assert handle.n_executed == 32
        assert handle.n_cached == 0
        assert handle.campaigns("main")[0].store is not None
        assert handle.campaigns("main")[0].store.path.exists()

    def test_second_run_resumes_fully(self, executed):
        experiment, session, first = executed
        second = session.run(experiment)
        assert second.n_executed == 0
        assert second.n_cached == 32
        assert [r["result"] for r in second.records] == [
            r["result"] for r in first.records
        ]

    def test_attach_is_a_pure_store_view(self, executed):
        experiment, session, first = executed
        view = session.attach(experiment)
        assert view.n_executed == 0
        assert view.n_cached == 32
        assert view.point_hashes() == first.point_hashes()
        # The reducer still works on attached records.
        assert len(view.result().series("morphology", 0)) == 16

    def test_attach_without_store_is_empty(self):
        view = Session().attach(tiny_fig2("ephemeral"))
        assert view.records == []

    def test_fresh_reexecutes(self, executed):
        experiment, session, _first = executed
        handle = session.run(experiment, fresh=True)
        assert handle.n_executed == 32
        assert handle.n_cached == 0

    def test_run_accepts_a_path(self, tmp_path):
        from repro.api.schema import dump_experiment

        path = tmp_path / "tiny.toml"
        dump_experiment(tiny_fig2("from-path"), path)
        assert Session().run(str(path)).ok

    def test_validate_surfaces_plan_errors(self):
        experiment = experiment_from_payload({
            "version": 1, "kind": "mission", "name": "bad",
            "mission": {"scenario": "mars"},
        })
        with pytest.raises(ReproError, match="unknown scenario"):
            Session().validate(experiment)

    def test_validate_rejects_unknown_policy_before_running(self):
        experiment = experiment_from_payload({
            "version": 1, "kind": "mission", "name": "bad",
            "mission": {"scenario": "overnight", "policies": ["pid"]},
        })
        with pytest.raises(ReproError, match="unknown policy"):
            Session().validate(experiment)


class TestResultHandle:
    def test_frame_rows_join_coords_and_scalars(self, executed):
        _experiment, _session, handle = executed
        rows = handle.frame()
        assert len(rows) == 32
        row = rows[0]
        assert {"campaign", "role", "kind", "hash", "app", "position",
                "stuck_value", "snr_db"} <= set(row)

    def test_pareto_over_frame(self, executed):
        _experiment, _session, handle = executed
        frontier = handle.pareto("position", "snr_db")
        assert frontier
        positions = [row["position"] for row in frontier]
        assert positions == sorted(positions)

    def test_summary_carries_identity_and_counts(self, executed):
        experiment, _session, handle = executed
        summary = handle.summary()
        assert summary["experiment"] == experiment.name
        assert summary["hash"] == experiment.content_hash()
        assert summary["n_points"] == 32
        assert summary["figure"] == "fig2"

    def test_describe_names_campaigns_and_stores(self, executed):
        experiment, session, _handle = executed
        text = session.describe(experiment)
        assert "tiny-fig2" in text
        assert "32 points" in text

    def test_handle_reduces_once(self, executed):
        _experiment, _session, handle = executed
        assert handle.result() is handle.result()

    def test_bare_handle_without_reducer(self, executed):
        experiment, _session, _handle = executed
        bare = ResultHandle(experiment, [])
        assert bare.result() is None
        assert bare.frame() == []
        assert bare.summary()["n_points"] == 0


class TestCohortExecutionGrain:
    """Cohort experiments fan out at the patient level, like the
    historical CLI — unless a backend is named explicitly."""

    @pytest.fixture
    def tiny_cohort(self):
        return experiment_from_payload({
            "version": 1, "kind": "cohort", "name": "grain",
            "cohort": {"size": 2, "policies": ["hysteresis"],
                       "duration_scale": 0.01, "probe_runs": 2,
                       "probe_duration_s": 2.0},
        })

    def _recorded_workers(self, monkeypatch):
        import repro.cohort.fleet as fleet_module

        seen = []
        original = fleet_module.FleetSimulator.run

        def recording(self, policy, n_workers=1, **kwargs):
            seen.append(n_workers)
            return original(self, policy, n_workers=n_workers, **kwargs)

        monkeypatch.setattr(fleet_module.FleetSimulator, "run", recording)
        return seen

    def test_session_workers_reach_the_fleet(self, tiny_cohort, monkeypatch):
        seen = self._recorded_workers(monkeypatch)
        handle = Session(workers=2).run(tiny_cohort)
        assert handle.ok
        assert seen == [2]

    def test_explicit_backend_keeps_point_grain(
        self, tiny_cohort, monkeypatch
    ):
        seen = self._recorded_workers(monkeypatch)
        handle = Session(backend="inline", workers=2).run(tiny_cohort)
        assert handle.ok
        assert seen == [1]

    def test_hints_do_not_leak(self, tiny_cohort):
        from repro.campaign.evaluators import EVALUATION_HINTS

        Session(workers=2).run(tiny_cohort)
        assert "cohort_workers" not in EVALUATION_HINTS

    def test_worker_counts_are_bit_identical(self, tiny_cohort):
        serial = Session(workers=1).run(tiny_cohort)
        parallel = Session(workers=2).run(tiny_cohort)
        assert [r["result"] for r in serial.records] == [
            r["result"] for r in parallel.records
        ]


class TestCohortDegradedMode:
    """A failed patient degrades the fleet point instead of voiding it."""

    def _failing_experiment(self):
        return experiment_from_payload({
            "version": 1, "kind": "cohort", "name": "degraded",
            "cohort": {"size": 3, "policies": ["hysteresis"],
                       "duration_scale": 0.01, "probe_runs": 2,
                       "probe_duration_s": 2.0},
        })

    @pytest.fixture
    def one_failing_patient(self, monkeypatch):
        import repro.cohort.fleet as fleet_module
        from repro.errors import MissionError

        original = fleet_module.MissionSimulator.run

        def flaky(self, policy):
            if "p00001" in self.spec.name:
                raise MissionError("injected patient failure")
            return original(self, policy)

        monkeypatch.setattr(fleet_module.MissionSimulator, "run", flaky)

    def test_experiment_point_survives_with_partial_statistics(
        self, one_failing_patient
    ):
        handle = Session().run(self._failing_experiment())
        assert handle.ok  # the point itself is not failed
        summary = handle.result()["summaries"][0]
        assert summary["n_failed"] == 1
        assert summary["n_patients"] == 3
        assert "survival_fraction" in summary  # stats over the survivors
        assert summary["failures"][0]["patient"] == 1
        assert "injected patient failure" in summary["failures"][0]["error"]

    def test_raw_campaign_points_still_fail_hard(self, one_failing_patient):
        """Without the experiment-API opt-in, the PR-3 evaluator
        contract holds: any failed patient fails the point."""
        from repro.api.session import cohort_spec_for
        from repro.campaign.evaluators import evaluate_point
        from repro.campaign.spec import CampaignSpec
        from repro.errors import CampaignError

        experiment = self._failing_experiment()
        spec = CampaignSpec(
            name="strict", kind="cohort",
            axes={"policy": ("hysteresis",)},
            fixed={"cohort": cohort_spec_for(experiment).to_dict(),
                   "n_probe": 2, "probe_duration_s": 2.0},
        )
        with pytest.raises(CampaignError, match="patients failed"):
            evaluate_point(spec.expand()[0])


class TestValidateMatchesRun:
    """`repro validate` must reject exactly what `repro run` rejects."""

    def test_unknown_backend_fails_validation(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad-backend.toml"
        path.write_text(
            'version = 1\nkind = "mission"\nname = "x"\n'
            'backend = "bogus"\n\n[mission]\nscenario = "overnight"\n',
            encoding="utf-8",
        )
        assert main(["validate", str(path)]) == 1
        assert "unknown execution backend" in capsys.readouterr().err
        assert main(["run", str(path)]) == 1
