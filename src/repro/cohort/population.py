"""Synthetic patient populations: who is wearing the device?

The paper evaluates one device on a handful of catalog records; a
deployed product ships to a *population*, and the design question —
which (voltage, EMT) point survives the field — depends on how heart
rates, pathology prevalence, noise environments and battery lots are
distributed across wearers.  This module models that spread:

* a :class:`PatientModel` holds the cohort-level distributions — a mix
  of mission templates (from :mod:`repro.runtime.scenarios`), a
  prevalence-weighted catalog-record pool (each record fixes a
  phenotype: mean heart rate, amplitude, ectopy), a discrete
  noise-environment mix, a discrete enclosure-shielding mix (scaling the
  environmental BER stress), and a continuous battery-capacity spread;
* a :class:`CohortSpec` binds a model to a population size and a master
  seed, and materialises any patient *in isolation*:
  :meth:`CohortSpec.patient` derives patient ``k``'s draws from
  ``(seed, k)`` alone, so the same patient is bit-identical whether
  sampled alone, in any fleet order, or on any worker.

Why the physiological/environmental mixes are **discrete**: the fleet
simulator shares calibrated quality models across patients keyed by
``(app, record, noise gain, EMT, effective BER)``.  Discrete mixes keep
that key set finite — a few dozen calibrations serve a fleet of
thousands — while the battery spread, which never enters a calibration
key, stays continuous.

Example:
    >>> spec = CohortSpec(name="demo", size=100)
    >>> p = spec.patient(7)
    >>> p == spec.patient(7)  # reproducible in isolation
    True
    >>> 0.5 <= p.battery_scale <= 1.5
    True
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..errors import CohortError
from ..runtime.mission import MissionSpec
from ..runtime.scenarios import SCENARIOS, scenario_spec
from ..signals.dataset import CATALOG

__all__ = ["PatientModel", "PatientProfile", "CohortSpec"]

#: A discrete mix: ``((value, weight), ...)`` with positive weights.
Mix = tuple[tuple[Any, float], ...]


def _validate_mix(name: str, mix: Mix) -> None:
    if not mix:
        raise CohortError(f"{name} mix must name at least one option")
    for value, weight in mix:
        if weight < 0:
            raise CohortError(
                f"{name} mix weight for {value!r} is negative: {weight}"
            )
    if not sum(weight for _, weight in mix) > 0:
        raise CohortError(f"{name} mix weights sum to zero")


def _draw(rng: np.random.Generator, mix: Mix) -> Any:
    """One weighted draw from a discrete mix."""
    values = [value for value, _ in mix]
    weights = np.asarray([weight for _, weight in mix], dtype=float)
    index = int(rng.choice(len(values), p=weights / weights.sum()))
    return values[index]


@dataclass(frozen=True)
class PatientModel:
    """Cohort-level distributions each synthetic patient is drawn from.

    Attributes:
        scenario_mix: mission templates (scenario registry names) and
            their weights — the activity/stress timeline of a patient's
            day.
        record_mix: catalog records and their prevalence.  A record is a
            phenotype — heart rate, amplitude, pathology — so a
            PVC-heavy cohort simply weights records ``106``/``119`` up.
        environment_mix: noise-gain multipliers (applied on top of each
            template segment's own gain) and their weights — home,
            ambulatory and industrial wearers hear different noise
            floors.  Discrete by design (see the module docstring).
        shielding_mix: BER-stress multipliers (enclosure/placement
            quality; applied to each segment's ``ber_multiplier``) and
            their weights.  Discrete by design.
        battery_cv: relative standard deviation of the battery-capacity
            lot spread (a truncated Gaussian around the template cell).
        battery_clip: hard (low, high) bounds on the capacity scale —
            cells outside the lot tolerance fail incoming inspection.
    """

    scenario_mix: Mix = (("active_day", 0.7), ("overnight", 0.3))
    record_mix: Mix = (
        ("100", 0.45),
        ("101", 0.20),
        ("103", 0.15),
        ("106", 0.12),
        ("119", 0.08),
    )
    environment_mix: Mix = ((1.0, 0.6), (1.5, 0.3), (2.5, 0.1))
    shielding_mix: Mix = ((1.0, 0.7), (2.0, 0.3))
    battery_cv: float = 0.10
    battery_clip: tuple[float, float] = (0.5, 1.5)

    def __post_init__(self) -> None:
        _validate_mix("scenario", self.scenario_mix)
        _validate_mix("record", self.record_mix)
        _validate_mix("environment", self.environment_mix)
        _validate_mix("shielding", self.shielding_mix)
        for name, _ in self.scenario_mix:
            if name not in SCENARIOS:
                raise CohortError(
                    f"scenario mix names unknown scenario {name!r}; "
                    f"available: {sorted(SCENARIOS)}"
                )
        for record, _ in self.record_mix:
            if record not in CATALOG:
                raise CohortError(
                    f"record mix names unknown record {record!r}; "
                    f"available: {sorted(CATALOG)}"
                )
        if self.battery_cv < 0:
            raise CohortError(
                f"battery spread must be non-negative, got {self.battery_cv}"
            )
        low, high = self.battery_clip
        if not 0 < low <= high:
            raise CohortError(
                f"battery clip must satisfy 0 < low <= high, "
                f"got {self.battery_clip}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form, for campaign parameters and stores."""
        return {
            "scenario_mix": [list(pair) for pair in self.scenario_mix],
            "record_mix": [list(pair) for pair in self.record_mix],
            "environment_mix": [list(pair) for pair in self.environment_mix],
            "shielding_mix": [list(pair) for pair in self.shielding_mix],
            "battery_cv": self.battery_cv,
            "battery_clip": list(self.battery_clip),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PatientModel":
        """Rebuild a model produced by :meth:`to_dict`."""
        try:
            return cls(
                scenario_mix=tuple(
                    (name, float(w)) for name, w in payload["scenario_mix"]
                ),
                record_mix=tuple(
                    (name, float(w)) for name, w in payload["record_mix"]
                ),
                environment_mix=tuple(
                    (float(g), float(w))
                    for g, w in payload["environment_mix"]
                ),
                shielding_mix=tuple(
                    (float(s), float(w))
                    for s, w in payload["shielding_mix"]
                ),
                battery_cv=float(payload["battery_cv"]),
                battery_clip=tuple(payload["battery_clip"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CohortError(
                f"malformed patient-model payload: {exc}"
            ) from exc


@dataclass(frozen=True)
class PatientProfile:
    """One sampled patient: everything that makes their mission theirs.

    Attributes:
        index: patient number within the cohort.
        scenario: mission template (scenario registry name).
        record: the patient's catalog-record phenotype.
        noise_gain: environmental noise multiplier.
        ber_factor: enclosure-shielding BER-stress multiplier.
        battery_scale: this unit's capacity relative to the template
            cell.
        seed: the patient's mission seed (environment draws).
        heart_rate_bpm: the phenotype's mean heart rate (derived from
            the record, surfaced for population analytics).
        description: the record's clinical description.
    """

    index: int
    scenario: str
    record: str
    noise_gain: float
    ber_factor: float
    battery_scale: float
    seed: int
    heart_rate_bpm: float
    description: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form, carried into fleet result rows."""
        return {
            "patient": self.index,
            "scenario": self.scenario,
            "record": self.record,
            "noise_gain": self.noise_gain,
            "ber_factor": self.ber_factor,
            "battery_scale": self.battery_scale,
            "seed": self.seed,
            "heart_rate_bpm": self.heart_rate_bpm,
            "description": self.description,
        }


@dataclass(frozen=True)
class CohortSpec:
    """A named patient population plus the fleet's shared configuration.

    Attributes:
        name: cohort identity (result labels, mission names, seeds).
        size: number of patients in the fleet.
        model: the :class:`PatientModel` distributions.
        duration_scale: scale applied to every patient mission (segment
            durations *and* battery, via :meth:`MissionSpec.scaled`) —
            sweeps and tests explore scaled fleets, reports run full
            ones.
        voltages / emts / window_s / app: optional overrides of the
            corresponding mission-template fields, applied uniformly so
            the whole fleet shares one operating-point lattice (and
            therefore one calibration set).
        seed: master seed; patient ``k``'s draws depend on ``(seed, k)``
            only.
    """

    name: str
    size: int
    model: PatientModel = field(default_factory=PatientModel)
    duration_scale: float = 1.0
    voltages: tuple[float, ...] | None = None
    emts: tuple[str, ...] | None = None
    window_s: float | None = None
    app: str | None = None
    seed: int = 2016

    def __post_init__(self) -> None:
        if not self.name:
            raise CohortError("cohort name must be non-empty")
        if self.size < 1:
            raise CohortError(
                f"cohort size must be at least 1, got {self.size}"
            )
        if self.duration_scale <= 0:
            raise CohortError(
                f"duration scale must be positive, got {self.duration_scale}"
            )

    # -- sampling ----------------------------------------------------------

    def patient(self, index: int) -> PatientProfile:
        """Sample patient ``index``'s profile, independent of all others.

        The draws come from a generator seeded with ``(seed, index)``
        and happen in a fixed order, so a profile never depends on the
        cohort size, the order patients are simulated in, or the worker
        that simulates them.
        """
        if not 0 <= index < self.size:
            raise CohortError(
                f"patient index {index} outside cohort of {self.size}"
            )
        rng = np.random.default_rng((self.seed, index))
        model = self.model
        scenario = _draw(rng, model.scenario_mix)
        record = _draw(rng, model.record_mix)
        noise_gain = float(_draw(rng, model.environment_mix))
        ber_factor = float(_draw(rng, model.shielding_mix))
        low, high = model.battery_clip
        battery_scale = float(
            np.clip(
                1.0 + model.battery_cv * rng.standard_normal(), low, high
            )
        )
        phenotype = CATALOG[record]
        # The mission seed derives from (cohort seed, index) only — the
        # cohort *name* is a label, so renamed-but-otherwise-identical
        # cohorts stay paired patient by patient.
        return PatientProfile(
            index=index,
            scenario=scenario,
            record=record,
            noise_gain=noise_gain,
            ber_factor=ber_factor,
            battery_scale=battery_scale,
            seed=zlib.crc32(f"cohort-patient:{self.seed}:{index}".encode()),
            heart_rate_bpm=float(phenotype.rhythm.mean_hr_bpm),
            description=phenotype.description,
        )

    def patients(self) -> list[PatientProfile]:
        """Every profile of the cohort, in index order."""
        return [self.patient(index) for index in range(self.size)]

    def mission_for(self, profile: PatientProfile) -> MissionSpec:
        """The patient's personal mission: template x phenotype.

        The template contributes the activity/stress timeline; the
        profile contributes physiology (its record replaces every
        segment's), environment (noise gains multiply), shielding (BER
        multipliers multiply) and the battery lot draw.  The mission
        seed is the patient's, so environmental draws differ patient to
        patient even within one template.
        """
        base = scenario_spec(profile.scenario)
        overrides: dict[str, Any] = {
            "name": f"{self.name}-p{profile.index:05d}",
            "seed": profile.seed,
            "segments": tuple(
                replace(
                    segment,
                    record=profile.record,
                    noise_gain=segment.noise_gain * profile.noise_gain,
                    ber_multiplier=(
                        segment.ber_multiplier * profile.ber_factor
                    ),
                )
                for segment in base.segments
            ),
            "battery": replace(
                base.battery,
                capacity_mah=(
                    base.battery.capacity_mah * profile.battery_scale
                ),
            ),
        }
        if self.voltages is not None:
            overrides["voltages"] = tuple(self.voltages)
        if self.emts is not None:
            overrides["emts"] = tuple(self.emts)
        if self.window_s is not None:
            overrides["window_s"] = self.window_s
        if self.app is not None:
            overrides["app"] = self.app
        spec = replace(base, **overrides)
        if self.duration_scale != 1.0:
            spec = spec.scaled(self.duration_scale)
        return spec

    # -- JSON round-trip (campaign transport) -----------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form, for campaign parameters and stores."""
        return {
            "name": self.name,
            "size": self.size,
            "model": self.model.to_dict(),
            "duration_scale": self.duration_scale,
            "voltages": list(self.voltages) if self.voltages else None,
            "emts": list(self.emts) if self.emts else None,
            "window_s": self.window_s,
            "app": self.app,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CohortSpec":
        """Rebuild a spec produced by :meth:`to_dict`."""
        try:
            data = dict(payload)
            model = PatientModel.from_dict(data.pop("model"))
            for key in ("voltages", "emts"):
                if data.get(key) is not None:
                    data[key] = tuple(data[key])
            return cls(model=model, **data)
        except (KeyError, TypeError) as exc:
            raise CohortError(f"malformed cohort payload: {exc}") from exc
