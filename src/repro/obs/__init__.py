"""``repro.obs`` — tracing, metrics, and run telemetry.

The package's observability spine: span-based tracing with context
propagation across worker pools (:mod:`repro.obs.core`), a single JSONL
event schema shared with the benchmark harness
(:mod:`repro.obs.events`), the ``repro report`` renderer
(:mod:`repro.obs.report`), a span-attributed sampling profiler
(:mod:`repro.obs.profile`, ``--profile`` / ``REPRO_PROFILE``), the
benchmark history and drift detector (:mod:`repro.obs.bench`), and the
CLI's logging configuration (:mod:`repro.obs.logcfg`).  Everything is
stdlib-only, and every probe is a no-op until tracing is enabled —
instrumented library code pays one cheap check per call when a run is
untraced.

Typical library usage::

    from repro import obs

    with obs.span("calibrate", app=app, voltage=v) as span:
        ...
        obs.counter("cache.disk_hit")

Tracing turns on per run: set ``REPRO_TRACE_DIR`` (or pass ``--trace``
to the CLI) and :class:`repro.api.session.Session` opens a sink named
by the experiment's content-hash run id; ``repro report <run-id>``
renders it.  See ``docs/observability.md`` for the event schema and
span taxonomy.
"""

from __future__ import annotations

from .alerts import (
    AlertOutcome,
    AlertRule,
    breached,
    evaluate_rules,
    load_rules,
    render_outcomes,
    rules_from_payload,
)
from .bench import (
    append_history,
    default_history_path,
    detect_drift,
    git_revision,
    load_history,
    render_trend,
)
from .core import (
    FLUSH_EVERY,
    HEARTBEAT_FLUSH_S,
    RESOURCE_INTERVAL_S,
    Span,
    configured_dir,
    counter,
    cpu_seconds,
    current_span_id,
    default_trace_dir,
    disable,
    enable,
    enabled,
    flush,
    gauge,
    heartbeat,
    observe,
    peak_rss_bytes,
    resource_probe,
    rss_bytes,
    set_trace_dir,
    span,
    start_run,
    trace_path,
    trace_run_id,
    worker_parent,
)
from .diff import diff_events, render_diff
from .events import (
    EVENT_KINDS,
    METRIC_KINDS,
    SCHEMA_VERSION,
    SPAN_STATUSES,
    metric_event,
    run_event,
    span_event,
    validate_event,
)
from .logcfg import configure as configure_logging
from .logcfg import get_logger
from .profile import (
    load_profile,
    profile_dir_for,
    sampler_active,
    speedscope_document,
)
from .registry import (
    REGISTRY_BASENAME,
    STALE_STATUS,
    RunRecord,
    RunRegistry,
    host_metadata,
    pid_alive,
)
from .report import (
    RESILIENCE_COUNTERS,
    load_events,
    load_trace,
    metric_series,
    metric_totals,
    render_report,
    resolve_trace,
    span_totals,
    summarize,
)
from .watch import TraceTail, WatchState, render_frame, watch

__all__ = [
    # core
    "FLUSH_EVERY",
    "HEARTBEAT_FLUSH_S",
    "RESOURCE_INTERVAL_S",
    "Span",
    "enabled",
    "enable",
    "disable",
    "span",
    "counter",
    "gauge",
    "observe",
    "heartbeat",
    "flush",
    "current_span_id",
    "trace_path",
    "trace_run_id",
    "configured_dir",
    "set_trace_dir",
    "default_trace_dir",
    "start_run",
    "worker_parent",
    "resource_probe",
    "rss_bytes",
    "peak_rss_bytes",
    "cpu_seconds",
    # profile
    "load_profile",
    "profile_dir_for",
    "sampler_active",
    "speedscope_document",
    # bench
    "append_history",
    "default_history_path",
    "detect_drift",
    "git_revision",
    "load_history",
    "render_trend",
    # events
    "SCHEMA_VERSION",
    "EVENT_KINDS",
    "METRIC_KINDS",
    "SPAN_STATUSES",
    "run_event",
    "span_event",
    "metric_event",
    "validate_event",
    # report
    "RESILIENCE_COUNTERS",
    "load_trace",
    "load_events",
    "resolve_trace",
    "summarize",
    "span_totals",
    "metric_totals",
    "metric_series",
    "render_report",
    # registry
    "REGISTRY_BASENAME",
    "STALE_STATUS",
    "RunRecord",
    "RunRegistry",
    "host_metadata",
    "pid_alive",
    # watch
    "TraceTail",
    "WatchState",
    "render_frame",
    "watch",
    # diff
    "diff_events",
    "render_diff",
    # alerts
    "AlertRule",
    "AlertOutcome",
    "load_rules",
    "rules_from_payload",
    "evaluate_rules",
    "breached",
    "render_outcomes",
    # logging
    "configure_logging",
    "get_logger",
]
