"""The durable job queue: journal discipline, lifecycle, recovery."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ServiceError
from repro.service import JobQueue, JobRecord, TERMINAL_STATUSES
from repro.service.queue import JOURNAL_BASENAME


@pytest.fixture()
def queue(tmp_path):
    return JobQueue(tmp_path / "svc")


def submit(queue, job_id="job-a", priority=0, **kw):
    record, created = queue.submit(
        job_id, "experiment", {"name": job_id}, name=job_id,
        priority=priority, **kw
    )
    return record, created


class TestSubmission:
    def test_submit_round_trip(self, queue):
        record, created = submit(queue, meta={"store_dir": "/tmp/x"})
        assert created
        assert record.status == "queued"
        assert record.submitted_at > 0
        assert (queue.root / JOURNAL_BASENAME).is_file()
        loaded = queue.get("job-a")
        assert loaded == record
        assert loaded.meta == {"store_dir": "/tmp/x"}

    def test_dict_round_trip_is_lossless(self, queue):
        record, _ = submit(queue)
        marked = queue.mark(
            "job-a", "failed", owner_pid=123, error="boom",
            result={"n": 1},
        )
        assert JobRecord.from_dict(marked.to_dict()) == marked

    def test_resubmission_is_idempotent_while_live(self, queue):
        first, _ = submit(queue)
        for status in ("queued", "claimed", "running", "done"):
            if status != "queued":
                queue.mark("job-a", status)
            _, created = submit(queue)
            assert not created, f"resubmission created a new job at {status}"

    def test_failed_job_is_requeued_by_resubmission(self, queue):
        submit(queue)
        queue.mark("job-a", "failed", error="boom")
        record, created = submit(queue)
        assert created
        assert record.status == "queued"
        assert record.error is None

    def test_cancelled_job_is_requeued_by_resubmission(self, queue):
        submit(queue)
        queue.cancel("job-a")
        record, created = submit(queue)
        assert created and record.status == "queued"

    def test_requeue_count_survives_resubmission(self, queue):
        submit(queue)
        queue.mark("job-a", "claimed")
        queue.mark("job-a", "queued", requeued=True)
        queue.mark("job-a", "failed", error="boom")
        record, _ = submit(queue)
        assert record.requeues == 1

    def test_invalid_submissions_rejected(self, queue):
        with pytest.raises(ServiceError, match="non-empty"):
            queue.submit("", "experiment", {})
        with pytest.raises(ServiceError, match="kind"):
            queue.submit("x", "cron", {})


class TestLifecycle:
    def test_mark_carries_identity_forward(self, queue):
        submit(queue, priority=3)
        running = queue.mark("job-a", "running", owner_pid=os.getpid())
        assert running.priority == 3
        assert running.owner_pid == os.getpid()
        assert running.payload == {"name": "job-a"}
        done = queue.mark("job-a", "done", result={"status": "ok"})
        assert done.terminal
        assert done.result == {"status": "ok"}

    def test_terminal_statuses(self, queue):
        submit(queue)
        for status in TERMINAL_STATUSES:
            assert queue.mark("job-a", status).terminal
        assert not queue.mark("job-a", "queued").terminal

    def test_mark_unknown_job_or_status_rejected(self, queue):
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.mark("ghost", "done")
        submit(queue)
        with pytest.raises(ServiceError, match="status"):
            queue.mark("job-a", "paused")

    def test_cancel_only_queued(self, queue):
        submit(queue)
        assert queue.cancel("job-a").status == "cancelled"
        # Cancelling again is an idempotent no-op.
        assert queue.cancel("job-a").status == "cancelled"
        submit(queue, job_id="job-b")
        queue.mark("job-b", "running", owner_pid=1)
        with pytest.raises(ServiceError, match="only queued"):
            queue.cancel("job-b")
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.cancel("ghost")


class TestDispatchOrder:
    def test_priority_then_age_then_id(self, queue):
        submit(queue, job_id="late-low", priority=0)
        submit(queue, job_id="urgent", priority=5)
        submit(queue, job_id="early-low", priority=0)
        order = [record.job_id for record in queue.pending()]
        # Highest priority first; FIFO (submission time) within a tier.
        assert order == ["urgent", "late-low", "early-low"]

    def test_only_queued_jobs_are_pending(self, queue):
        submit(queue, job_id="a")
        submit(queue, job_id="b")
        queue.mark("a", "claimed")
        assert [r.job_id for r in queue.pending()] == ["b"]


class TestRecovery:
    def test_recover_requeues_all_inflight(self, queue):
        submit(queue, job_id="claimed-one")
        submit(queue, job_id="running-one")
        submit(queue, job_id="done-one")
        queue.mark("claimed-one", "claimed", owner_pid=1)
        queue.mark("running-one", "running", owner_pid=1)
        queue.mark("done-one", "done")
        requeued = queue.recover()
        assert sorted(r.job_id for r in requeued) == [
            "claimed-one", "running-one",
        ]
        assert all(r.status == "queued" for r in requeued)
        assert all(r.requeues == 1 for r in requeued)
        assert queue.get("done-one").status == "done"

    def test_torn_tail_is_quarantined_not_fatal(self, queue):
        submit(queue, job_id="whole")
        with queue.path.open("a", encoding="utf-8") as handle:
            handle.write('{"job_id": "torn", "status": "queu')
        jobs = queue.load()
        assert set(jobs) == {"whole"}
        quarantine = queue.path.with_name(queue.path.name + ".quarantine")
        assert quarantine.is_file()
        assert "torn" in quarantine.read_text(encoding="utf-8")
        # The journal itself was healed: subsequent appends stay valid.
        submit(queue, job_id="after")
        assert set(queue.load()) == {"whole", "after"}

    def test_last_record_per_id_wins(self, queue):
        submit(queue)
        queue.mark("job-a", "claimed")
        queue.mark("job-a", "done")
        lines = queue.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 3
        assert queue.get("job-a").status == "done"
        assert len(queue) == 1

    def test_concurrent_appends_interleave_safely(self, queue):
        submit(queue)
        script = (
            "import sys; from repro.service import JobQueue; "
            "q = JobQueue(sys.argv[1]); "
            "[q.submit(f'child-{i}', 'experiment', {}) for i in range(20)]"
        )
        procs = [
            subprocess.Popen([sys.executable, "-c", script, str(queue.root)])
            for _ in range(3)
        ]
        for i in range(20):
            queue.mark("job-a", "running" if i % 2 else "queued")
        assert all(proc.wait() == 0 for proc in procs)
        jobs = queue.load()
        assert len(jobs) == 21
        assert not queue.path.with_name(
            queue.path.name + ".quarantine"
        ).exists()


class TestListing:
    def test_filtering_and_limit(self, queue):
        submit(queue, job_id="a")
        submit(queue, job_id="b")
        queue.submit("c", "campaign", {}, name="c")
        queue.mark("a", "done")
        assert {r.job_id for r in queue.jobs(status="queued")} == {"b", "c"}
        assert [r.job_id for r in queue.jobs(kind="campaign")] == ["c"]
        assert len(queue.jobs(limit=2)) == 2
        with pytest.raises(ServiceError, match="unknown job status"):
            queue.jobs(status="zombie")

    def test_newest_first(self, queue):
        submit(queue, job_id="first")
        submit(queue, job_id="second")
        listed = queue.jobs()
        assert listed[0].job_id in ("first", "second")
        assert listed[0].submitted_at >= listed[1].submitted_at


class TestStaleOwner:
    def test_dead_owner_detected(self, queue):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        submit(queue)
        dead = queue.mark("job-a", "running", owner_pid=proc.pid)
        assert queue.stale_owner(dead)

    def test_live_owner_and_nonrunning_are_not_stale(self, queue):
        submit(queue)
        live = queue.mark("job-a", "running", owner_pid=os.getpid())
        assert not queue.stale_owner(live)
        done = queue.mark("job-a", "done")
        assert not queue.stale_owner(done)
        # Queued jobs have no owner at all.
        record, _ = submit(queue, job_id="job-b")
        assert not queue.stale_owner(record)


def test_journal_lines_are_sorted_json(queue):
    """Journal lines are canonical JSON — diffs and dedup stay stable."""
    submit(queue)
    line = queue.path.read_text(encoding="utf-8").splitlines()[0]
    payload = json.loads(line)
    assert line == json.dumps(payload, sort_keys=True)
