"""E2 — regenerate Fig 4a/b/c: SNR vs supply voltage per EMT.

One benchmark per application; each sweeps the paper's 0.50-0.90 V grid
with Monte-Carlo stuck-at injection at the profiled BER, for the three
EMTs (no protection / DREAM / ECC SEC/DED) on shared fault maps.  The
three Fig 4 panels are printed at session end.

Set ``REPRO_RUNS=200`` for the paper's full Monte-Carlo depth.
"""

from __future__ import annotations

import pytest

from repro.energy.technology import PAPER_VOLTAGE_GRID
from repro.exp.fig4 import Fig4Result, run_fig4
from repro.exp.report import format_fig4

APP_NAMES = (
    "dwt",
    "matrix_filter",
    "compressed_sensing",
    "morphology",
    "delineation",
)


@pytest.mark.parametrize("app_name", APP_NAMES)
def test_fig4_app(benchmark, app_name, bench_config, report_sink):
    result = benchmark.pedantic(
        lambda: run_fig4(
            app_names=(app_name,),
            config=bench_config,
            voltages=PAPER_VOLTAGE_GRID,
        ),
        rounds=1,
        iterations=1,
    )
    merged: Fig4Result = report_sink.shared.setdefault(
        "fig4", Fig4Result(voltages=sorted(PAPER_VOLTAGE_GRID),
                           config=bench_config)
    )
    merged.points.update(result.points)
    for emt_name, panel in (
        ("none", "fig4a_no_protection"),
        ("dream", "fig4b_dream"),
        ("secded", "fig4c_ecc_secded"),
    ):
        report_sink.add(panel, format_fig4(merged, emt_name))
    report_sink.shared["fig4_result"] = merged

    # Shape assertions from Section VI-A.
    for emt in ("none", "dream", "secded"):
        series = result.series(app_name, emt)
        # error-free ceiling at nominal supply, degradation at 0.5 V
        assert series[-1] > series[0], (app_name, emt)
    top = result.points[app_name][0.90]
    bottom = result.points[app_name][0.50]
    # At nominal voltage everything sits at its ceiling (no faults).
    assert top.snr_mean_db["none"] == pytest.approx(
        top.snr_mean_db["dream"], abs=1.0
    )
    # At 0.5 V DREAM must beat SEC/DED (multi-error regime, Fig 4b vs c).
    assert bottom.snr_mean_db["dream"] > bottom.snr_mean_db["secded"]
    # ... and no-protection must be the worst of the three.
    assert bottom.snr_mean_db["none"] <= bottom.snr_mean_db["secded"] + 1.0
