"""Retry policy: bounded attempts, deadlines, deterministic backoff.

One :class:`RetryPolicy` governs a whole pool run.  The backoff delay
before attempt ``n`` of a unit of work is::

    min(backoff_max_s, backoff_base_s * backoff_factor ** (n - 2))
        * (1 + jitter * u)

where ``u`` is a deterministic uniform draw keyed by the work's key and
attempt number (:func:`~repro.resilience.chaos.chaos_draw`) — the
Abouei-style retransmission schedule, but reproducible: the same work
retried on the same schedule backs off identically on every run, and
distinct units de-synchronise instead of thundering back together.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ResilienceError
from .chaos import chaos_draw

__all__ = ["RetryPolicy"]

#: Environment overrides, applied by :meth:`RetryPolicy.from_env`.
ENV_MAX_ATTEMPTS = "REPRO_RETRY_MAX_ATTEMPTS"
ENV_TIMEOUT_S = "REPRO_WORK_TIMEOUT_S"


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised pool retries one unit of work.

    Attributes:
        max_attempts: total tries per unit (first attempt included)
            before it is quarantined as ``failed`` with its attempt
            history.
        timeout_s: per-unit deadline from the moment a worker claims it;
            ``None`` (the default) disables timeouts — evaluators have
            no intrinsic bound, so deadlines are opt-in via
            ``REPRO_WORK_TIMEOUT_S`` or an explicit policy.
        backoff_base_s / backoff_factor / backoff_max_s: exponential
            backoff shape (see module docstring).
        jitter: fractional spread of the deterministic jitter
            (``0.25`` = up to +25 % of the base delay).
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ResilienceError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ResilienceError("backoff delays must be >= 0")
        if self.jitter < 0:
            raise ResilienceError(
                f"jitter must be >= 0, got {self.jitter}"
            )

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """The default policy with any environment overrides applied.

        ``REPRO_RETRY_MAX_ATTEMPTS`` and ``REPRO_WORK_TIMEOUT_S``
        (``0`` = no deadline) tune a run without touching call sites;
        explicit keyword overrides win over the environment.
        """
        fields = dict(overrides)
        raw = os.environ.get(ENV_MAX_ATTEMPTS)
        if raw is not None and "max_attempts" not in fields:
            try:
                fields["max_attempts"] = int(raw)
            except ValueError as exc:
                raise ResilienceError(
                    f"{ENV_MAX_ATTEMPTS} must be an integer, got {raw!r}"
                ) from exc
        raw = os.environ.get(ENV_TIMEOUT_S)
        if raw is not None and "timeout_s" not in fields:
            try:
                timeout = float(raw)
            except ValueError as exc:
                raise ResilienceError(
                    f"{ENV_TIMEOUT_S} must be a number, got {raw!r}"
                ) from exc
            fields["timeout_s"] = timeout if timeout > 0 else None
        return cls(**fields)

    def backoff_s(self, key: str, attempt: int) -> float:
        """Delay before ``attempt`` (>= 2) of the unit keyed ``key``."""
        if attempt <= 1:
            return 0.0
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 2),
        )
        # Seed 0: backoff jitter is part of the execution schedule, not
        # the chaos schedule — it must not shift when chaos reseeds.
        u = chaos_draw(0, "backoff", key, attempt)
        return base * (1.0 + self.jitter * u)
