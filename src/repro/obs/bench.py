"""Benchmark history: an append-only trajectory with drift detection.

``benchmarks/committed/BENCH_*.json`` is a point-in-time snapshot, and
the 30% regression gate in ``check_regression.py`` only sees cliffs —
a benchmark can creep 5% slower per PR for five PRs and never trip it.
This module gives every BENCH gauge event a *trajectory*: the harness
appends each measurement (already host-fingerprinted since PR 7) to a
flock'd ``bench_history.jsonl`` stamped with the git revision, and
:func:`detect_drift` flags any series whose latest point leaves a
rolling-median band — surfaced as ``repro bench trend [metric]``
(sparkline trajectories, non-zero exit on drift) and consulted by
``check_regression.py --history`` so multi-PR creep is caught in CI,
not just single-run cliffs.

History lines are ordinary schema gauge events (:mod:`.events`) with
the revision added as ``attrs["git"]`` — the same one-object-per-line
discipline as traces and the run registry.  Like the registry, the
history is *operational* state: a torn trailing line (concurrent
append, kill mid-write) is skipped, not fatal.

Drift verdicts are pure arithmetic over the committed points — same
file in, bit-identical verdict out — which is what lets a committed
fixture pin the detector's behaviour in tests.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from statistics import median
from typing import Any

from .events import validate_event

__all__ = [
    "ENV_HISTORY",
    "DEFAULT_WINDOW",
    "DEFAULT_BAND",
    "default_history_path",
    "git_revision",
    "append_history",
    "load_history",
    "history_series",
    "detect_drift",
    "sparkline",
    "render_trend",
]

#: Overrides where the benchmark history file lives.
ENV_HISTORY = "REPRO_BENCH_HISTORY"

#: Rolling-median window: the latest point is judged against the
#: median of this many points before it.
DEFAULT_WINDOW = 5

#: Allowed fractional deviation from the rolling median before a
#: series is flagged as drifting.
DEFAULT_BAND = 0.25

#: Sparkline glyphs, lowest to highest.
_SPARKS = "▁▂▃▄▅▆▇█"


def default_history_path() -> Path:
    """Where BENCH measurements accumulate (``REPRO_BENCH_HISTORY`` wins).

    The default sits beside the other operational state in
    ``benchmarks/results/`` — gitignored scratch on a laptop, a cache
    path in CI; committed *fixtures* for tests live elsewhere.
    """
    raw = os.environ.get(ENV_HISTORY)
    if raw:
        return Path(raw).expanduser()
    return Path("benchmarks") / "results" / "bench_history.jsonl"


def git_revision() -> str:
    """The working tree's revision, best effort (``"unknown"`` offline).

    ``git rev-parse --short=12 HEAD`` first; CI environments without a
    work tree fall back to ``GITHUB_SHA``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):  # pragma: no cover
        pass
    sha = os.environ.get("GITHUB_SHA", "")
    return sha[:12] if sha else "unknown"


def append_history(
    events: list[dict],
    path: Path | str | None = None,
    revision: str | None = None,
) -> Path:
    """Append a benchmark run's gauge events to the history, flock'd.

    Only ``metric``/``gauge`` events are history material (the run
    marker carries no measurement); each is validated, stamped with the
    git ``revision`` in its attrs, and appended under an exclusive
    flock so concurrent benchmark processes interleave whole lines.
    """
    target = Path(path) if path is not None else default_history_path()
    stamp = revision if revision is not None else git_revision()
    lines: list[str] = []
    for event in events:
        if event.get("event") != "metric" or event.get("kind") != "gauge":
            continue
        record = dict(event)
        record["attrs"] = {**record.get("attrs", {}), "git": stamp}
        problems = validate_event(record)
        if problems:
            raise ValueError(
                "refusing to append a malformed history event: "
                + "; ".join(problems)
            )
        lines.append(json.dumps(record, sort_keys=True) + "\n")
    if not lines:
        return target
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="utf-8") as handle:
        try:
            import fcntl

            fcntl.flock(handle, fcntl.LOCK_EX)
        except (ImportError, OSError):  # pragma: no cover - non-POSIX
            pass
        handle.write("".join(lines))
    return target


def load_history(path: Path | str | None = None) -> list[dict]:
    """The history's gauge events in append order (missing file = empty).

    Torn or malformed lines are skipped — the history is operational
    state appended by concurrent processes, and one interrupted write
    must not wedge every future trend read.
    """
    source = Path(path) if path is not None else default_history_path()
    if not source.exists():
        return []
    events: list[dict] = []
    for line in source.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            isinstance(event, dict)
            and event.get("event") == "metric"
            and event.get("kind") == "gauge"
            and not validate_event(event)
        ):
            events.append(event)
    return events


def history_series(
    events: list[dict],
) -> dict[tuple[str, str], list[dict]]:
    """History points grouped per (benchmark trace, metric name).

    Points keep append order — the axis a trend is judged along — and
    carry ``value``, ``t``, and the stamped ``git`` revision.
    """
    series: dict[tuple[str, str], list[dict]] = {}
    for event in events:
        key = (str(event.get("trace", "")), str(event.get("name", "")))
        series.setdefault(key, []).append(
            {
                "value": float(event["value"]),
                "t": float(event.get("t", 0.0)),
                "git": str(event.get("attrs", {}).get("git", "unknown")),
            }
        )
    return series


def detect_drift(
    values: list[float],
    window: int = DEFAULT_WINDOW,
    band: float = DEFAULT_BAND,
) -> dict[str, Any] | None:
    """Judge a series' latest point against its rolling-median band.

    The latest value is compared to the median of the ``window`` points
    immediately before it; a fractional deviation beyond ``band`` (in
    either direction — a sudden "improvement" is usually a broken
    benchmark) is drift.  Returns ``None`` while the series is too
    short to judge (fewer than ``window + 1`` points).  Pure arithmetic:
    the same points always produce the bit-identical verdict.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if len(values) < window + 1:
        return None
    latest = values[-1]
    baseline = median(values[-(window + 1) : -1])
    if baseline == 0.0:
        delta = 0.0 if latest == 0.0 else float("inf")
    else:
        delta = (latest - baseline) / abs(baseline)
    return {
        "latest": latest,
        "median": baseline,
        "delta": delta,
        "drift": abs(delta) > band,
    }


def sparkline(values: list[float]) -> str:
    """The series as min-max-normalised block glyphs (``▁`` .. ``█``)."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _SPARKS[3] * len(values)
    span = hi - lo
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1, int((v - lo) / span * len(_SPARKS)))]
        for v in values
    )


def render_trend(
    events: list[dict],
    metric: str | None = None,
    window: int = DEFAULT_WINDOW,
    band: float = DEFAULT_BAND,
) -> tuple[str, int]:
    """The ``repro bench trend`` body: one sparkline row per series.

    Returns ``(text, n_drifting)``; the CLI exits non-zero when any
    series drifts.  ``metric`` filters by metric name (exact match).
    Series order is deterministic (sorted by benchmark, then metric).
    """
    series = history_series(events)
    if metric is not None:
        series = {key: pts for key, pts in series.items() if key[1] == metric}
    if not series:
        scope = f" for metric {metric!r}" if metric else ""
        return (f"No benchmark history{scope}.", 0)
    lines = [
        f"Benchmark history: {len(series)} series · "
        f"rolling median window {window} · band ±{band:.0%}"
    ]
    drifting = 0
    for (trace, name), points in sorted(series.items()):
        values = [point["value"] for point in points]
        verdict = detect_drift(values, window=window, band=band)
        label = f"{trace} · {name}"
        spark = sparkline(values[-24:])
        if verdict is None:
            tail = (
                f"n={len(values)} (need {window + 1} points to judge)"
            )
        else:
            tail = (
                f"n={len(values)}  latest {verdict['latest']:.4g}"
                f"  median {verdict['median']:.4g}"
                f"  {verdict['delta']:+.1%}"
            )
            if verdict["drift"]:
                drifting += 1
                tail += f"  DRIFT [{points[-1]['git']}]"
        lines.append(f"  {label:<40s} {spark:<24s} {tail}")
    if drifting:
        lines.append(
            f"{drifting} series drifted beyond the ±{band:.0%} band."
        )
    return ("\n".join(lines), drifting)


def history_marker(path: Path | str | None = None) -> dict[str, Any]:
    """A small summary of the history file (for ``repro bench trend -v``)."""
    target = Path(path) if path is not None else default_history_path()
    events = load_history(target)
    return {
        "path": str(target),
        "events": len(events),
        "series": len(history_series(events)),
        "read_at": time.time(),
    }
