"""Property tests on the pathology corpus and the DREAM data premise.

DREAM's effectiveness rests on a statistical property of the corpus —
long sign-extension runs and zero-centred values — so the corpus itself
is part of the reproduction's trusted computing base.  These tests pin
that contract for *every* catalog record, not just the ones the default
experiments use.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._bitops import sign_run_length
from repro.emt import DreamEMT
from repro.signals.dataset import CATALOG, default_catalog, load_record


@pytest.mark.parametrize("name", default_catalog())
class TestCorpusContract:
    def test_samples_in_16bit_range(self, name):
        record = load_record(name, duration_s=6.0)
        assert int(record.samples.min()) >= -32768
        assert int(record.samples.max()) <= 32767

    def test_heart_rate_physiological(self, name):
        record = load_record(name, duration_s=20.0)
        beats = len(record.r_samples)
        bpm = beats / record.duration_s * 60.0
        assert 35 < bpm < 220

    def test_sign_runs_support_dream(self, name):
        """Every record leaves DREAM at least 5 protected MSBs on
        average — the ADC-headroom premise of Section IV."""
        record = load_record(name, duration_s=10.0)
        emt = DreamEMT()
        _, side = emt.encode(
            np.bitwise_and(record.samples, 0xFFFF)
        )
        assert float(emt.protected_bits(side).mean()) >= 5.0

    def test_zero_centred(self, name):
        """Section IV: values distribute around zero."""
        record = load_record(name, duration_s=10.0)
        mean = float(record.samples.mean())
        peak = float(np.abs(record.samples).max())
        assert abs(mean) < 0.15 * peak

    def test_annotation_labels_match_spec(self, name):
        record = load_record(name, duration_s=20.0)
        spec = CATALOG[name]
        allowed = {spec.rhythm.base_label} | set(spec.rhythm.ectopy)
        assert set(record.labels) <= allowed

    def test_r_peaks_near_local_extrema(self, name):
        """Ground-truth R annotations must sit on actual QRS energy."""
        record = load_record(name, duration_s=10.0)
        misses = 0
        for r in record.r_samples:
            lo, hi = max(0, r - 15), min(len(record.samples), r + 15)
            window = np.abs(record.samples[lo:hi])
            if window.size == 0:
                continue
            peak = float(window.max())
            background = float(np.median(np.abs(record.samples)))
            if peak < 3 * max(background, 1.0):
                misses += 1
        assert misses <= max(1, len(record.r_samples) // 10)
