"""Tests for record serialisation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signals.dataset import load_record
from repro.signals.io import read_corpus, read_record, save_corpus, save_record


class TestRoundtrip:
    def test_samples_bit_exact(self, tmp_path, record_106):
        save_record(record_106, tmp_path)
        back = read_record("106", tmp_path)
        assert np.array_equal(back.samples, record_106.samples)

    def test_annotations_preserved(self, tmp_path, record_106):
        save_record(record_106, tmp_path)
        back = read_record("106", tmp_path)
        assert back.labels == record_106.labels
        assert np.array_equal(back.r_samples, record_106.r_samples)

    def test_metadata_preserved(self, tmp_path, record_100):
        save_record(record_100, tmp_path)
        back = read_record("100", tmp_path)
        assert back.name == "100"
        assert back.fs_hz == record_100.fs_hz

    def test_signal_mv_restored_through_adc_inverse(self, tmp_path, record_100):
        save_record(record_100, tmp_path)
        back = read_record("100", tmp_path)
        # One quantisation step of agreement with the original trace.
        assert np.max(np.abs(back.signal_mv - record_100.signal_mv)) < 8.0 / 32768 + 1e-9

    def test_files_created(self, tmp_path, record_100):
        header = save_record(record_100, tmp_path)
        assert header.name == "100.hea"
        assert (tmp_path / "100.dat").exists()
        assert (tmp_path / "100.atr").exists()

    def test_dat_is_wfdb_format16(self, tmp_path, record_100):
        save_record(record_100, tmp_path)
        raw = np.fromfile(tmp_path / "100.dat", dtype="<i2")
        assert raw.size == record_100.samples.size


class TestCorpus:
    def test_save_and_read_corpus(self, tmp_path):
        records = [load_record(name, duration_s=2.0) for name in ("100", "106")]
        paths = save_corpus(records, tmp_path)
        assert len(paths) == 2
        corpus = read_corpus(tmp_path)
        assert set(corpus) == {"100", "106"}
        assert np.array_equal(corpus["106"].samples, records[1].samples)

    def test_read_corpus_requires_directory(self, tmp_path):
        with pytest.raises(SignalError):
            read_corpus(tmp_path / "missing")


class TestValidation:
    def test_missing_record(self, tmp_path):
        with pytest.raises(SignalError):
            read_record("999", tmp_path)

    def test_version_check(self, tmp_path, record_100):
        save_record(record_100, tmp_path)
        header_path = tmp_path / "100.hea"
        header = json.loads(header_path.read_text())
        header["version"] = 99
        header_path.write_text(json.dumps(header))
        with pytest.raises(SignalError):
            read_record("100", tmp_path)

    def test_truncated_samples_detected(self, tmp_path, record_100):
        save_record(record_100, tmp_path)
        dat = tmp_path / "100.dat"
        dat.write_bytes(dat.read_bytes()[:-10])
        with pytest.raises(SignalError):
            read_record("100", tmp_path)

    def test_format_check(self, tmp_path, record_100):
        save_record(record_100, tmp_path)
        header_path = tmp_path / "100.hea"
        header = json.loads(header_path.read_text())
        header["format"] = "int8"
        header_path.write_text(json.dumps(header))
        with pytest.raises(SignalError):
            read_record("100", tmp_path)
