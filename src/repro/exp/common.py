"""Shared machinery of the experiment drivers.

The paper's Monte-Carlo protocol (Section V):

* the amount of injected stuck-at faults follows the BER profiled for
  each voltage (here: :meth:`repro.energy.technology.Technology.ber`);
* every run uses "a different random fault-location map", justified by
  logical/physical address randomisation;
* "all the EMTs are tested reusing the same set of error
  locations/mappings" — for fairness, run ``r`` of every EMT shares one
  defect sample, drawn at the widest codeword and restricted to each
  technique's stored width;
* 200 runs per voltage point, averaging the SNRs in dB.

:func:`run_monte_carlo` implements exactly that protocol for one
application and one voltage across a set of EMTs.  By default all
``n_runs`` defect samples are drawn as one stacked batch and flow
through the pipeline as a 2-D ``(n_runs, n_words)`` block — the
trial-batched hot path (see PERFORMANCE.md) — which is bit-identical to
the historical run-by-run loop (kept as
:func:`run_monte_carlo_sequential`, the property-test reference) because
the batched draw consumes the RNG stream in the same per-run order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from ..apps.base import BiomedicalApp
from ..emt.base import EMT
from ..errors import ExperimentError
from ..mem.fabric import MemoryFabric
from ..mem.faults import sample_fault_map, sample_fault_map_batch
from ..mem.layout import PAPER_GEOMETRY, MemoryGeometry
from ..signals.dataset import load_record
from ..signals.metrics import SNR_CAP_DB

__all__ = [
    "ExperimentConfig",
    "MonteCarloResult",
    "default_runs",
    "load_corpus",
    "run_monte_carlo",
    "run_monte_carlo_sequential",
    "validate_registry_names",
]


def validate_registry_names(
    app_names: tuple[str, ...] = (), emt_names: tuple[str, ...] = ()
) -> None:
    """Reject unknown application/EMT names before any grid work starts.

    A campaign captures per-point failures instead of raising, which is
    right for transient faults but wrong for typos: a misspelt name at
    the end of the grid would only surface after the valid points — a
    potentially hours-long sweep — had already executed.
    """
    from ..apps.registry import EXTENSION_APPS, PAPER_APPS
    from ..emt import PAPER_EMTS

    known_apps = {**PAPER_APPS, **EXTENSION_APPS}
    for name in app_names:
        if name not in known_apps:
            raise ExperimentError(
                f"unknown application {name!r}; "
                f"available: {sorted(known_apps)}"
            )
    for name in emt_names:
        if name not in PAPER_EMTS:
            raise ExperimentError(
                f"unknown EMT {name!r}; available: {sorted(PAPER_EMTS)}"
            )


def default_runs(paper_value: int = 200) -> int:
    """Monte-Carlo run count, overridable via ``REPRO_RUNS``.

    The paper uses 200 runs per voltage point; set ``REPRO_RUNS=200`` for
    a full-fidelity reproduction or a smaller value for quick iteration.
    """
    raw = os.environ.get("REPRO_RUNS")
    if raw is None:
        return paper_value
    try:
        value = int(raw)
    except ValueError as exc:
        raise ExperimentError(f"REPRO_RUNS must be an integer, got {raw!r}") from exc
    if value < 1:
        raise ExperimentError(f"REPRO_RUNS must be >= 1, got {value}")
    return value


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the quality experiments.

    Attributes:
        records: catalog record names to average over ("different ECG
            signals with different pathologies", Section III).
        duration_s: seconds of each record to process.
        n_runs: Monte-Carlo runs per grid point (the paper uses 200).
        seed: master seed; every (voltage, run) pair derives its own
            child seed, so grid points are independent but reproducible.
        snr_cap_db: ceiling for bit-exact outputs (Fig 4's dashed line).
        geometry: data-memory organisation.
    """

    records: tuple[str, ...] = ("100", "106", "109", "118", "200")
    duration_s: float = 10.0
    n_runs: int = 25
    seed: int = 20160314
    snr_cap_db: float = SNR_CAP_DB
    geometry: MemoryGeometry = PAPER_GEOMETRY

    def __post_init__(self) -> None:
        if not self.records:
            raise ExperimentError("at least one record is required")
        if self.duration_s <= 0:
            raise ExperimentError("duration must be positive")
        if self.n_runs < 1:
            raise ExperimentError("n_runs must be >= 1")


@dataclass
class MonteCarloResult:
    """Per-EMT SNR statistics at one grid point."""

    snr_mean_db: dict[str, float] = field(default_factory=dict)
    snr_std_db: dict[str, float] = field(default_factory=dict)
    n_runs: int = 0

    def snr_sem_db(self, emt_name: str) -> float:
        """Standard error of the mean SNR for one technique."""
        if emt_name not in self.snr_std_db:
            raise ExperimentError(f"no statistics for EMT {emt_name!r}")
        if self.n_runs < 1:
            raise ExperimentError("no runs recorded")
        return self.snr_std_db[emt_name] / float(np.sqrt(self.n_runs))

    def snr_ci95_db(self, emt_name: str) -> tuple[float, float]:
        """Normal-approximation 95 % confidence interval of the mean.

        With the paper's 200 runs the normal approximation is accurate;
        at small pilot scales treat the interval as indicative.
        """
        mean = self.snr_mean_db.get(emt_name)
        if mean is None:
            raise ExperimentError(f"no statistics for EMT {emt_name!r}")
        half = 1.96 * self.snr_sem_db(emt_name)
        return (mean - half, mean + half)


def load_corpus(config: ExperimentConfig) -> dict[str, np.ndarray]:
    """Load the configured records' 16-bit sample streams."""
    return {
        name: load_record(name, duration_s=config.duration_s).samples
        for name in config.records
    }


def run_monte_carlo(
    app: BiomedicalApp,
    emts: dict[str, EMT],
    ber: float,
    config: ExperimentConfig,
    corpus: dict[str, np.ndarray],
    grid_seed: int,
) -> MonteCarloResult:
    """The paper's Section V protocol at one (app, BER) grid point.

    All ``config.n_runs`` defect samples are drawn as one stacked batch
    at the widest stored width among ``emts`` and restricted to each
    technique's width, so all EMTs face the same error locations; every
    (EMT, record) pair then makes a single trial-batched pipeline pass.
    The per-run SNR is the application's quality metric averaged over
    the record corpus; per-EMT statistics are computed over runs,
    averaging SNRs "in dB" as the paper specifies.

    Bit-identical to :func:`run_monte_carlo_sequential` (property-tested
    per EMT x voltage x trial count): the batched draw consumes the RNG
    stream in the sequential per-run order, and the per-run mean over
    records reduces the same values along the same axis order.
    """
    if not emts:
        raise ExperimentError("at least one EMT is required")
    widest = max(emt.stored_bits for emt in emts.values())
    rng = np.random.default_rng((config.seed, grid_seed))

    shared_maps = sample_fault_map_batch(
        config.n_runs, config.geometry.n_words, widest, ber, rng
    )
    result = MonteCarloResult(n_runs=config.n_runs)
    for name, emt in emts.items():
        fault_map = shared_maps.restricted_to(emt.stored_bits)
        per_record = []
        for samples in corpus.values():
            fabric = MemoryFabric(
                emt,
                fault_map=fault_map,
                geometry=config.geometry,
                collect_decode_stats=False,
            )
            outputs = app.run_batch(samples, fabric)
            per_record.append(
                app.output_snr_batch(
                    samples, outputs, cap_db=config.snr_cap_db
                )
            )
        # (n_records, n_runs) -> per-run corpus mean, then run statistics.
        runs = np.mean(np.stack(per_record, axis=0), axis=0)
        result.snr_mean_db[name] = float(runs.mean())
        result.snr_std_db[name] = float(runs.std())
    return result


def run_monte_carlo_sequential(
    app: BiomedicalApp,
    emts: dict[str, EMT],
    ber: float,
    config: ExperimentConfig,
    corpus: dict[str, np.ndarray],
    grid_seed: int,
) -> MonteCarloResult:
    """The historical run-by-run form of :func:`run_monte_carlo`.

    One fresh fabric per (run, EMT, record) — the direct transcription
    of the Section V loop.  Kept as the executable reference the
    property suite pins the batched path against; prefer
    :func:`run_monte_carlo` everywhere else.
    """
    if not emts:
        raise ExperimentError("at least one EMT is required")
    widest = max(emt.stored_bits for emt in emts.values())
    rng = np.random.default_rng((config.seed, grid_seed))
    per_emt: dict[str, list[float]] = {name: [] for name in emts}

    for _ in range(config.n_runs):
        shared_map = sample_fault_map(
            config.geometry.n_words, widest, ber, rng
        )
        for name, emt in emts.items():
            fault_map = shared_map.restricted_to(emt.stored_bits)
            snrs = []
            for samples in corpus.values():
                fabric = MemoryFabric(
                    emt,
                    fault_map=fault_map,
                    geometry=config.geometry,
                    collect_decode_stats=False,
                )
                output = app.run(samples, fabric)
                snrs.append(
                    app.output_snr(samples, output, cap_db=config.snr_cap_db)
                )
            per_emt[name].append(float(np.mean(snrs)))

    result = MonteCarloResult(n_runs=config.n_runs)
    for name, values in per_emt.items():
        arr = np.asarray(values)
        result.snr_mean_db[name] = float(arr.mean())
        result.snr_std_db[name] = float(arr.std())
    return result
