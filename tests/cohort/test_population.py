"""Tests for patient sampling and cohort specs (repro.cohort.population)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cohort import CohortSpec, PatientModel
from repro.errors import CohortError


def cohort(**overrides) -> CohortSpec:
    defaults = dict(name="test-cohort", size=50)
    defaults.update(overrides)
    return CohortSpec(**defaults)


class TestPatientModel:
    def test_defaults_valid(self):
        PatientModel()

    def test_empty_mix_rejected(self):
        with pytest.raises(CohortError, match="at least one option"):
            PatientModel(scenario_mix=())

    def test_negative_weight_rejected(self):
        with pytest.raises(CohortError, match="negative"):
            PatientModel(record_mix=(("100", -1.0),))

    def test_zero_weights_rejected(self):
        with pytest.raises(CohortError, match="sum to zero"):
            PatientModel(environment_mix=((1.0, 0.0),))

    def test_unknown_scenario_rejected(self):
        with pytest.raises(CohortError, match="unknown scenario"):
            PatientModel(scenario_mix=(("marathon", 1.0),))

    def test_unknown_record_rejected(self):
        with pytest.raises(CohortError, match="unknown record"):
            PatientModel(record_mix=(("999", 1.0),))

    def test_battery_validation(self):
        with pytest.raises(CohortError, match="battery spread"):
            PatientModel(battery_cv=-0.1)
        with pytest.raises(CohortError, match="battery clip"):
            PatientModel(battery_clip=(0.0, 1.0))

    def test_round_trip(self):
        model = PatientModel(
            record_mix=(("100", 0.5), ("119", 0.5)), battery_cv=0.2
        )
        assert PatientModel.from_dict(model.to_dict()) == model

    def test_malformed_payload(self):
        with pytest.raises(CohortError, match="malformed"):
            PatientModel.from_dict({"scenario_mix": [["active_day", 1.0]]})


class TestCohortSpec:
    def test_validation(self):
        with pytest.raises(CohortError, match="name"):
            cohort(name="")
        with pytest.raises(CohortError, match="size"):
            cohort(size=0)
        with pytest.raises(CohortError, match="duration scale"):
            cohort(duration_scale=0.0)

    def test_patient_reproducible_in_isolation(self):
        spec = cohort()
        assert spec.patient(7) == spec.patient(7)
        # ... and independent of the cohort size: patient 7 of a
        # 50-patient cohort is patient 7 of a 5000-patient cohort.
        assert cohort(size=5000).patient(7) == spec.patient(7)

    def test_patient_index_bounds(self):
        with pytest.raises(CohortError, match="outside cohort"):
            cohort(size=3).patient(3)
        with pytest.raises(CohortError, match="outside cohort"):
            cohort().patient(-1)

    def test_patients_differ(self):
        spec = cohort()
        profiles = spec.patients()
        assert len(profiles) == spec.size
        assert len({p.seed for p in profiles}) == spec.size
        assert len({p.battery_scale for p in profiles}) > 10

    def test_seed_changes_population(self):
        a = cohort(seed=1).patient(0)
        b = cohort(seed=2).patient(0)
        assert a != b

    def test_name_is_a_label_not_a_seed(self):
        # Patient k depends on (seed, k) alone: renaming a cohort keeps
        # its population paired patient by patient.
        renamed = cohort(name="other-label")
        assert renamed.patient(7) == cohort().patient(7)

    def test_mixes_respected(self):
        spec = cohort(
            size=400,
            model=PatientModel(
                record_mix=(("100", 0.8), ("119", 0.2)),
                environment_mix=((1.0, 1.0),),
                shielding_mix=((1.0, 1.0),),
            ),
        )
        profiles = spec.patients()
        share_100 = np.mean([p.record == "100" for p in profiles])
        assert 0.7 < share_100 < 0.9
        assert {p.noise_gain for p in profiles} == {1.0}

    def test_battery_spread_clipped(self):
        spec = cohort(
            size=200,
            model=PatientModel(battery_cv=1.0, battery_clip=(0.8, 1.2)),
        )
        scales = [p.battery_scale for p in spec.patients()]
        assert min(scales) >= 0.8
        assert max(scales) <= 1.2

    def test_phenotype_metadata(self):
        spec = cohort(
            model=PatientModel(record_mix=(("231", 1.0),))
        )
        profile = spec.patient(0)
        assert profile.heart_rate_bpm == 58.0
        assert "RBBB" in profile.description

    def test_round_trip(self):
        spec = cohort(
            duration_scale=0.1,
            voltages=(0.65, 0.8),
            emts=("secded",),
            window_s=4.0,
            app="dwt",
        )
        assert CohortSpec.from_dict(spec.to_dict()) == spec

    def test_malformed_payload(self):
        with pytest.raises(CohortError, match="malformed cohort"):
            CohortSpec.from_dict({"name": "x", "size": 3})


class TestMissionFor:
    def test_profile_shapes_mission(self):
        spec = cohort(
            model=PatientModel(
                scenario_mix=(("overnight", 1.0),),
                record_mix=(("119", 1.0),),
                environment_mix=((1.5, 1.0),),
                shielding_mix=((2.0, 1.0),),
            ),
        )
        profile = spec.patient(3)
        mission = spec.mission_for(profile)
        from repro.runtime.scenarios import scenario_spec

        base = scenario_spec("overnight")
        assert mission.name == "test-cohort-p00003"
        assert mission.seed == profile.seed
        assert all(seg.record == "119" for seg in mission.segments)
        for seg, base_seg in zip(mission.segments, base.segments):
            assert seg.noise_gain == pytest.approx(base_seg.noise_gain * 1.5)
            assert seg.ber_multiplier == pytest.approx(
                base_seg.ber_multiplier * 2.0
            )
        assert mission.battery.capacity_mah == pytest.approx(
            base.battery.capacity_mah * profile.battery_scale
        )

    def test_lattice_overrides_and_scale(self):
        spec = cohort(
            duration_scale=0.5,
            voltages=(0.7, 0.8),
            emts=("dream",),
            window_s=4.0,
            app="dwt",
        )
        mission = spec.mission_for(spec.patient(0))
        from repro.runtime.scenarios import scenario_spec

        base = scenario_spec(spec.patient(0).scenario)
        assert mission.voltages == (0.7, 0.8)
        assert mission.emts == ("dream",)
        assert mission.window_s == 4.0
        assert mission.app == "dwt"
        assert mission.total_duration_s == pytest.approx(
            base.total_duration_s * 0.5
        )
