"""Threshold alert rules over the trace-event schema.

Rules are declarative bounds on a run's folded metrics — a quality
floor per phenotype, a minimum fleet throughput, a maximum failed-point
count, a minimum cache hit rate — loaded from TOML and evaluated two
ways against the *same* events:

* **post-hoc** — ``repro report <run> --alerts rules.toml`` evaluates
  the finished trace and exits non-zero when any rule is breached (the
  CI gate);
* **live** — ``repro watch ... --alerts rules.toml`` re-evaluates every
  frame as events stream in, so a degrading fleet flags while it runs.

A rules file is a list of ``[[rule]]`` tables::

    [[rule]]
    name = "quality-floor-pvc"
    metric = "fleet.quality_p10_db"
    min = 2.0
    attrs = { phenotype = "119" }

    [[rule]]
    name = "no-failed-patients"
    metric = "fleet.patients_failed"
    max = 0

    [[rule]]
    name = "cache-warm"
    metric = "cache.hit_rate"
    min = 0.25
    severity = "warning"        # report, but never fail the exit code

``metric`` names a folded metric (:func:`repro.obs.report.
metric_series` semantics — counters summed, gauges last-write,
histograms merged) or one of the derived metrics ``cache.hit_rate``,
``spans.failed`` and ``wall_s``.  Histogram metrics compare their mean;
append ``.count``/``.sum``/``.min``/``.max`` to bound another facet.
``attrs`` restricts the rule to series carrying those attributes
(subset match).  When several series match — e.g. one gauge per
phenotype — a ``min`` bound is checked against the *worst* (smallest)
series and a ``max`` bound against the largest: an alert fires when
*any* series breaches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ObsError
from .report import metric_series, summarize

__all__ = [
    "AlertRule",
    "AlertOutcome",
    "DERIVED_METRICS",
    "load_rules",
    "rules_from_payload",
    "evaluate_rules",
    "breached",
    "render_outcomes",
]

#: Metrics computed from the trace rather than read from one series.
DERIVED_METRICS = ("cache.hit_rate", "spans.failed", "wall_s")

#: Valid rule severities; only ``error`` breaches affect exit codes.
SEVERITIES = ("error", "warning")

#: Histogram facet suffixes a rule's metric name may carry.
_HIST_FACETS = ("count", "sum", "min", "max", "mean")


@dataclass(frozen=True)
class AlertRule:
    """One declarative bound on a run metric.

    Attributes:
        name: rule identifier (shown in every report line).
        metric: folded metric name, derived metric, or
            ``<histogram>.<facet>``.
        min / max: the bound(s); at least one must be set.  The rule
            fires when the observed value falls below ``min`` or rises
            above ``max``.
        attrs: attribute subset a metric series must carry to be
            considered (e.g. ``{"phenotype": "119"}``).
        severity: ``"error"`` (default; breaches gate the exit code) or
            ``"warning"`` (reported only).
        require: when true, a missing metric is itself a breach —
            for CI rules that must never silently skip.
        description: free-form context echoed in reports.
    """

    name: str
    metric: str
    min: float | None = None
    max: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    severity: str = "error"
    require: bool = False
    description: str = ""


@dataclass(frozen=True)
class AlertOutcome:
    """One rule's evaluation against one set of events.

    ``status`` is ``"ok"``, ``"breached"`` or ``"missing"`` (no series
    matched).  ``value`` is the bound-relevant observation (worst
    series for ``min``, largest for ``max``), ``None`` when missing.
    """

    rule: AlertRule
    status: str
    value: float | None
    message: str

    @property
    def fired(self) -> bool:
        """True when this outcome should gate an exit code."""
        if self.rule.severity != "error":
            return False
        return self.status == "breached" or (
            self.status == "missing" and self.rule.require
        )


def rules_from_payload(payload: dict[str, Any]) -> list[AlertRule]:
    """Parse a rules payload (the parsed TOML) into validated rules."""
    tables = payload.get("rule")
    if not isinstance(tables, list) or not tables:
        raise ObsError(
            "alert rules must be a non-empty list of [[rule]] tables"
        )
    rules: list[AlertRule] = []
    seen: set[str] = set()
    for index, table in enumerate(tables):
        if not isinstance(table, dict):
            raise ObsError(f"rule[{index}] is not a table")
        where = f"rule[{index}]"
        name = table.get("name")
        if not isinstance(name, str) or not name:
            raise ObsError(f"{where} needs a non-empty 'name'")
        if name in seen:
            raise ObsError(f"duplicate rule name {name!r}")
        seen.add(name)
        metric = table.get("metric")
        if not isinstance(metric, str) or not metric:
            raise ObsError(f"rule {name!r} needs a non-empty 'metric'")
        lo, hi = table.get("min"), table.get("max")
        if lo is None and hi is None:
            raise ObsError(f"rule {name!r} needs a 'min' and/or 'max' bound")
        for label, bound in (("min", lo), ("max", hi)):
            if bound is not None and not isinstance(
                bound, (int, float)
            ):
                raise ObsError(f"rule {name!r} {label} must be numeric")
        if lo is not None and hi is not None and float(lo) > float(hi):
            raise ObsError(f"rule {name!r} has min > max")
        severity = table.get("severity", "error")
        if severity not in SEVERITIES:
            raise ObsError(
                f"rule {name!r} severity {severity!r} not in {SEVERITIES}"
            )
        attrs = table.get("attrs", {})
        if not isinstance(attrs, dict):
            raise ObsError(f"rule {name!r} attrs must be a table")
        unknown = set(table) - {
            "name", "metric", "min", "max", "attrs", "severity",
            "require", "description",
        }
        if unknown:
            raise ObsError(
                f"rule {name!r} has unknown keys {sorted(unknown)}"
            )
        rules.append(
            AlertRule(
                name=name,
                metric=metric,
                min=None if lo is None else float(lo),
                max=None if hi is None else float(hi),
                attrs=dict(attrs),
                severity=severity,
                require=bool(table.get("require", False)),
                description=str(table.get("description", "")),
            )
        )
    return rules


def load_rules(path: Path | str) -> list[AlertRule]:
    """Load and validate a TOML alert-rules file."""
    import tomllib

    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise ObsError(f"cannot read alert rules {source}: {exc}") from exc
    try:
        payload = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ObsError(f"{source} is not valid TOML: {exc}") from exc
    try:
        return rules_from_payload(payload)
    except ObsError as exc:
        raise ObsError(f"{source}: {exc}") from exc


# --------------------------------------------------------------------------
# Evaluation
# --------------------------------------------------------------------------


def _split_facet(metric: str) -> tuple[str, str | None]:
    """Peel an optional histogram facet suffix off a metric name."""
    base, _, facet = metric.rpartition(".")
    if base and facet in _HIST_FACETS:
        return base, facet
    return metric, None


def _series_value(slot: dict[str, Any], facet: str | None) -> float | None:
    """One folded series as a comparable scalar."""
    value = slot["value"]
    if slot["kind"] != "histogram":
        return float(value)
    if facet is None or facet == "mean":
        return value["sum"] / value["count"] if value["count"] else None
    return float(value[facet])


def _matching_values(
    rule: AlertRule,
    series: dict[tuple[str, tuple], dict[str, Any]],
    metric: str,
    facet: str | None,
) -> list[float]:
    values: list[float] = []
    required = rule.attrs.items()
    for (name, _attr_key), slot in series.items():
        if name != metric:
            continue
        attrs = slot["attrs"]
        if any(attrs.get(key) != want for key, want in required):
            continue
        value = _series_value(slot, facet)
        if value is not None:
            values.append(value)
    return values


def _derived_value(
    metric: str, events: list[dict], summary: dict[str, Any]
) -> float | None:
    if metric == "wall_s":
        return float(summary["wall_s"])
    if metric == "spans.failed":
        return float(len(summary["failed"]))
    if metric == "cache.hit_rate":
        metrics = summary["metrics"]
        hits = sum(
            metrics[name]["value"]
            for name in ("cache.memory_hit", "cache.disk_hit")
            if name in metrics
        )
        lookups = hits + metrics.get("cache.computed", {}).get("value", 0.0)
        if lookups <= 0:
            return None
        return hits / lookups
    return None


def evaluate_rules(
    rules: list[AlertRule], events: list[dict]
) -> list[AlertOutcome]:
    """Evaluate every rule against one run's events.

    Pure and side-effect-free: the watch loop re-invokes it per frame
    over the events tailed so far, the report path once over the full
    trace.
    """
    series = metric_series(events)
    summary = summarize(events)
    outcomes: list[AlertOutcome] = []
    for rule in rules:
        metric, facet = _split_facet(rule.metric)
        if rule.metric in DERIVED_METRICS:
            value = _derived_value(rule.metric, events, summary)
            values = [] if value is None else [value]
        else:
            values = _matching_values(rule, series, metric, facet)
            if not values and facet is not None:
                # Not a histogram facet after all — a plain metric whose
                # name happens to end in e.g. ".count".
                values = _matching_values(rule, series, rule.metric, None)
        if not values:
            outcomes.append(
                AlertOutcome(
                    rule, "missing", None,
                    f"{rule.metric}: no matching metric recorded",
                )
            )
            continue
        # Any-series-breaches semantics: a floor is judged against the
        # worst series, a ceiling against the largest.
        breaches: list[str] = []
        observed: float = values[0]
        if rule.min is not None:
            observed = min(values)
            if observed < rule.min:
                breaches.append(f"{observed:.6g} < min {rule.min:.6g}")
        if rule.max is not None:
            worst_high = max(values)
            if worst_high > rule.max:
                observed = worst_high
                breaches.append(f"{worst_high:.6g} > max {rule.max:.6g}")
            elif rule.min is None:
                observed = worst_high
        if breaches:
            outcomes.append(
                AlertOutcome(
                    rule, "breached", observed,
                    f"{rule.metric} = " + "; ".join(breaches)
                    + (f" over {len(values)} series"
                       if len(values) > 1 else ""),
                )
            )
        else:
            bounds = []
            if rule.min is not None:
                bounds.append(f">= {rule.min:.6g}")
            if rule.max is not None:
                bounds.append(f"<= {rule.max:.6g}")
            outcomes.append(
                AlertOutcome(
                    rule, "ok", observed,
                    f"{rule.metric} = {observed:.6g} ({', '.join(bounds)})",
                )
            )
    return outcomes


def breached(outcomes: list[AlertOutcome]) -> bool:
    """True when any outcome should gate a non-zero exit."""
    return any(outcome.fired for outcome in outcomes)


def render_outcomes(outcomes: list[AlertOutcome]) -> str:
    """The alert section text (report and watch render the same)."""
    n_fired = sum(1 for outcome in outcomes if outcome.fired)
    lines = [
        f"Alerts ({len(outcomes)} rule(s), {n_fired} firing):"
    ]
    for outcome in outcomes:
        rule = outcome.rule
        if outcome.status == "breached":
            marker = "ALERT" if rule.severity == "error" else "warn "
        elif outcome.status == "missing":
            marker = "ALERT" if outcome.fired else "  -  "
        else:
            marker = "  ok "
        suffix = f"  [{rule.description}]" if rule.description else ""
        lines.append(f"  {marker} {rule.name}: {outcome.message}{suffix}")
    return "\n".join(lines)
