"""repro — reproduction of Duch et al., "Energy vs. Reliability Trade-offs
Exploration in Biomedical Ultra-Low Power Devices" (DATE 2016).

The package implements the paper's contribution — the DREAM error
mitigation technique — together with every substrate its evaluation
depends on:

* :mod:`repro.emt` — DREAM, ECC SEC/DED, parity, and the hybrid
  voltage-triggered policy;
* :mod:`repro.mem` — the bit-accurate faulty (voltage-scaled) data
  memory: stuck-at fault maps, banked SRAM, the application-facing
  memory fabric;
* :mod:`repro.apps` — the five biomedical case studies (DWT, matrix
  filtering, compressed sensing, morphological filtering, wavelet
  delineation) plus the heartbeat classifier;
* :mod:`repro.signals` — the synthetic MIT-BIH-like ECG corpus;
* :mod:`repro.energy` — BER(V), CACTI-lite SRAM and codec-logic models;
* :mod:`repro.soc` — the VirtualSOC-lite MPSoC platform;
* :mod:`repro.exp` — drivers regenerating every figure and table;
* :mod:`repro.campaign` — the parallel design-space-exploration engine;
* :mod:`repro.runtime` — the adaptive runtime: closed-loop DVS/EMT
  mission simulation with operating-point policies;
* :mod:`repro.cohort` — population-scale fleet simulation over
  synthetic patient cohorts, with survival/percentile analytics;
* :mod:`repro.cache` — the process-safe disk calibration cache shared
  by missions and fleets;
* :mod:`repro.api` — the unified experiment API: one declarative,
  file-loadable :class:`~repro.api.Experiment` spec (TOML/JSON) and the
  :class:`~repro.api.Session` facade running every workload kind —
  figures, sweeps, missions, cohorts — through the campaign engine;
* :mod:`repro.obs` — observability: span-based tracing with
  worker-pool context propagation, counters/gauges/histograms, per-run
  JSONL trace sinks, and the ``repro report`` renderer;
* :mod:`repro.resilience` — supervised execution: the crash-tolerant
  worker pool behind campaigns and fleets (retry/timeout/backoff,
  poison-work quarantine, graceful cancellation) and the deterministic
  chaos harness (``REPRO_CHAOS`` / ``repro --chaos``).

Quickstart::

    import numpy as np
    from repro.emt import DreamEMT
    from repro.mem import MemoryFabric, sample_fault_map
    from repro.signals import load_record, snr_db

    record = load_record("106", duration_s=10.0)
    emt = DreamEMT()
    faults = sample_fault_map(16384, emt.stored_bits, ber=1e-3,
                              rng=np.random.default_rng(7))
    fabric = MemoryFabric(emt, fault_map=faults)
    stored = fabric.roundtrip("ecg", record.samples)
    print(snr_db(record.samples, stored))
"""

from . import (
    api,
    apps,
    campaign,
    emt,
    energy,
    exp,
    mem,
    obs,
    resilience,
    runtime,
    signals,
    soc,
)
from .errors import ReproError

__version__ = "1.7.0"

__all__ = [
    "api",
    "apps",
    "campaign",
    "emt",
    "energy",
    "exp",
    "mem",
    "obs",
    "resilience",
    "runtime",
    "signals",
    "soc",
    "ReproError",
    "__version__",
]
