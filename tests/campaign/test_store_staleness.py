"""Regression tests: the load() memo must survive mtime-granularity games.

A pure (size, mtime) memo key can serve stale records when the store
file is replaced by equal-size content within one mtime tick — e.g.
``compact()`` run by *another* ResultStore instance on a filesystem
with coarse timestamps.  The signature now carries a content
fingerprint; these tests pin that behaviour.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign.store import ResultStore


def _record(hash_: str, value: float) -> dict:
    return {
        "hash": hash_,
        "kind": "k",
        "params": {"x": value},
        "status": "ok",
        "result": {"y": value},
    }


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "stale.jsonl")


class TestMemoStaleness:
    def test_same_size_same_mtime_rewrite_is_detected(self, store):
        """The historical failure mode: equal-size content swapped in
        with the mtime pinned back must not be served from the memo."""
        store.append(_record("a" * 8, 1.0))
        before = store.load()
        assert before[("a" * 8)]["result"]["y"] == 1.0
        stat = store.path.stat()

        # Rewrite out-of-band: same byte count, different content.
        original = store.path.read_bytes()
        line = json.dumps(_record("b" * 8, 2.0), sort_keys=True) + "\n"
        assert len(line.encode()) == len(original)
        store.path.write_bytes(line.encode())
        # Pin size and mtime to the memoized signature.
        os.utime(store.path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.path.stat().st_mtime_ns == stat.st_mtime_ns
        assert store.path.stat().st_size == stat.st_size

        after = store.load()
        assert "b" * 8 in after and "a" * 8 not in after

    def test_foreign_compact_within_mtime_tick_is_detected(self, store):
        """A second instance superseding + compacting the same path can
        land on the original size; the first instance must notice."""
        store.append(_record("a" * 8, 1.0))
        assert store.load()[("a" * 8)]["result"]["y"] == 1.0
        stat = store.path.stat()

        other = ResultStore(store.path)
        other.append(_record("a" * 8, 9.0))  # supersede: same line length
        dropped = other.compact()
        assert dropped == 1
        # Same single-record size; force the pathological mtime reuse.
        os.utime(store.path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert store.path.stat().st_size == stat.st_size

        assert store.load()[("a" * 8)]["result"]["y"] == 9.0

    def test_memo_still_avoids_reparsing_untouched_files(self, store):
        """The fingerprint must not defeat the memo: repeated loads of
        an unchanged store parse the file exactly once."""
        store.append_many([_record("a" * 8, 1.0), _record("b" * 8, 2.0)])
        for _ in range(5):
            assert len(store.load()) == 2
        assert store.n_parses == 1

    def test_large_store_tail_append_is_detected(self, store):
        """Appends beyond the fingerprint head window still invalidate
        (the tail window sees them) even with a pinned mtime."""
        # ~40 records comfortably exceeds the 4 KiB head window.
        store.append_many(
            [_record(f"{i:064d}", float(i)) for i in range(40)]
        )
        assert len(store.load()) == 40
        stat = store.path.stat()

        with store.path.open("a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(_record("c" * 8, 3.0), sort_keys=True) + "\n"
            )
        os.utime(store.path, ns=(stat.st_atime_ns, stat.st_mtime_ns))

        assert len(store.load()) == 41
