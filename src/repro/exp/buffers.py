"""Buffer-sensitivity analysis — an extension of the Fig 2 methodology.

The paper injects faults into *all* data buffers ("the input,
intermediate and output buffers of the applications", Section III).
This driver refines that: it injects the same stuck-at pattern into one
named buffer at a time, quantifying which buffer class dominates each
application's fragility.  The answer motivates *selective buffer
placement* — a natural deployment of significance-based computing where
only the critical buffers live in a protected region.

The mechanism: applications allocate statically named buffers in the
fabric; a dry run discovers each buffer's address range, then a
position fault map restricted to that range drives per-buffer injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import BiomedicalApp, clean_fabric
from ..apps.registry import make_app
from ..emt.base import NoProtection
from ..errors import ExperimentError
from ..mem.fabric import MemoryFabric
from ..mem.faults import position_fault_map
from .common import ExperimentConfig, load_corpus

__all__ = ["BufferSensitivity", "run_buffer_sensitivity"]


@dataclass
class BufferSensitivity:
    """Per-buffer SNR under single-bit-position injection."""

    app_name: str
    position: int
    stuck_value: int
    #: buffer name -> mean output SNR with faults confined to it.
    snr_db: dict[str, float] = field(default_factory=dict)
    #: buffer name -> (base, length) discovered from the dry run.
    layout: dict[str, tuple[int, int]] = field(default_factory=dict)

    def most_critical(self) -> str:
        """The buffer whose corruption hurts the output most."""
        if not self.snr_db:
            raise ExperimentError("no buffers were analysed")
        return min(self.snr_db, key=lambda name: self.snr_db[name])


def run_buffer_sensitivity(
    app_name: str,
    position: int = 14,
    stuck_value: int = 1,
    config: ExperimentConfig | None = None,
    app: BiomedicalApp | None = None,
) -> BufferSensitivity:
    """Measure per-buffer sensitivity for one application.

    Args:
        app_name: registry name of the application.
        position: data-bit position to stick (default: a near-MSB bit,
            where Fig 2 shows the strongest effect).
        stuck_value: 0 or 1.
        config: corpus configuration.
        app: optional pre-built application instance.

    Returns:
        A :class:`BufferSensitivity` with one SNR entry per buffer the
        application allocated.
    """
    config = config or ExperimentConfig()
    corpus = load_corpus(config)
    if app is None:
        app = make_app(app_name)

    # Dry run to discover the static buffer layout.
    probe = clean_fabric()
    first = next(iter(corpus.values()))
    app.run(first, probe)
    layout = {
        name: (handle.base, handle.length)
        for name, handle in probe._buffers.items()
    }
    if not layout:
        raise ExperimentError(f"{app_name} allocated no buffers")

    result = BufferSensitivity(
        app_name=app_name,
        position=position,
        stuck_value=stuck_value,
        layout=layout,
    )
    full_map = position_fault_map(
        config.geometry.n_words, 16, position, stuck_value
    )
    for name, (base, length) in layout.items():
        fault_map = full_map.restricted_to_words(base, length)
        snrs = []
        for samples in corpus.values():
            fabric = MemoryFabric(
                NoProtection(), fault_map=fault_map, geometry=config.geometry
            )
            output = app.run(samples, fabric)
            snrs.append(
                app.output_snr(samples, output, cap_db=config.snr_cap_db)
            )
        result.snr_db[name] = float(np.mean(snrs))
    return result
