"""Population-scale fleet simulation: thousands of missions, one cache.

:class:`FleetSimulator` streams every patient of a
:class:`~repro.cohort.population.CohortSpec` through the existing
:class:`~repro.runtime.MissionSimulator` under one policy.  What makes a
1000-patient x 24 h fleet tractable:

* **shared calibration** — quality/energy models are keyed by content in
  the process-safe disk cache (:mod:`repro.cache`), so each ``(app,
  segment signature, operating point)`` is calibrated exactly once
  across the whole fleet *and* all worker processes (the cache's event
  log makes that auditable);
* **patient-level parallelism** — patients fan out over a supervised
  worker pool (:class:`~repro.resilience.SupervisedPool`): a dead or
  stuck worker is detected, respawned, and its patient requeued, so an
  OOM-killed worker costs one retry instead of hanging the fleet.
  Per-patient seeding depends on ``(cohort seed, patient index)`` only,
  so results are bit-identical for any worker count, simulation order,
  or retry count;
* **batched streaming** — the mission simulator prices windows per rung
  and batches its environment draws, so the per-window cost is one
  policy decision and a few array reads.

Failures are captured per patient, not fatal: a patient whose mission
raises becomes a ``status == "failed"`` row and the fleet keeps going —
the same discipline as the campaign runner.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .. import obs
from ..api.serde import policy_label
from ..cache import shared_cache
from ..energy.technology import TECH_32NM_LP, Technology
from ..errors import CohortError
from ..resilience import SupervisedPool, WorkOutcome, active_chaos, retry_serial
from ..runtime.policy import policy_from_dict
from ..runtime.simulator import MissionSimulator
from .population import CohortSpec

__all__ = ["FleetSimulator", "FleetResult", "simulate_patient"]

#: Signature of the optional progress callback:
#: ``progress(n_done, n_total, row)`` after every completed patient.
ProgressFn = Callable[[int, int, dict], None]


def simulate_patient(
    cohort: CohortSpec,
    index: int,
    policy: str | dict[str, Any],
    tech: Technology = TECH_32NM_LP,
    n_probe: int = 3,
    probe_duration_s: float = 4.0,
) -> dict[str, Any]:
    """Simulate one patient's mission; the fleet's unit of work.

    ``policy`` is the JSON-safe campaign form (registry name or
    ``{"name", "params"}`` dict) — a fresh, stateless-from-the-outside
    policy instance is built per patient.  Returns a flat row merging
    the patient's profile with their
    :class:`~repro.runtime.MissionResult` metrics and
    ``status == "ok"``; a failure is captured as a ``status == "failed"``
    row carrying the error text.  Rows are bit-identical wherever and in
    whatever order they are computed (the per-patient seeding
    guarantee).
    """
    profile = cohort.patient(index)
    row: dict[str, Any] = profile.to_dict()
    # In a pool worker this span is the top level, so closing it
    # flushes — pool teardown cannot lose completed patients' events.
    with obs.span(
        "patient", cohort=cohort.name, patient=profile.index,
    ) as patient_span:
        try:
            simulator = MissionSimulator(
                cohort.mission_for(profile),
                tech=tech,
                n_probe=n_probe,
                probe_duration_s=probe_duration_s,
            )
            result = simulator.run(policy_from_dict(policy))
        except Exception as exc:  # noqa: BLE001 - failure capture is the point
            row["status"] = "failed"
            row["error"] = f"{type(exc).__name__}: {exc}"
            obs.counter("fleet.patients_failed")
            patient_span.fail(row["error"])
            return row
        row.update(result.to_dict())
        row["status"] = "ok"
        obs.counter("fleet.patients_ok")
        # Throttled per-process resource gauges (worker RSS/CPU) at
        # the per-patient seam — one boolean check when untraced.
        obs.resource_probe()
        return row


#: Worker-process state installed by the pool initializer; holding the
#: rebuilt cohort here avoids re-parsing it for every patient.
_WORKER_STATE: tuple[CohortSpec, Any, dict] | None = None


def _init_worker(
    cohort_payload: dict, policy: Any, knobs: dict
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (CohortSpec.from_dict(cohort_payload), policy, knobs)


def _worker_simulate(index: int) -> dict[str, Any]:
    cohort, policy, knobs = _WORKER_STATE
    return simulate_patient(cohort, index, policy, **knobs)


@dataclass
class FleetResult:
    """Outcome of one cohort x policy fleet run.

    Attributes:
        cohort_name / policy: what ran.
        rows: one row per patient, in patient-index order — profile
            fields plus mission metrics (``status == "ok"``) or the
            captured ``error`` (``status == "failed"``).
        elapsed_s: wall-clock time of the run.
        n_workers: worker processes used.
        cache: shared-cache diagnostics snapshot taken after the run
            (disk entries are fleet-wide; the process counters cover
            this process only, so they are complete only for
            single-worker runs).
    """

    cohort_name: str
    policy: Any
    rows: list[dict] = field(default_factory=list)
    elapsed_s: float = 0.0
    n_workers: int = 1
    cache: dict[str, Any] = field(default_factory=dict)

    def ok_rows(self) -> list[dict]:
        """Rows of patients whose mission completed."""
        return [row for row in self.rows if row["status"] == "ok"]

    def failures(self) -> list[dict]:
        """Rows of patients whose mission raised (with ``error`` text)."""
        return [row for row in self.rows if row["status"] == "failed"]

    @property
    def patients_per_s(self) -> float:
        """Fleet throughput of this run."""
        if self.elapsed_s <= 0:
            return 0.0
        return len(self.rows) / self.elapsed_s

    def summary(self) -> dict[str, Any]:
        """Population metrics: the fleet reduced to one JSON-safe dict.

        Lifetime percentiles answer the deployment question the paper's
        single-device numbers cannot: ``lifetime_p5_days`` is the
        guarantee 95 % of wearers exceed, ``quality_p10_db`` the output
        quality the worst decile of patients still gets (each patient
        represented by their worst window).
        """
        ok = self.ok_rows()
        summary: dict[str, Any] = {
            "cohort": self.cohort_name,
            "policy": policy_label(self.policy),
            "n_patients": len(self.rows),
            "n_failed": len(self.failures()),
            "elapsed_s": self.elapsed_s,
            "patients_per_s": self.patients_per_s,
            "cache": dict(self.cache),
        }
        if not ok:
            return summary
        lifetimes = np.asarray([row["lifetime_days"] for row in ok])
        worst = np.asarray([row["worst_snr_db"] for row in ok])
        mean_snr = np.asarray([row["mean_snr_db"] for row in ok])
        power = np.asarray([row["average_power_uw"] for row in ok])
        windows = np.asarray([row["n_windows"] for row in ok])
        violations = np.asarray([row["n_violations"] for row in ok])
        summary.update(
            {
                "survival_fraction": float(
                    np.mean([row["survived"] for row in ok])
                ),
                "lifetime_p5_days": float(np.percentile(lifetimes, 5.0)),
                "lifetime_p50_days": float(np.percentile(lifetimes, 50.0)),
                "quality_p10_db": float(np.percentile(worst, 10.0)),
                "quality_p50_db": float(np.percentile(worst, 50.0)),
                "mean_snr_db": float(mean_snr.mean()),
                "average_power_uw": float(power.mean()),
                "violations_per_1k_windows": float(
                    1000.0 * violations.sum() / max(1, windows.sum())
                ),
            }
        )
        return summary


class FleetSimulator:
    """Run a cohort's fleet of patient missions under one policy.

    Args:
        cohort: the population to simulate.
        tech: technology node (default: the paper's 32 nm LP node).
        n_probe / probe_duration_s: calibration fidelity knobs, passed
            through to every patient's :class:`MissionSimulator`.

    Example:
        >>> from repro.cohort import CohortSpec, FleetSimulator
        >>> fleet = FleetSimulator(
        ...     CohortSpec(name="tiny", size=2, duration_scale=0.005)
        ... )
        >>> result = fleet.run("hysteresis")
        >>> [row["status"] for row in result.rows]
        ['ok', 'ok']
    """

    def __init__(
        self,
        cohort: CohortSpec,
        tech: Technology = TECH_32NM_LP,
        n_probe: int = 3,
        probe_duration_s: float = 4.0,
    ) -> None:
        self.cohort = cohort
        self.tech = tech
        self.n_probe = n_probe
        self.probe_duration_s = probe_duration_s

    def _knobs(self) -> dict[str, Any]:
        return {
            "tech": self.tech,
            "n_probe": self.n_probe,
            "probe_duration_s": self.probe_duration_s,
        }

    def simulate_patient(
        self, index: int, policy: str | dict[str, Any]
    ) -> dict[str, Any]:
        """One patient's row, exactly as a fleet run would produce it."""
        return simulate_patient(
            self.cohort, index, policy, **self._knobs()
        )

    def run(
        self,
        policy: str | dict[str, Any],
        n_workers: int = 1,
        indices: Sequence[int] | None = None,
        progress: ProgressFn | None = None,
    ) -> FleetResult:
        """Simulate the fleet (or the sub-fleet ``indices``).

        Args:
            policy: JSON-safe policy payload, rebuilt per patient.
            n_workers: worker processes; ``1`` runs in-process.
            indices: patient indices to simulate (default: the whole
                cohort).  Order does not affect any patient's result —
                rows always come back sorted by patient index.
            progress: optional callback after every patient with
                ``(n_done, n_total, row)`` (completion order).
        """
        if n_workers < 1:
            raise CohortError(f"n_workers must be >= 1, got {n_workers}")
        todo = (
            list(range(self.cohort.size))
            if indices is None
            else list(indices)
        )
        started = time.perf_counter()
        rows: list[dict] = []
        label = policy_label(policy)

        def _absorb(row: dict) -> None:
            rows.append(row)
            if progress is not None:
                progress(len(rows), len(todo), row)
            obs.heartbeat(
                "fleet.progress", len(rows),
                cohort=self.cohort.name, policy=label, total=len(todo),
            )

        def _row_of(outcome: WorkOutcome) -> dict:
            """An outcome's row; quarantined patients become failures."""
            if outcome.status == "completed":
                return outcome.value
            index = int(outcome.key.rsplit("-", 1)[1])
            row = self.cohort.patient(index).to_dict()
            last = outcome.history[-1] if outcome.history else {}
            row["status"] = "failed"
            row["error"] = last.get("error", "quarantined")
            row["attempts"] = outcome.attempts
            row["attempt_history"] = [
                {k: v for k, v in entry.items() if k != "traceback"}
                for entry in outcome.history
            ]
            return row

        with obs.span(
            "fleet",
            cohort=self.cohort.name,
            policy=label,
            patients=len(todo),
            workers=n_workers,
        ) as fleet_span:
            if n_workers == 1 or len(todo) <= 1:
                chaos = active_chaos()
                for n_fresh, index in enumerate(todo, start=1):
                    outcome = retry_serial(
                        lambda i: self.simulate_patient(i, policy),
                        f"patient-{index}",
                        index,
                        name="fleet",
                    )
                    _absorb(_row_of(outcome))
                    chaos.check_interrupt(n_fresh)
            else:
                # Supervised fan-out: one patient per dispatch, dead
                # workers respawned and their patients requeued,
                # poison patients quarantined as failed rows.
                pool = SupervisedPool(
                    _worker_simulate,
                    min(n_workers, len(todo)),
                    initializer=_init_worker,
                    initargs=(
                        self.cohort.to_dict(), policy, self._knobs()
                    ),
                    name="fleet",
                )
                # Workers spawned inside worker_parent() (including
                # respawns after a crash) inherit the fleet span id, so
                # their per-patient spans hang off this fleet in the
                # report's tree.
                with obs.worker_parent(fleet_span.span_id):
                    for outcomes in pool.run(
                        [(f"patient-{index}", index) for index in todo]
                    ):
                        for outcome in outcomes:
                            _absorb(_row_of(outcome))
            elapsed = time.perf_counter() - started
            if obs.enabled():
                if elapsed > 0:
                    obs.gauge(
                        "fleet.patients_per_s", len(rows) / elapsed
                    )
                # Per-phenotype population gauges: the worst-decile
                # quality and survival each record class saw, the
                # series alert rules put floors under.
                ok = [row for row in rows if row["status"] == "ok"]
                by_record: dict[str, list[dict]] = {}
                for row in ok:
                    by_record.setdefault(str(row["record"]), []).append(row)
                for record, group in sorted(by_record.items()):
                    worst = [row["worst_snr_db"] for row in group]
                    obs.gauge(
                        "fleet.quality_p10_db",
                        float(np.percentile(worst, 10.0)),
                        cohort=self.cohort.name, policy=label,
                        phenotype=record,
                    )
                    obs.gauge(
                        "fleet.survival_fraction",
                        float(np.mean([row["survived"] for row in group])),
                        cohort=self.cohort.name, policy=label,
                        phenotype=record,
                    )
                if len(rows) - len(ok):
                    obs.counter(
                        "fleet.patients_failed", len(rows) - len(ok)
                    )
        rows.sort(key=lambda row: row["patient"])
        return FleetResult(
            cohort_name=self.cohort.name,
            policy=policy,
            rows=rows,
            elapsed_s=elapsed,
            n_workers=n_workers,
            cache=shared_cache().info(),
        )
