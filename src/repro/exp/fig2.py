"""Experiment E1 — Fig 2: SNR vs data-bit position of injected errors.

The paper's significance characterisation (Section III): for every bit
position 0..15 of the 16-bit data words, stick that bit of *all* data
buffers successively at '1' and at '0', run each application, and record
the output SNR (Formula 1) averaged over ECG records with different
pathologies.  No EMT is involved — this experiment is what motivates
DREAM's asymmetric MSB protection:

* SNR decreases monotonically (on trend) as the stuck bit moves toward
  the MSB;
* stuck-at-1 errors on MSBs hurt *less* than stuck-at-0 for apps whose
  samples are predominantly negative (the error is hidden by the sign
  run) and vice versa for predominantly positive data;
* matrix filtering sits well below the other curves because each output
  element depends on a full row and column of inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import BiomedicalApp
from ..apps.registry import make_app
from ..emt.base import NoProtection
from ..errors import ExperimentError
from ..mem.fabric import MemoryFabric
from ..mem.faults import position_fault_map
from .common import ExperimentConfig, load_corpus

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """SNR series per application and stuck value.

    ``snr_db[app_name][stuck_value]`` is a length-16 list: the average
    output SNR with bit ``position`` of every data word stuck at
    ``stuck_value``.
    """

    positions: list[int] = field(default_factory=lambda: list(range(16)))
    snr_db: dict[str, dict[int, list[float]]] = field(default_factory=dict)
    config: ExperimentConfig | None = None

    def series(self, app_name: str, stuck_value: int) -> list[float]:
        """One plotted curve of Fig 2."""
        if app_name not in self.snr_db:
            raise ExperimentError(f"no data for app {app_name!r}")
        return self.snr_db[app_name][stuck_value]


def run_fig2(
    app_names: tuple[str, ...] = (
        "dwt",
        "matrix_filter",
        "compressed_sensing",
        "morphology",
        "delineation",
    ),
    config: ExperimentConfig | None = None,
    apps: dict[str, BiomedicalApp] | None = None,
) -> Fig2Result:
    """Run the Fig 2 bit-significance sweep.

    Args:
        app_names: applications to characterise (default: the paper's
            five case studies).
        config: experiment knobs; Fig 2 is deterministic (no Monte
            Carlo), so only ``records`` and ``duration_s`` matter.
        apps: optional pre-built application instances (overrides
            ``app_names``).

    Returns:
        A :class:`Fig2Result` with one SNR series per (app, stuck value).
    """
    config = config or ExperimentConfig()
    corpus = load_corpus(config)
    if apps is None:
        apps = {name: make_app(name) for name in app_names}

    result = Fig2Result(config=config)
    data_bits = 16
    for name, app in apps.items():
        per_value: dict[int, list[float]] = {0: [], 1: []}
        for stuck_value in (0, 1):
            for position in range(data_bits):
                fault_map = position_fault_map(
                    config.geometry.n_words, data_bits, position, stuck_value
                )
                snrs = []
                for samples in corpus.values():
                    fabric = MemoryFabric(
                        NoProtection(),
                        fault_map=fault_map,
                        geometry=config.geometry,
                    )
                    output = app.run(samples, fabric)
                    snrs.append(
                        app.output_snr(
                            samples, output, cap_db=config.snr_cap_db
                        )
                    )
                per_value[stuck_value].append(float(np.mean(snrs)))
        result.snr_db[name] = per_value
    return result
