"""The memory fabric: how applications touch the faulty data memory.

:class:`MemoryFabric` is the integration point between the biomedical
applications and the reliability machinery.  An application declares
named buffers (static allocation, as embedded firmware would), writes
samples into them and reads them back; every round-trip passes through

    EMT encode -> faulty SRAM write .. read -> EMT decode

with DREAM's side information held in a separate always-correct array
(the nominal-voltage mask memory).  Stuck-at corruption therefore reaches
the application exactly where the paper's platform lets it: in the input,
intermediate and output buffers living in the voltage-scaled memory.

The fabric also keeps the counters the energy model consumes (reads and
writes to the data and mask memories) and an optional access trace for
the MPSoC crossbar simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._bitops import to_signed, to_unsigned
from ..emt.base import EMT, DecodeStats
from ..errors import MemoryModelError
from .faults import FaultMap
from .layout import PAPER_GEOMETRY, AddressMap, MemoryGeometry
from .sram import FaultySRAM

__all__ = ["BufferHandle", "AccessEvent", "MemoryFabric"]


@dataclass(frozen=True)
class BufferHandle:
    """A named, statically allocated region of the data memory."""

    name: str
    base: int
    length: int


@dataclass(frozen=True)
class AccessEvent:
    """One batched access, for the crossbar simulator's trace replay."""

    is_write: bool
    base: int
    length: int
    buffer: str


@dataclass
class FabricStats:
    """Aggregate activity counters for one fabric lifetime."""

    data_reads: int = 0
    data_writes: int = 0
    side_reads: int = 0
    side_writes: int = 0
    decode: DecodeStats = field(default_factory=DecodeStats)


class MemoryFabric:
    """Application-facing view of the protected, faulty data memory.

    Args:
        emt: the error-mitigation technique in effect.
        fault_map: permanent defects of the physical array.  Its width
            must equal ``emt.stored_bits`` (use
            :meth:`repro.mem.faults.FaultMap.restricted_to` when sharing
            one defect set across EMTs of different widths, as the paper's
            fair-comparison methodology requires).  ``None`` means a
            defect-free memory.
        geometry: data-memory organisation; defaults to the paper's
            32 kB / 16-bank array, widened to the EMT's stored width.
        address_map: optional logical-to-physical scrambling.
        record_trace: keep an :class:`AccessEvent` list for the MPSoC
            simulator.

    Example:
        >>> import numpy as np
        >>> from repro.emt import DreamEMT
        >>> fabric = MemoryFabric(DreamEMT())
        >>> out = fabric.roundtrip("samples", np.array([-5, 123]))
        >>> out.tolist()
        [-5, 123]
    """

    def __init__(
        self,
        emt: EMT,
        fault_map: FaultMap | None = None,
        geometry: MemoryGeometry | None = None,
        address_map: AddressMap | None = None,
        record_trace: bool = False,
    ) -> None:
        if geometry is None:
            geometry = PAPER_GEOMETRY
        geometry = geometry.with_word_bits(emt.stored_bits)
        if fault_map is not None and fault_map.word_bits != emt.stored_bits:
            raise MemoryModelError(
                f"fault map width {fault_map.word_bits} != EMT stored "
                f"width {emt.stored_bits}; restrict or resample the map"
            )
        self.emt = emt
        self.sram = FaultySRAM(geometry, fault_map, address_map)
        # The mask/side memory runs at nominal supply: plain intact array.
        self._side = (
            np.zeros(geometry.n_words, dtype=np.int64)
            if emt.side_bits
            else None
        )
        self._buffers: dict[str, BufferHandle] = {}
        self._next_free = 0
        self.stats = FabricStats()
        self.trace: list[AccessEvent] | None = [] if record_trace else None

    # -- allocation ---------------------------------------------------------

    def allocate(self, name: str, n_words: int) -> BufferHandle:
        """Reserve ``n_words`` for buffer ``name`` (idempotent by name)."""
        if n_words <= 0:
            raise MemoryModelError(
                f"buffer size must be positive, got {n_words}"
            )
        existing = self._buffers.get(name)
        if existing is not None:
            if existing.length < n_words:
                raise MemoryModelError(
                    f"buffer {name!r} already allocated with "
                    f"{existing.length} words; cannot grow to {n_words}"
                )
            return existing
        if self._next_free + n_words > self.sram.geometry.n_words:
            raise MemoryModelError(
                f"out of data memory allocating {n_words} words for "
                f"{name!r} ({self._next_free} already in use of "
                f"{self.sram.geometry.n_words})"
            )
        handle = BufferHandle(name=name, base=self._next_free, length=n_words)
        self._buffers[name] = handle
        self._next_free += n_words
        return handle

    @property
    def words_allocated(self) -> int:
        """Words currently reserved by named buffers."""
        return self._next_free

    def buffer(self, name: str) -> BufferHandle:
        """Look up an allocated buffer by name."""
        if name not in self._buffers:
            raise MemoryModelError(f"buffer {name!r} was never allocated")
        return self._buffers[name]

    # -- data movement ------------------------------------------------------

    def write(self, handle: BufferHandle, values: np.ndarray) -> None:
        """Encode signed values and store them at the buffer's base."""
        signed = np.asarray(values, dtype=np.int64)
        if signed.ndim != 1:
            raise MemoryModelError("fabric buffers are one-dimensional")
        if signed.size > handle.length:
            raise MemoryModelError(
                f"writing {signed.size} words into {handle.length}-word "
                f"buffer {handle.name!r}"
            )
        payload = to_unsigned(signed, self.emt.data_bits)
        stored, side = self.emt.encode(payload)
        addresses = np.arange(handle.base, handle.base + signed.size)
        self.sram.write(addresses, stored)
        self.stats.data_writes += int(signed.size)
        if side is not None:
            if self._side is None:  # pragma: no cover - guarded by side_bits
                raise MemoryModelError("EMT produced side info unexpectedly")
            self._side[addresses] = side
            self.stats.side_writes += int(signed.size)
        if self.trace is not None:
            self.trace.append(
                AccessEvent(True, handle.base, int(signed.size), handle.name)
            )

    def read(self, handle: BufferHandle, n_words: int | None = None) -> np.ndarray:
        """Load, decode and sign-extend the buffer's first ``n_words``."""
        count = handle.length if n_words is None else n_words
        if not 0 < count <= handle.length:
            raise MemoryModelError(
                f"cannot read {count} words from {handle.length}-word "
                f"buffer {handle.name!r}"
            )
        addresses = np.arange(handle.base, handle.base + count)
        stored = self.sram.read(addresses)
        self.stats.data_reads += count
        side = None
        if self._side is not None:
            side = self._side[addresses]
            self.stats.side_reads += count
        payload = self.emt.decode(stored, side, self.stats.decode)
        if self.trace is not None:
            self.trace.append(
                AccessEvent(False, handle.base, count, handle.name)
            )
        return to_signed(payload, self.emt.data_bits)

    def roundtrip(self, name: str, values: np.ndarray) -> np.ndarray:
        """Write ``values`` to buffer ``name`` and read them straight back.

        The idiom applications use at every pipeline-stage boundary: the
        stage's result is parked in the faulty memory and whatever
        survives is what the next stage computes on.
        """
        signed = np.asarray(values, dtype=np.int64)
        handle = self.allocate(name, max(signed.size, 1))
        self.write(handle, signed)
        return self.read(handle, signed.size)
