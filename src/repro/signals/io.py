"""Record serialisation: a WFDB-flavoured on-disk format.

PhysioNet distributes MIT-BIH records as a header + binary signal +
annotation triple; this module provides the equivalent for the synthetic
corpus so experiments can pin an exact input set to disk (and diff it
across machines) instead of relying on generator determinism alone.

Format: a directory containing, per record,

* ``<name>.hea``  — JSON header: name, sampling rate, sample count;
* ``<name>.dat``  — little-endian ``int16`` samples (WFDB format 16);
* ``<name>.atr``  — JSON beat annotations (sample index + label).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..errors import SignalError
from .dataset import Record

__all__ = ["save_record", "read_record", "save_corpus", "read_corpus"]

_FORMAT_VERSION = 1


def save_record(record: Record, directory: str | Path) -> Path:
    """Write one record in the on-disk format; returns the header path."""
    base = Path(directory)
    base.mkdir(parents=True, exist_ok=True)

    samples = np.asarray(record.samples, dtype=np.int64)
    if samples.size and (
        int(samples.min()) < -32768 or int(samples.max()) > 32767
    ):
        raise SignalError("record samples exceed the 16-bit format range")

    header = {
        "version": _FORMAT_VERSION,
        "name": record.name,
        "fs_hz": record.fs_hz,
        "n_samples": int(samples.size),
        "format": "int16-le",
    }
    header_path = base / f"{record.name}.hea"
    header_path.write_text(json.dumps(header, indent=2) + "\n")

    samples.astype("<i2").tofile(base / f"{record.name}.dat")

    annotations = {
        "r_samples": [int(i) for i in record.r_samples],
        "labels": list(record.labels),
    }
    (base / f"{record.name}.atr").write_text(
        json.dumps(annotations, indent=2) + "\n"
    )
    return header_path


def read_record(name: str, directory: str | Path) -> Record:
    """Read one record previously written by :func:`save_record`.

    The float ``signal_mv`` channel is not stored on disk (the 16-bit
    samples are the experiment input); it is restored through the ADC
    inverse so round-tripped records remain usable everywhere.
    """
    base = Path(directory)
    header_path = base / f"{name}.hea"
    if not header_path.exists():
        raise SignalError(f"no record {name!r} under {base}")
    header = json.loads(header_path.read_text())
    if header.get("version") != _FORMAT_VERSION:
        raise SignalError(
            f"unsupported record format version {header.get('version')!r}"
        )
    if header.get("format") != "int16-le":
        raise SignalError(f"unsupported sample format {header.get('format')!r}")

    samples = np.fromfile(base / f"{name}.dat", dtype="<i2").astype(np.int64)
    if samples.size != header["n_samples"]:
        raise SignalError(
            f"sample file length {samples.size} does not match header "
            f"({header['n_samples']})"
        )
    annotations = json.loads((base / f"{name}.atr").read_text())
    from .quantize import dac_restore

    return Record(
        name=header["name"],
        fs_hz=float(header["fs_hz"]),
        samples=samples,
        signal_mv=dac_restore(samples),
        r_samples=np.asarray(annotations["r_samples"], dtype=np.int64),
        labels=list(annotations["labels"]),
    )


def save_corpus(records: list[Record], directory: str | Path) -> list[Path]:
    """Write several records; returns their header paths."""
    return [save_record(record, directory) for record in records]


def read_corpus(directory: str | Path) -> dict[str, Record]:
    """Read every record found under ``directory``, keyed by name."""
    base = Path(directory)
    if not base.is_dir():
        raise SignalError(f"{base} is not a directory")
    corpus = {}
    for header_path in sorted(base.glob("*.hea")):
        record = read_record(header_path.stem, base)
        corpus[record.name] = record
    return corpus
