"""Synthetic ECG substrate replacing the MIT-BIH Arrhythmia database.

The paper evaluates its applications on 16-bit ECG traces from PhysioNet's
MIT-BIH Arrhythmia database, averaging results over "different ECG signals
with different pathologies".  PhysioNet is not reachable in this
environment, so this package synthesises an equivalent corpus:

* :mod:`repro.signals.synthesis` — a dynamical ECG generator in the spirit
  of ECGSYN (McSharry et al.): per-beat P-QRS-T morphology as a sum of
  Gaussian waves, driven by an RR tachogram with physiological LF/HF
  variability.
* :mod:`repro.signals.pathologies` — beat-morphology presets (normal, PVC,
  APC, bundle-branch block, paced) and rhythm descriptors mixing them.
* :mod:`repro.signals.dataset` — a deterministic catalog of MIT-BIH-like
  records with beat annotations.
* :mod:`repro.signals.noise` — baseline wander, mains interference and EMG
  noise models.
* :mod:`repro.signals.quantize` — the 16-bit ADC front-end.
* :mod:`repro.signals.metrics` — SNR (the paper's Formula 1), MSE and PRD.
"""

from .dataset import (
    Record,
    RecordSpec,
    default_catalog,
    load_record,
    synthesize_record,
)
from .metrics import mse, prd, snr_db
from .quantize import adc_quantize, dac_restore
from .synthesis import ECGGenerator, rr_tachogram

__all__ = [
    "Record",
    "RecordSpec",
    "default_catalog",
    "load_record",
    "synthesize_record",
    "mse",
    "prd",
    "snr_db",
    "adc_quantize",
    "dac_restore",
    "ECGGenerator",
    "rr_tachogram",
]
