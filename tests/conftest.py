"""Shared fixtures for the test suite.

Records and application outputs are expensive enough to matter at suite
scale, so the common ones are session-scoped.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.mem.layout import MemoryGeometry
from repro.signals.dataset import load_record


@pytest.fixture(scope="session", autouse=True)
def _isolated_calibration_cache(tmp_path_factory):
    """Point the shared calibration cache at a session-scoped tmp dir.

    Keeps the suite hermetic: runs never read calibrations persisted by
    earlier runs (or leave any behind in the working tree), while tests
    still exercise the real disk layer — and worker processes, which
    inherit the environment, share the same root.  Tests that need a
    private cache root override ``REPRO_CACHE_DIR`` themselves.
    """
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("calibration-cache")
    )
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def record_100():
    """Five seconds of the normal-sinus-rhythm record."""
    return load_record("100", duration_s=5.0)


@pytest.fixture(scope="session")
def record_106():
    """Five seconds of the PVC-rich record."""
    return load_record("106", duration_s=5.0)


@pytest.fixture(scope="session")
def short_samples(record_100):
    """A 1024-sample 16-bit ECG slice, the apps' native window."""
    return record_100.samples[:1024]


@pytest.fixture()
def rng():
    """A fixed-seed generator, fresh per test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def small_geometry():
    """A tiny banked memory for fast exhaustive checks."""
    return MemoryGeometry(n_words=256, word_bits=16, n_banks=4)
