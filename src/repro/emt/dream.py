"""DREAM — Dynamic eRror compEnsation And Masking (paper Section IV).

DREAM exploits two properties of biomedical data established by the
paper's Section III characterisation:

1. ADC samples rarely span the full 16-bit range, so most words begin with
   a *run* of identical most-significant bits (sign-extension bits);
2. errors on MSB positions dominate output degradation, while LSB errors
   are largely tolerable.

Write path
    While a sample is written to the faulty data memory, a priority
    encoder measures the length of its MSB run.  The run length (as a
    4-bit *mask ID* for 16-bit words) and the sign bit are stored in a
    small **error-free mask memory** kept at nominal supply voltage —
    ``1 + log2(data_bits)`` extra bits per word (Formula 2; 5 bits for the
    paper's 16-bit words).

Read path (paper Fig 3)
    The mask ID indexes a lookup table producing a full bit mask covering
    the MSB run.  Two logical operations rebuild the protected bits from
    the (possibly corrupted) stored word:

    * ``OR`` with the run mask rebuilds a *negative* sample's run of ones,
    * ``AND`` with its complement rebuilds a *positive* sample's zeros,

    and a 2-to-1 multiplexer driven by the stored sign bit selects the
    right variant.  Additionally the *Set one bit* block forces the first
    bit below the run to the inverted sign — that bit's value is implied
    by the run ending there, so DREAM always corrects ``run + 1`` MSBs no
    matter how many faults landed on them.

When the run covers the whole word (mask ID ``2**mask_id_bits - 1``) the
sample is exactly 0 or -1 and every bit is reconstructed.
"""

from __future__ import annotations

import numpy as np

from .._bitops import bit_mask, sign_run_length, to_unsigned
from ..errors import EMTError
from .base import EMT, DecodeStats

__all__ = ["DreamEMT"]


class DreamEMT(EMT):
    """The paper's DREAM technique for ``data_bits``-wide words.

    ``data_bits`` must be a power of two so the mask ID occupies exactly
    ``log2(data_bits)`` bits (Formula 2).

    Example:
        >>> import numpy as np
        >>> emt = DreamEMT()
        >>> stored, side = emt.encode(np.array([0x0012]))
        >>> int(emt.decode(stored | 0x4000, side)[0])  # MSB-area fault
        18
    """

    name = "dream"

    def __init__(
        self, data_bits: int = 16, compensate_boundary: bool = True
    ) -> None:
        """``compensate_boundary`` is design-decision D2: when False the
        *Set one bit* block is removed, so only the ``run`` masked MSBs
        (not ``run + 1``) are protected — the ablation quantifying what
        that extra implied bit buys."""
        super().__init__(data_bits)
        if data_bits & (data_bits - 1):
            raise EMTError(
                f"DREAM requires a power-of-two word size, got {data_bits}"
            )
        self.mask_id_bits = int(data_bits).bit_length() - 1
        self.compensate_boundary = compensate_boundary
        self._run_mask_lut, self._boundary_lut = self._build_luts()
        if not compensate_boundary:
            self._boundary_lut = np.zeros_like(self._boundary_lut)
        # Complement tables: gathering the inverted masks directly saves
        # two whole-array inversions per decode on the batched hot path.
        self._not_run_mask_lut = ~self._run_mask_lut
        self._not_boundary_lut = ~self._boundary_lut

    # -- geometry ---------------------------------------------------------

    @property
    def stored_bits(self) -> int:
        return self.data_bits

    @property
    def side_bits(self) -> int:
        """Formula 2: sign bit + mask ID = ``1 + log2(data_bits)``."""
        return 1 + self.mask_id_bits

    # -- mask LUT (the "LUT" block of Fig 3) --------------------------------

    def _build_luts(self) -> tuple[np.ndarray, np.ndarray]:
        """Precompute, per mask ID, the run mask and the boundary-bit mask.

        Mask ID ``i`` encodes a run of ``i + 1`` identical MSBs.  The run
        mask covers those bits; the boundary mask covers the single bit
        just below the run (zero when the run spans the whole word).
        """
        n_ids = 1 << self.mask_id_bits
        run_masks = np.zeros(n_ids, dtype=np.int64)
        boundaries = np.zeros(n_ids, dtype=np.int64)
        width = self.data_bits
        for mask_id in range(n_ids):
            run = mask_id + 1
            low = width - run
            run_masks[mask_id] = bit_mask(run) << low
            boundaries[mask_id] = (1 << (low - 1)) if low > 0 else 0
        return run_masks, boundaries

    def mask_lut(self) -> np.ndarray:
        """The read-path lookup table: mask ID -> full run mask (copy)."""
        return self._run_mask_lut.copy()

    def protected_bits(self, side: np.ndarray) -> np.ndarray:
        """Number of MSBs DREAM guarantees per word given its side info.

        Equals ``run + 1`` (the extra bit comes from the *Set one bit*
        block), capped at the word width when the run covers everything.
        """
        side_arr = np.asarray(side, dtype=np.int64)
        run = np.bitwise_and(side_arr, bit_mask(self.mask_id_bits)) + 1
        if not self.compensate_boundary:
            return run
        return np.minimum(run + 1, self.data_bits)

    # -- vectorised paths -------------------------------------------------

    def encode(
        self, payload: np.ndarray, checked: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Store the raw word; derive ``sign | mask_id`` side info."""
        arr = self._check_payload(payload, checked)
        run = sign_run_length(arr, self.data_bits)
        mask_id = run - 1
        sign = np.bitwise_and(arr >> np.int64(self.data_bits - 1), 1)
        side = np.bitwise_or(sign << np.int64(self.mask_id_bits), mask_id)
        return arr.copy(), side

    def decode(
        self,
        stored: np.ndarray,
        side: np.ndarray | None,
        stats: DecodeStats | None = None,
        checked: bool = False,
    ) -> np.ndarray:
        """Fig 3 read path: LUT -> AND/OR -> set-one-bit -> sign mux."""
        if side is None:
            raise EMTError("DREAM decode requires side (mask memory) info")
        corrupted = self._check_stored(stored, checked)
        side_arr = np.asarray(side, dtype=np.int64)
        if side_arr.shape != corrupted.shape:
            raise EMTError(
                f"side info shape {side_arr.shape} does not match "
                f"stored shape {corrupted.shape}"
            )
        mask_id = np.bitwise_and(side_arr, bit_mask(self.mask_id_bits))
        sign = np.bitwise_and(side_arr >> np.int64(self.mask_id_bits), 1)

        run_mask = self._run_mask_lut[mask_id]
        boundary = self._boundary_lut[mask_id]

        # Positive samples: clear the run, set the boundary bit (inverted
        # sign = 1).  Negative samples: set the run, clear the boundary.
        positive = np.bitwise_or(
            np.bitwise_and(corrupted, self._not_run_mask_lut[mask_id]),
            boundary,
        )
        negative = np.bitwise_and(
            np.bitwise_or(corrupted, run_mask),
            self._not_boundary_lut[mask_id],
        )
        decoded = np.where(sign == 1, negative, positive)

        if stats is not None:
            stats.words += corrupted.size
            stats.corrected += int(np.count_nonzero(decoded != corrupted))
        return decoded

    # -- bit-serial reference ---------------------------------------------

    def encode_word(self, payload: int) -> tuple[int, int]:
        """Scalar transcription of the write-path logic."""
        if not 0 <= payload <= bit_mask(self.data_bits):
            raise EMTError("payload out of range")
        width = self.data_bits
        sign = (payload >> (width - 1)) & 1
        run = 1
        for position in range(width - 2, -1, -1):
            if (payload >> position) & 1 == sign:
                run += 1
            else:
                break
        side = (sign << self.mask_id_bits) | (run - 1)
        return payload, side

    def decode_word(self, stored: int, side: int) -> int:
        """Scalar transcription of the Fig 3 read path."""
        if not 0 <= stored <= bit_mask(self.stored_bits):
            raise EMTError("stored word out of range")
        if not 0 <= side <= bit_mask(self.side_bits):
            raise EMTError("side word out of range")
        mask_id = side & bit_mask(self.mask_id_bits)
        sign = (side >> self.mask_id_bits) & 1
        run_mask = int(self._run_mask_lut[mask_id])
        boundary = int(self._boundary_lut[mask_id])
        if sign:
            return (stored | run_mask) & ~boundary & bit_mask(self.data_bits)
        return (stored & ~run_mask) | boundary
