"""Experiment-service benchmarks: job latency and burst throughput.

Measures the daemon path end to end, in-process (the service loop runs
in a thread of this process; its worker fleet are real subprocesses —
exactly what ``repro serve`` runs, minus the CLI wrapper):

* submit -> complete latency of a single tiny campaign job, the floor
  every interactive ``repro submit`` pays on an idle daemon;
* a burst of unique campaign jobs against a multi-worker daemon —
  jobs/s from first submit to last terminal state, with the results
  landing in sharded stores (>= 2 shards exercised across the burst).

Both legs assert correctness (all jobs ``done``, every record
readable back) before recording numbers; the throughput is gated in
``baselines.json`` through ``check_regression.py``.

Fast-mode scale knobs (environment):

* ``REPRO_BENCH_SERVICE_JOBS`` — burst size (default 100).
* ``REPRO_BENCH_SERVICE_WORKERS`` — daemon fleet width (default 4).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _harness import write_bench  # noqa: E402

from repro.campaign.spec import CampaignSpec  # noqa: E402
from repro.campaign.store import ResultStore, SHARDS_ENV  # noqa: E402
from repro.service import (  # noqa: E402
    ExperimentService,
    ServiceClient,
    campaign_job_payload,
)


def _burst_jobs(default: int = 100) -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_JOBS", default))


def _fleet_workers(default: int = 4) -> int:
    return int(os.environ.get("REPRO_BENCH_SERVICE_WORKERS", default))


def _tiny_spec(index: int) -> CampaignSpec:
    """One small, unique energy campaign — two points, milliseconds."""
    return CampaignSpec(
        name=f"svc-bench-{index:03d}",
        kind="energy",
        axes={"emt": ("none", "dream"), "voltage": (0.9,)},
        fixed={"workload": {
            "n_reads": 50_000 + index, "n_writes": 50_000,
            "duration_s": 1e-3,
        }},
    )


@contextmanager
def _daemon(root: Path, store_dir: Path, workers: int):
    """A live in-process service daemon, drained and stopped on exit."""
    service = ExperimentService(
        root=root, workers=workers, store_dir=store_dir,
        trace_dir=root / "trace", shards=2, poll_s=0.02,
    )
    thread = threading.Thread(target=service.serve, daemon=True)
    thread.start()
    client = ServiceClient(root=root, timeout_s=10.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.ping()
            break
        except Exception:
            if time.monotonic() > deadline:
                raise AssertionError("benchmark daemon never came up")
            time.sleep(0.02)
    try:
        yield service, client
    finally:
        service.request_stop()
        thread.join(timeout=60.0)
        os.environ.pop(SHARDS_ENV, None)


def _submit(client, spec: CampaignSpec, store_dir: Path):
    payload = campaign_job_payload(
        spec, spec.expand(), spec.name, str(store_dir)
    )
    job, created = client.submit_campaign(payload)
    assert created, f"benchmark spec {spec.name} deduplicated unexpectedly"
    return job.job_id


def test_submit_to_complete_latency(tmp_path):
    """One tiny job on an idle single-worker daemon, timed wall to wall.

    This is pure service overhead — journal append, scheduler tick,
    worker dispatch, store write, terminal mark — since the campaign
    itself is two millisecond-scale energy points.
    """
    store_dir = tmp_path / "stores"
    samples = []
    with _daemon(tmp_path / "root", store_dir, workers=1) as (_svc, client):
        for index in range(5):
            spec = _tiny_spec(900 + index)
            started = time.perf_counter()
            job_id = _submit(client, spec, store_dir)
            record = client.wait(job_id, timeout_s=60.0, poll_s=0.01)
            samples.append(time.perf_counter() - started)
            assert record.status == "done", record.error
    best = min(samples)
    write_bench(
        "service_latency",
        metrics={
            "submit_to_complete_s": best,
            "mean_submit_to_complete_s": sum(samples) / len(samples),
        },
        gate=(),  # raw wall-clock: report, never gate across machines
        meta={"samples": len(samples), "points_per_job": 2},
    )


def test_burst_throughput(tmp_path):
    """A 100-job burst against a 4-worker daemon, results sharded.

    jobs/s from the first submission to the last job's terminal journal
    record.  Every job must finish ``done`` and its records must read
    back through the ordinary store API; the burst as a whole must have
    touched at least two distinct shard files (the sharded backend is
    the point of the exercise, not an implementation detail).
    """
    n_jobs = _burst_jobs()
    workers = _fleet_workers()
    store_dir = tmp_path / "stores"
    specs = [_tiny_spec(index) for index in range(n_jobs)]

    with _daemon(tmp_path / "root", store_dir, workers) as (service, client):
        started = time.perf_counter()
        job_ids = [_submit(client, spec, store_dir) for spec in specs]
        submitted_s = time.perf_counter() - started

        deadline = time.monotonic() + 600.0
        while True:
            jobs = service.queue.load()
            if all(jobs[job_id].terminal for job_id in job_ids):
                break
            assert time.monotonic() < deadline, "burst never drained"
            time.sleep(0.05)
        elapsed = time.perf_counter() - started

    jobs = {job_id: jobs[job_id] for job_id in job_ids}
    failed = {j: r for j, r in jobs.items() if r.status != "done"}
    assert not failed, f"burst jobs failed: {failed}"

    shard_indices = set()
    for spec in specs:
        store = ResultStore.for_campaign(spec.name, root=store_dir)
        records = store.load()
        assert len(records) == 2, f"{spec.name}: {len(records)} records"
        shard_dir = store_dir / f"{spec.name}.shards"
        shard_indices.update(
            shard.name for shard in shard_dir.glob("shard-*.jsonl")
        )
    assert len(shard_indices) >= 2, "burst never spread across shards"

    write_bench(
        "service_throughput",
        metrics={
            "jobs_per_s": n_jobs / elapsed,
            "burst_s": elapsed,
            "submit_s": submitted_s,
            "points_per_s": 2 * n_jobs / elapsed,
        },
        gate=("jobs_per_s",),
        meta={
            "n_jobs": n_jobs,
            "workers": workers,
            "shards": 2,
            "points_per_job": 2,
        },
    )
