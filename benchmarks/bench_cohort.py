"""Cohort benchmarks: fleet throughput and calibration-cache economics.

Measures what makes population-scale simulation tractable: patient
missions stream at fleet rates (patients/second), while the shared disk
calibration cache keeps the expensive fault-injection work deduplicated
— the second policy's fleet should be served almost entirely from cache.

The table reports patients/s per policy plus the cache's hit rate and
fleet-wide calibration count, and lands in
``results/cohort_fleet.txt``.

Scale knobs (environment):

* ``REPRO_COHORT_PATIENTS`` — fleet size (default 80; CI smoke uses a
  smaller fleet, full-fidelity studies a 1000+ one).
* ``REPRO_COHORT_SCALE`` — mission duration scale (default 0.02;
  ``1.0`` streams the full 24 h timelines).
* ``REPRO_COHORT_WORKERS`` — worker processes (default 1, which keeps
  the in-process cache counters complete for the hit-rate report).
"""

from __future__ import annotations

import os
import time

from repro.cache import computed_events, shared_cache
from repro.cohort import CohortSpec, FleetSimulator, median_survival_days
from repro.runtime import simulator as mission_simulator

POLICY_TOKENS = ("hysteresis", "soc")


def bench_patients() -> int:
    return int(os.environ.get("REPRO_COHORT_PATIENTS", "80"))


def bench_scale() -> float:
    return float(os.environ.get("REPRO_COHORT_SCALE", "0.02"))


def bench_workers() -> int:
    return int(os.environ.get("REPRO_COHORT_WORKERS", "1"))


def test_fleet_throughput_and_cache(
    benchmark, report_sink, tmp_path_factory, monkeypatch
):
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("cohort-cache"))
    )
    # A cold start: no warm in-process memos, an empty disk cache.
    mission_simulator._calibrated_quality.cache_clear()
    mission_simulator._window_energy_pj.cache_clear()

    spec = CohortSpec(
        name="bench-fleet",
        size=bench_patients(),
        duration_scale=bench_scale(),
        voltages=(0.65, 0.7, 0.8),
    )
    fleet = FleetSimulator(spec, n_probe=2, probe_duration_s=2.0)
    workers = bench_workers()

    rows = []
    cold = fleet.run(POLICY_TOKENS[0], n_workers=workers)
    rows.append((POLICY_TOKENS[0] + " (cold)", cold))
    # The second policy's fleet re-needs the same calibration set; with
    # the in-process memos dropped, every hit is visible on the shared
    # cache's counters — the fleet-wide dedup this subsystem exists for.
    mission_simulator._calibrated_quality.cache_clear()
    mission_simulator._window_energy_pj.cache_clear()
    warm = benchmark.pedantic(
        lambda: fleet.run(POLICY_TOKENS[1], n_workers=workers),
        rounds=1,
        iterations=1,
    )
    rows.append((POLICY_TOKENS[1] + " (warm)", warm))

    stats = shared_cache().stats
    n_calibrations = len(set(computed_events()))
    # What per-mission calibration (no sharing) would have cost: every
    # mission recalibrates each of its (segment, rung) pairs.
    naive = 0
    for policy in POLICY_TOKENS:
        for index in range(spec.size):
            mission = spec.mission_for(spec.patient(index))
            n_rungs = len(mission.voltages) * len(mission.emts)
            naive += len({seg.signature for seg in mission.segments}) * n_rungs
    hours = 24.0 * bench_scale()
    lines = [
        f"Population fleet — {spec.size} patients, ~{hours:.1f} h scaled "
        f"missions, {workers} worker(s)",
        f"{'policy':>20s}  {'patients/s':>10s}  {'survive':>8s}  "
        f"{'p50 life':>9s}  {'failed':>6s}",
        f"{'-' * 20}  {'-' * 10}  {'-' * 8}  {'-' * 9}  {'-' * 6}",
    ]
    for name, result in rows:
        summary = result.summary()
        lines.append(
            f"{name:>20s}  {result.patients_per_s:10.1f}  "
            f"{summary['survival_fraction'] * 100:7.1f}%  "
            f"{median_survival_days(result.ok_rows()):7.3f} d  "
            f"{summary['n_failed']:6d}"
        )
    lines += [
        "",
        f"fleet-wide calibrations computed: {n_calibrations} of {naive} "
        f"a per-mission calibrator would run "
        f"({(1 - n_calibrations / naive) * 100:.1f}% deduplicated)",
        f"shared-cache lookups this process: {stats.lookups} "
        f"({stats.hit_rate * 100:.1f}% hits)",
    ]
    report_sink.add("cohort_fleet", "\n".join(lines))

    # The fleet must stream faster than one patient-mission per second,
    # the shared cache must absorb most of the naive calibration work,
    # and the warm fleet (calibrations on disk) must outpace the cold one.
    assert all(result.patients_per_s > 1.0 for _, result in rows)
    assert not cold.failures() and not warm.failures()
    assert n_calibrations < 0.5 * naive
    if workers == 1:
        assert stats.hit_rate > 0.3
        assert warm.patients_per_s > cold.patients_per_s
