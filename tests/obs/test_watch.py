"""Live watch: incremental tailing, snapshot folding, exit codes.

The committed ``data/mini_partial.jsonl`` is a recorded *partial* trace
(a run mid-flight: progress heartbeats, one worker span, no closed
``session.run``) — the `--once` snapshot assertions pin what a CI
operator sees when they peek at a live run.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ObsError
from repro.obs import RunRegistry, TraceTail, WatchState, load_trace, watch
from repro.obs.alerts import AlertRule
from repro.obs.watch import render_frame

DATA = Path(__file__).parent / "data"


# --------------------------------------------------------------------------
# TraceTail
# --------------------------------------------------------------------------


def test_tail_reads_incrementally(tmp_path):
    sink = tmp_path / "t.jsonl"
    tail = TraceTail(sink)
    assert tail.poll() == []  # file does not exist yet

    lines = load_trace(DATA / "mini_partial.jsonl")
    import json

    with open(sink, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(lines[0]) + "\n")
    assert [e["event"] for e in tail.poll()] == ["run"]
    assert tail.poll() == []  # nothing new

    with open(sink, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(lines[1]) + "\n")
        handle.write(json.dumps(lines[2])[:20])  # torn mid-append
    polled = tail.poll()
    assert [e["name"] for e in polled] == ["run.progress"]

    with open(sink, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(lines[2])[20:] + "\n")  # completed
    assert [e["value"] for e in tail.poll()] == [2.0]


def test_tail_resets_on_truncation(tmp_path):
    sink = tmp_path / "t.jsonl"
    import json

    lines = load_trace(DATA / "mini_partial.jsonl")
    sink.write_text(
        "".join(json.dumps(line) + "\n" for line in lines[:3])
    )
    tail = TraceTail(sink)
    assert len(tail.poll()) == 3
    sink.write_text(json.dumps(lines[0]) + "\n")  # re-run truncated it
    assert len(tail.poll()) == 1


def test_tail_rejects_complete_malformed_line(tmp_path):
    sink = tmp_path / "t.jsonl"
    sink.write_text('{"event": "nope"}\n')
    with pytest.raises(ObsError, match="malformed"):
        TraceTail(sink).poll()
    sink.write_text("not json\n")
    with pytest.raises(ObsError, match="not valid JSON"):
        TraceTail(sink).poll()


# --------------------------------------------------------------------------
# WatchState snapshots
# --------------------------------------------------------------------------


def test_snapshot_of_partial_trace():
    state = WatchState()
    state.update(load_trace(DATA / "mini_partial.jsonl"))
    snapshot = state.snapshot()

    assert snapshot["run_id"] == "mini-partial"
    assert not snapshot["finished"]

    by_gauge = {e["gauge"]: e for e in snapshot["progress"]}
    run = by_gauge["run.progress"]
    assert (run["done"], run["total"]) == (2.0, 4.0)
    # Two samples one second apart -> 1 unit/s -> 2 remaining -> 2 s ETA.
    assert run["rate"] == pytest.approx(1.0)
    assert run["eta_s"] == pytest.approx(2.0)
    fleet = by_gauge["fleet.progress"]
    assert fleet["label"] == "fleet pilot/hysteresis"
    assert (fleet["done"], fleet["total"]) == (3.0, 6.0)
    assert fleet["rate"] is None  # single sample: no rate yet

    assert snapshot["cache"] == {
        "lookups": 12, "hit_rate": pytest.approx(0.75),
    }
    assert {w["pid"] for w in snapshot["workers"]} == {200, 201}


def test_snapshot_of_finished_trace_drops_campaign_duplicate():
    state = WatchState()
    state.update(load_trace(DATA / "mini_a.jsonl"))
    snapshot = state.snapshot()
    assert snapshot["finished"]  # session.run span closed
    assert snapshot["failures"]["spans"] == 0


def test_render_frame_sections():
    state = WatchState()
    state.update(load_trace(DATA / "mini_partial.jsonl"))
    frame = render_frame(state.snapshot())
    assert "Watching run mini-partial — running" in frame
    assert "fleet-grid" in frame
    assert "fleet pilot/hysteresis" in frame
    assert "ETA 2 s" in frame
    assert "75.0% hit rate" in frame
    assert "pid 200" in frame and "pid 201" in frame


# --------------------------------------------------------------------------
# Rate/ETA defence and the resources pane
# --------------------------------------------------------------------------


def _progress(value: float, t: float, total: float = 10.0) -> dict:
    from repro.obs.events import metric_event

    return metric_event(
        trace="g", name="run.progress", kind="gauge", value=value,
        t=t, pid=1, attrs={"campaign": "c", "total": total},
    )


def test_zero_elapsed_window_yields_no_rate_or_eta():
    # Two heartbeats in the same tick: elapsed is exactly zero, which
    # must read as "no rate yet" — never a ZeroDivisionError or an
    # inf ETA leaking into the frame.
    state = WatchState()
    state.update([_progress(1.0, t=5.0), _progress(2.0, t=5.0)])
    (entry,) = state.snapshot()["progress"]
    assert entry["rate"] is None
    assert entry["eta_s"] is None
    frame = render_frame(state.snapshot())
    assert "inf" not in frame and "nan" not in frame


def test_backwards_progress_yields_no_eta():
    # A re-run resetting its counter mid-watch: negative rate, no ETA.
    state = WatchState()
    state.update([_progress(5.0, t=0.0), _progress(3.0, t=1.0)])
    (entry,) = state.snapshot()["progress"]
    assert entry["rate"] == pytest.approx(-2.0)
    assert entry["eta_s"] is None
    assert "ETA" not in render_frame(state.snapshot())


def test_nonfinite_throughput_gauges_are_dropped():
    from repro.obs.events import metric_event

    state = WatchState()
    state.update(
        [
            metric_event(
                trace="g", name="windows_per_s", kind="gauge",
                value=float("inf"), t=1.0, pid=1,
            ),
            metric_event(
                trace="g", name="patients_per_s", kind="gauge",
                value=4.0, t=1.0, pid=1,
            ),
        ]
    )
    assert state.snapshot()["gauges"] == {"patients_per_s": 4.0}


def test_resources_pane_folds_proc_gauges():
    from repro.obs.events import metric_event

    def proc(name: str, value: float, t: float, pid: int) -> dict:
        return metric_event(
            trace="g", name=name, kind="gauge", value=value, t=t, pid=pid,
        )

    state = WatchState()
    state.update(
        [
            proc("proc.rss_bytes", 50.0 * 1048576, t=0.0, pid=7),
            proc("proc.rss_bytes", 80.0 * 1048576, t=5.0, pid=7),
            proc("proc.rss_bytes", 60.0 * 1048576, t=10.0, pid=7),
            proc("proc.cpu_s", 2.0, t=5.0, pid=7),
            proc("proc.cpu_s", 5.0, t=10.0, pid=7),
        ]
    )
    snapshot = state.snapshot()
    (proc7,) = snapshot["resources"]
    assert proc7["pid"] == 7
    assert proc7["peak_rss_bytes"] == 80.0 * 1048576  # max, not latest
    assert proc7["cpu_s"] == 5.0  # cumulative: latest write wins
    assert proc7["cpu_util"] == pytest.approx(0.5)  # 5 cpu-s / 10 wall-s

    frame = render_frame(snapshot)
    assert "Resources (from throttled proc.* gauges):" in frame
    assert "peak rss    80.0 MB" in frame
    assert "cpu    5.00 s (50% util)" in frame


# --------------------------------------------------------------------------
# The watch loop
# --------------------------------------------------------------------------


def test_watch_once_snapshot_of_partial_trace():
    stream = io.StringIO()
    code = watch(DATA / "mini_partial.jsonl", once=True, stream=stream)
    assert code == 0
    out = stream.getvalue()
    assert "running" in out
    assert "fleet pilot/hysteresis" in out


def test_watch_stops_when_run_span_closes():
    # mini_a's session.run span is closed: the loop renders one final
    # frame and exits without --once (no sleeping, no extra frames).
    stream = io.StringIO()
    sleeps: list[float] = []
    code = watch(
        DATA / "mini_a.jsonl", stream=stream, _sleep=sleeps.append
    )
    assert code == 0
    assert sleeps == []
    assert "finished" in stream.getvalue()


def test_watch_stops_on_registry_terminal_status(tmp_path):
    stream = io.StringIO()
    code = watch(
        DATA / "mini_partial.jsonl",
        stream=stream,
        is_finished=lambda: True,
        _sleep=lambda s: pytest.fail("should not sleep"),
    )
    assert code == 0


def test_watch_alert_breach_exits_nonzero():
    rules = [
        AlertRule(name="floor", metric="fleet.quality_p10_db", min=200.0),
    ]
    stream = io.StringIO()
    code = watch(
        DATA / "mini_a.jsonl", once=True, rules=rules, stream=stream
    )
    assert code == 1
    assert "ALERT floor" in stream.getvalue()


def test_cli_watch_once(tmp_path, capsys):
    assert main(
        ["watch", str(DATA / "mini_partial.jsonl"), "--once",
         "--trace-dir", str(tmp_path)]
    ) == 0
    assert "mini-partial" in capsys.readouterr().out


def test_cli_watch_latest_resolves_registry(tmp_path, capsys):
    registry = RunRegistry(tmp_path)
    registry.register(
        "mini-a", name="mini",
        trace_path=DATA / "mini_a.jsonl", started_at=1.0,
    )
    registry.finalize("mini-a", "ok", wall_s=1.0)
    assert main(
        ["watch", "latest", "--trace-dir", str(tmp_path), "--interval",
         "0.01"]
    ) == 0
    assert "finished" in capsys.readouterr().out


def test_cli_watch_unknown_run_errors(tmp_path, capsys):
    assert main(
        ["watch", "no-such-run", "--trace-dir", str(tmp_path)]
    ) == 1
    assert "no trace named" in capsys.readouterr().err


# --------------------------------------------------------------------------
# `repro report` on live/empty traces (the in-progress satellite)
# --------------------------------------------------------------------------


def test_cli_report_in_progress_trace_exits_zero(tmp_path, capsys):
    import json

    # A live sink with a run marker and heartbeats but no closed spans.
    sink = tmp_path / "live-run.jsonl"
    events = [
        e for e in load_trace(DATA / "mini_partial.jsonl")
        if e["event"] != "span"
    ]
    sink.write_text("".join(json.dumps(e) + "\n" for e in events))
    assert main(["report", str(sink)]) == 0
    out = capsys.readouterr().out
    assert "run in progress" in out
    assert "repro watch" in out


def test_cli_report_empty_trace_exits_nonzero(tmp_path, capsys):
    sink = tmp_path / "crashed-run.jsonl"
    sink.write_text("")
    assert main(["report", str(sink)]) == 1
    assert "Trace is empty" in capsys.readouterr().out


# --------------------------------------------------------------------------
# Dead-run detection and the resilience pane (the robustness satellites)
# --------------------------------------------------------------------------


def test_watch_dead_run_exits_2_with_note():
    stream = io.StringIO()
    code = watch(
        DATA / "mini_partial.jsonl", once=True, stream=stream,
        is_dead=lambda: "owner pid 12345 of run mini-partial is dead",
    )
    assert code == 2
    out = stream.getvalue()
    assert "RUN DEAD: owner pid 12345" in out
    assert "prune-stale" in out


def test_watch_live_run_ignores_dead_probe_returning_none():
    stream = io.StringIO()
    code = watch(
        DATA / "mini_partial.jsonl", once=True, stream=stream,
        is_dead=lambda: None,
    )
    assert code == 0
    assert "RUN DEAD" not in stream.getvalue()


def test_cli_watch_stale_run_exits_2(tmp_path, capsys):
    import json
    import subprocess
    import sys

    registry = RunRegistry(tmp_path)
    registry.register(
        "mini-partial", name="mini",
        trace_path=DATA / "mini_partial.jsonl", started_at=1.0,
    )
    # Rewrite the registered pid to one that provably no longer exists
    # (a reaped child), making the record stale.
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    lines = [
        json.loads(line)
        for line in registry.path.read_text().splitlines()
    ]
    for record in lines:
        record["pid"] = proc.pid
    registry.path.write_text(
        "".join(json.dumps(record) + "\n" for record in lines)
    )
    assert main(
        ["watch", "mini-partial", "--once", "--trace-dir", str(tmp_path)]
    ) == 2
    out = capsys.readouterr().out
    assert "RUN DEAD" in out and str(proc.pid) in out


def test_watch_frame_renders_resilience_pane(tmp_path):
    import json

    events = load_trace(DATA / "mini_partial.jsonl")
    events.append({
        "event": "metric", "trace": "mini-partial",
        "name": "work.retries", "kind": "counter", "value": 3,
        "t": 1700000203.0, "pid": 200, "attrs": {},
    })
    events.append({
        "event": "metric", "trace": "mini-partial",
        "name": "worker.restarts", "kind": "counter", "value": 1,
        "t": 1700000203.0, "pid": 200, "attrs": {},
    })
    sink = tmp_path / "chaotic.jsonl"
    sink.write_text("".join(json.dumps(e) + "\n" for e in events))
    stream = io.StringIO()
    assert watch(sink, once=True, stream=stream) == 0
    assert "Resilience: retries 3 · restarts 1" in stream.getvalue()


def test_watch_frame_omits_resilience_pane_without_counters():
    stream = io.StringIO()
    assert watch(DATA / "mini_partial.jsonl", once=True,
                 stream=stream) == 0
    assert "Resilience" not in stream.getvalue()
