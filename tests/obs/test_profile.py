"""Sampling profiler: off-path cost, span attribution, shard contract.

Three properties carry the feature.  First, profiling that nobody asked
for must cost nothing — the PR 6 disabled-probe guard is re-pinned here
with the profiler seams in place.  Second, a profiled multi-worker run
must attribute (nearly) every kept sample to a known span path — the
whole point of span-attributed sampling.  Third, the on-disk shard
format and its readers are a contract: the committed fixture under
``data/mini_prof*`` pins ``repro profile`` output bit-for-bit.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro import cli, obs
from repro.errors import ObsError
from repro.obs import profile as prof
from repro.obs.core import _NULL_SPAN

DATA = Path(__file__).parent / "data"
FIXTURE_TRACE = DATA / "mini_prof.jsonl"


# -- the disabled path stays free ------------------------------------------


def test_profiler_not_started_without_request(tmp_path):
    assert not prof.requested()
    obs.enable(tmp_path / "t.jsonl", run_id="no-prof")
    with obs.span("work"):
        pass
    obs.disable()
    assert not prof.sampler_active()
    assert not prof.profile_dir_for(tmp_path / "t.jsonl").exists()


def test_disabled_probes_cost_microseconds_with_profiler_seams():
    # The PR 6 overhead guard, re-pinned after the profiler landed: the
    # sampler is consulted at tracer construction only, never per
    # probe, so the disabled fast path is unchanged.
    assert obs.span("a") is _NULL_SPAN
    n = 100_000
    started = time.perf_counter()
    for i in range(n):
        with obs.span("hot", index=i):
            obs.counter("hits")
            obs.resource_probe()
    elapsed = time.perf_counter() - started
    assert elapsed < 5.0, f"{n} disabled iterations took {elapsed:.2f}s"
    assert not obs.enabled()
    assert not prof.sampler_active()


def test_interval_env_parsing(monkeypatch):
    assert prof.sample_interval_s() == prof.DEFAULT_INTERVAL_S
    monkeypatch.setenv(prof.ENV_PROFILE_INTERVAL, "0.02")
    assert prof.sample_interval_s() == 0.02
    monkeypatch.setenv(prof.ENV_PROFILE_INTERVAL, "not-a-number")
    assert prof.sample_interval_s() == prof.DEFAULT_INTERVAL_S
    monkeypatch.setenv(prof.ENV_PROFILE_INTERVAL, "-1")
    assert prof.sample_interval_s() == prof.DEFAULT_INTERVAL_S


# -- live sampling ----------------------------------------------------------


def _busy(seconds: float) -> int:
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(500))
    return total


def test_enable_starts_sampler_and_disable_writes_shard(tmp_path):
    os.environ[prof.ENV_PROFILE] = "1"
    os.environ[prof.ENV_PROFILE_INTERVAL] = "0.001"
    sink = tmp_path / "t.jsonl"
    obs.enable(sink, run_id="prof-run")
    assert prof.sampler_active()
    with obs.span("crunch"):
        _busy(0.1)
    obs.disable()
    assert not prof.sampler_active()

    merged = prof.load_profile(sink)
    assert merged["trace"] == "prof-run"
    assert merged["samples"] > 0
    crunch = sum(
        count
        for (span, _stack), count in merged["folds"].items()
        if span and span[-1] == "crunch"
    )
    assert crunch > 0
    # Every stacked frame is module.qualname of real code.
    for (_span, stack), _count in merged["folds"].items():
        assert all("." in frame for frame in stack)


def test_enable_truncate_clears_stale_shards(tmp_path):
    os.environ[prof.ENV_PROFILE] = "1"
    sink = tmp_path / "t.jsonl"
    stale_dir = prof.profile_dir_for(sink)
    stale_dir.mkdir(parents=True)
    stale = stale_dir / "profile-99999.jsonl"
    stale.write_text("{}\n", encoding="utf-8")
    obs.enable(sink, run_id="re-run")
    try:
        assert not stale.exists()
    finally:
        obs.disable()


def _profiled_worker(index: int) -> int:
    # Workers never call enable(); the fork-rebound tracer starts the
    # worker's own sampler because REPRO_PROFILE rode the environment.
    with obs.span("unit", index=index):
        return _busy(0.3)


def test_four_worker_pool_attributes_samples_to_spans(tmp_path):
    os.environ[prof.ENV_PROFILE] = "1"
    os.environ[prof.ENV_PROFILE_INTERVAL] = "0.002"
    sink = tmp_path / "pool.jsonl"
    obs.enable(sink, run_id="pool-prof", name="pool")
    with obs.span("owner") as owner:
        with obs.worker_parent(owner.span_id):
            pool = multiprocessing.Pool(processes=4)
        pool.map(_profiled_worker, range(8))
        # close + join (not terminate) so each worker's atexit writes
        # its final shard even when it lived under the 1 s rewrite.
        pool.close()
        pool.join()
    obs.disable()

    merged = prof.load_profile(sink)
    # Owner shard plus at least one worker shard made it to disk.
    pids = {header["pid"] for header in merged["shards"]}
    assert os.getpid() in pids
    assert len(pids) >= 2

    known = {("owner",), ("owner", "unit"), ("unit",)}
    attributed = sum(
        count
        for (span, _stack), count in merged["folds"].items()
        if tuple(span) in known
    )
    assert merged["samples"] > 20
    # The acceptance bar: >= 90% of kept samples attribute to known
    # span paths (idle helper threads were skipped, not stacked).
    assert attributed >= 0.9 * merged["samples"]


# -- shard reading ----------------------------------------------------------


def test_load_profile_without_shards_is_an_error(tmp_path):
    sink = tmp_path / "t.jsonl"
    sink.write_text("", encoding="utf-8")
    with pytest.raises(ObsError, match="no profile shards"):
        prof.load_profile(sink)


@pytest.mark.parametrize(
    "lines",
    [
        [],
        ["not json"],
        ['{"profile": "v0", "pid": 1}'],
        ['{"profile": "v1", "pid": "one"}'],
        ['{"profile": "v1", "pid": 1}', '{"span": [], "stack": []}'],
        ['{"profile": "v1", "pid": 1}', '{"span": [], "stack": [], "n": 0}'],
    ],
)
def test_malformed_shard_is_a_hard_error(tmp_path, lines):
    shard = tmp_path / "profile-1.jsonl"
    shard.write_text("".join(line + "\n" for line in lines), encoding="utf-8")
    with pytest.raises(ObsError):
        prof.load_shard(shard)


def test_fixture_merges_across_processes():
    merged = prof.load_profile(FIXTURE_TRACE)
    assert merged["trace"] == "mini-prof"
    assert merged["samples"] == 18
    assert merged["skipped"] == 2
    assert len(merged["shards"]) == 2
    assert merged["interval_s"] == 0.005
    assert sum(merged["folds"].values()) == 18


def test_hot_by_span_folds_leaf_frames():
    merged = prof.load_profile(FIXTURE_TRACE)
    folded = prof.hot_by_span(merged)
    assert folded[("point",)] == {
        "repro.apps.dwt.run": 7,
        "repro.campaign.runner._evaluate_payload": 1,
    }
    assert folded[("session.run",)] == {
        "repro.campaign.runner.run_campaign": 6,
    }


def test_render_hot_section_orders_by_weight():
    merged = prof.load_profile(FIXTURE_TRACE)
    text = prof.render_hot_section(merged, top=1)
    lines = text.splitlines()
    assert lines[0] == (
        "Sampling profile: 18 samples · interval 5.0 ms · "
        "2 process(es) · 2 idle-thread samples skipped"
    )
    # Heaviest span path first; top=1 keeps one function per path.
    assert len(lines) == 7  # header + 3 span paths x (label + 1 function)
    assert lines[1].startswith("  point — 8 samples (44.4%")
    assert lines[2].strip().endswith("repro.apps.dwt.run")
    assert lines[3].startswith("  session.run — 6 samples")
    assert lines[5].startswith("  session.run > campaign — 4 samples")


def test_speedscope_document_shape():
    merged = prof.load_profile(FIXTURE_TRACE)
    doc = prof.speedscope_document(merged)
    assert doc["$schema"].endswith("file-format-schema.json")
    names = [frame["name"] for frame in doc["shared"]["frames"]]
    assert len(names) == len(set(names))
    assert "span:session.run" in names
    (sampled,) = doc["profiles"]
    assert sampled["type"] == "sampled"
    assert len(sampled["samples"]) == len(sampled["weights"]) == 4
    assert sampled["endValue"] == pytest.approx(18 * 0.005)
    for stack in sampled["samples"]:
        assert all(0 <= index < len(names) for index in stack)


# -- the CLI contract -------------------------------------------------------


def test_cli_profile_collapsed_output_is_golden(tmp_path, capsys):
    code = cli.main(
        ["profile", str(FIXTURE_TRACE), "--trace-dir", str(tmp_path)]
    )
    assert code == 0
    golden = (DATA / "mini_prof.collapsed.txt").read_text(encoding="utf-8")
    assert capsys.readouterr().out == golden


def test_cli_profile_flamegraph_writes_speedscope(tmp_path, capsys):
    out = tmp_path / "flame.json"
    code = cli.main(
        [
            "profile", str(FIXTURE_TRACE),
            "--flamegraph", str(out),
            "--trace-dir", str(tmp_path),
        ]
    )
    assert code == 0
    doc = json.loads(out.read_text(encoding="utf-8"))
    assert doc["profiles"][0]["type"] == "sampled"
    assert str(out) in capsys.readouterr().out


def test_cli_global_profile_flag_arms_environment(tmp_path, capsys):
    # --profile implies tracing: the overheads command runs traced and
    # profiled without an explicit --trace.
    code = cli.main(
        ["--trace", str(tmp_path), "--profile", "overheads"]
    )
    assert code == 0
    assert os.environ.get(prof.ENV_PROFILE) == "1"
