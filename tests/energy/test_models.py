"""Tests for the CACTI-lite SRAM model, logic model and accounting.

The headline calibration targets (paper Section VI-B):
ECC ~ +55 % energy, DREAM ~ +34 %, encoder area ratio 1.28, decoder 2.20.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.emt import DreamEMT, NoProtection, ParityEMT, SecDedEMT
from repro.energy import (
    EnergySystemModel,
    LogicBlockModel,
    SramArrayModel,
    TECH_32NM_LP,
    logic_blocks_for,
)
from repro.energy.accounting import Workload
from repro.energy.logic_model import GE_BUDGETS
from repro.errors import EnergyModelError
from repro.mem.layout import PAPER_GEOMETRY, MemoryGeometry


WORKLOAD = Workload(n_reads=50_000, n_writes=50_000, duration_s=1.5e-3)


class TestSramModel:
    def test_absolute_energy_plausible(self):
        """32 kB @ 0.9 V should read in the single-digit pJ range."""
        model = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        assert 1.0 < model.read_energy_pj(0.9) < 20.0

    def test_write_costs_more_than_read_bitline(self):
        model = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        # Full-swing write drive vs sensed read: compare at same voltage.
        assert model.write_energy_pj(0.9) > 0.8 * model.read_energy_pj(0.9)

    def test_quadratic_voltage_scaling(self):
        model = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        ratio = model.read_energy_pj(0.45 * 2) / model.read_energy_pj(0.9)
        assert ratio == pytest.approx(1.0)
        ratio = model.read_energy_pj(0.6) / model.read_energy_pj(0.9)
        assert ratio == pytest.approx((0.6 / 0.9) ** 2, rel=1e-9)

    def test_wider_words_cost_more(self):
        narrow = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        wide = SramArrayModel(
            PAPER_GEOMETRY.with_word_bits(22), TECH_32NM_LP
        )
        assert wide.read_energy_pj(0.9) > 1.2 * narrow.read_energy_pj(0.9)

    def test_smaller_array_cheaper_per_access(self):
        data = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        mask = SramArrayModel(
            PAPER_GEOMETRY.with_word_bits(5), TECH_32NM_LP
        )
        assert mask.read_energy_pj(0.9) < 0.5 * data.read_energy_pj(0.9)

    def test_leakage_scales_with_capacity(self):
        full = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP)
        half = SramArrayModel(
            MemoryGeometry(n_words=8192, word_bits=16, n_banks=16),
            TECH_32NM_LP,
        )
        assert full.leakage_power_uw(0.9) == pytest.approx(
            2 * half.leakage_power_uw(0.9)
        )

    def test_area_scales_with_bits(self):
        a16 = SramArrayModel(PAPER_GEOMETRY, TECH_32NM_LP).area_mm2()
        a22 = SramArrayModel(
            PAPER_GEOMETRY.with_word_bits(22), TECH_32NM_LP
        ).area_mm2()
        assert a22 / a16 == pytest.approx(22 / 16, rel=1e-9)


class TestLogicModel:
    def test_paper_area_ratios_exact(self):
        """The synthesis result the paper quotes."""
        dream_enc, dream_dec = logic_blocks_for("dream", TECH_32NM_LP)
        ecc_enc, ecc_dec = logic_blocks_for("secded", TECH_32NM_LP)
        assert ecc_enc.area_um2() / dream_enc.area_um2() == pytest.approx(
            1.28, abs=0.005
        )
        assert ecc_dec.area_um2() / dream_dec.area_um2() == pytest.approx(
            2.20, abs=0.005
        )

    def test_none_has_no_logic(self):
        enc, dec = logic_blocks_for("none", TECH_32NM_LP)
        assert enc.energy_per_op_pj(0.9) == 0.0
        assert dec.leakage_power_uw(0.9) == 0.0

    def test_unknown_emt(self):
        with pytest.raises(EnergyModelError):
            logic_blocks_for("bch", TECH_32NM_LP)

    def test_negative_gates_rejected(self):
        with pytest.raises(EnergyModelError):
            LogicBlockModel("x", -1, TECH_32NM_LP)

    def test_all_registry_emts_have_budgets(self):
        for name in ("none", "parity", "dream", "secded"):
            assert name in GE_BUDGETS


class TestWorkload:
    def test_validation(self):
        with pytest.raises(EnergyModelError):
            Workload(n_reads=-1, n_writes=0, duration_s=0.0)
        with pytest.raises(EnergyModelError):
            Workload(n_reads=0, n_writes=0, duration_s=-1.0)


class TestSystemModel:
    def test_paper_overhead_calibration(self):
        """The VI-B headline: ECC ~ +55 %, DREAM ~ +34 %."""
        base = EnergySystemModel(NoProtection()).evaluate(0.9, WORKLOAD)
        dream = EnergySystemModel(DreamEMT()).evaluate(0.9, WORKLOAD)
        ecc = EnergySystemModel(SecDedEMT()).evaluate(0.9, WORKLOAD)
        assert dream.overhead_vs(base) == pytest.approx(0.34, abs=0.02)
        assert ecc.overhead_vs(base) == pytest.approx(0.55, abs=0.02)

    def test_overhead_stable_across_voltages(self):
        """'approximately 55% more energy for each voltage'."""
        for voltage in (0.5, 0.6, 0.7, 0.8, 0.9):
            base = EnergySystemModel(NoProtection()).evaluate(voltage, WORKLOAD)
            ecc = EnergySystemModel(SecDedEMT()).evaluate(voltage, WORKLOAD)
            assert ecc.overhead_vs(base) == pytest.approx(0.55, abs=0.03)

    def test_nominal_mask_memory_ablation_grows_at_low_voltage(self):
        """D3 ablation: a fixed-voltage mask memory erodes DREAM's
        advantage as the data supply scales down."""
        model = EnergySystemModel(DreamEMT(), mask_memory_scaled=False)
        base_hi = EnergySystemModel(NoProtection()).evaluate(0.9, WORKLOAD)
        base_lo = EnergySystemModel(NoProtection()).evaluate(0.5, WORKLOAD)
        ovh_hi = model.evaluate(0.9, WORKLOAD).overhead_vs(base_hi)
        ovh_lo = model.evaluate(0.5, WORKLOAD).overhead_vs(base_lo)
        assert ovh_lo > ovh_hi + 0.2

    def test_parity_is_cheapest_protection(self):
        base = EnergySystemModel(NoProtection()).evaluate(0.9, WORKLOAD)
        parity = EnergySystemModel(ParityEMT()).evaluate(0.9, WORKLOAD)
        dream = EnergySystemModel(DreamEMT()).evaluate(0.9, WORKLOAD)
        assert 0 < parity.overhead_vs(base) < dream.overhead_vs(base)

    def test_breakdown_components_sum(self):
        breakdown = EnergySystemModel(DreamEMT()).evaluate(0.7, WORKLOAD)
        total = (
            breakdown.data_dynamic_pj
            + breakdown.data_leakage_pj
            + breakdown.side_dynamic_pj
            + breakdown.side_leakage_pj
            + breakdown.logic_dynamic_pj
            + breakdown.logic_leakage_pj
        )
        assert breakdown.total_pj == pytest.approx(total)

    def test_no_side_energy_without_side_bits(self):
        breakdown = EnergySystemModel(SecDedEMT()).evaluate(0.7, WORKLOAD)
        assert breakdown.side_dynamic_pj == 0.0
        assert breakdown.side_leakage_pj == 0.0

    def test_energy_decreases_with_voltage(self):
        model = EnergySystemModel(NoProtection())
        energies = [
            model.evaluate(v, WORKLOAD).total_pj
            for v in (0.5, 0.6, 0.7, 0.8, 0.9)
        ]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_overhead_vs_zero_baseline_rejected(self):
        from repro.energy.accounting import EnergyBreakdown

        zero = EnergyBreakdown(0, 0, 0, 0, 0, 0)
        some = EnergySystemModel(NoProtection()).evaluate(0.9, WORKLOAD)
        with pytest.raises(EnergyModelError):
            some.overhead_vs(zero)

    def test_memory_area_includes_side_array(self):
        dream = EnergySystemModel(DreamEMT())
        none = EnergySystemModel(NoProtection())
        assert dream.memory_area_mm2() > none.memory_area_mm2()

    def test_voltage_domain_checked(self):
        with pytest.raises(EnergyModelError):
            EnergySystemModel(NoProtection()).evaluate(0.2, WORKLOAD)
