"""The long-running experiment service daemon.

:class:`ExperimentService` turns the repository's one-shot execution
stack into a persistent service: clients submit work (whole declarative
experiments, or single campaigns with explicit point lists) over a
unix-domain socket, get back content-hash job ids immediately, and poll
or stream progress while a supervised worker fleet drains the queue in
the background.

The moving parts are all re-used, not re-invented:

* the **queue** is :class:`~repro.service.queue.JobQueue` — a
  crash-consistent JSONL journal with the result store's locked-append
  discipline, so a SIGKILLed daemon restarts into exactly the state it
  journalled;
* the **fleet** is a :class:`~repro.resilience.supervisor.SupervisedPool`
  in streaming (:meth:`~repro.resilience.supervisor.SupervisedPool.serve`)
  mode — dead-worker requeue, per-job retry/timeout/backoff, chaos
  compatibility, and graceful SIGINT/SIGTERM drain all apply to service
  jobs unchanged.  Workers are spawned non-daemonic because one job is
  a whole experiment that fans out *internally* (nested pools);
* **results** land in the ordinary campaign stores (sharded when the
  daemon is configured with ``shards > 1`` via
  :data:`~repro.campaign.store.SHARDS_ENV`), so ``Session.attach``,
  ``compact()``, and resume semantics hold for service-run results
  bit for bit;
* every accepted job is **registered** in the run registry at submit
  time under the daemon's pid, re-registered by the executing worker
  under its own pid, and finalised exactly once — so ``repro runs``,
  ``repro watch`` and ``repro report`` treat service jobs as ordinary
  runs.

Protocol: one JSON object per line, one request per connection.  The
daemon listens on ``<service root>/service.sock`` and records its
identity in ``<service root>/daemon.json`` (pid, socket, store/trace
directories) — the discovery file clients resolve, which deliberately
survives daemon exit so results remain fetchable with the daemon down.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Any

from .. import obs
from ..api.schema import experiment_from_payload
from ..api.serde import content_hash
from ..api.session import Session
from ..campaign.runner import run_campaign
from ..campaign.spec import CampaignPoint, CampaignSpec
from ..campaign.store import ResultStore, SHARDS_ENV, default_store_root
from ..errors import ReproError, RunInterrupted, ServiceError
from ..resilience.retry import RetryPolicy
from ..resilience.supervisor import SupervisedPool
from .queue import JobQueue, JobRecord

__all__ = [
    "ENV_SERVICE_DIR",
    "ExperimentService",
    "default_service_root",
]

#: Environment override for the service root directory.
ENV_SERVICE_DIR = "REPRO_SERVICE_DIR"

#: Discovery file the daemon writes inside its root.
DAEMON_BASENAME = "daemon.json"

#: Unix-domain socket the daemon listens on, inside its root.
SOCKET_BASENAME = "service.sock"

#: Wire protocol version (one JSON line each way per connection).
PROTOCOL_VERSION = 1

#: Upper bound on one request line — campaign submissions carry their
#: full point list, so this is generous but still a backstop.
_MAX_REQUEST_BYTES = 32 * 1024 * 1024


def default_service_root() -> Path:
    """Directory holding the job journal, socket, and discovery file.

    ``REPRO_SERVICE_DIR`` overrides the default
    ``benchmarks/results/service`` (relative to the working directory),
    next to the campaign stores the jobs write into.
    """
    raw = os.environ.get(ENV_SERVICE_DIR)
    if raw:
        return Path(raw).expanduser()
    return Path("benchmarks") / "results" / "service"


def _spec_from_payload(payload: dict[str, Any]) -> CampaignSpec:
    """Rebuild a campaign spec from its JSON form (filters never cross)."""
    try:
        return CampaignSpec(
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            axes={
                str(axis): tuple(values)
                for axis, values in dict(payload["axes"]).items()
            },
            fixed=dict(payload.get("fixed", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ServiceError(
            f"malformed campaign spec payload: {exc!r}"
        ) from exc


def campaign_job_payload(
    spec: CampaignSpec,
    points: list[CampaignPoint],
    store_name: str | None,
    store_root: str | None,
    resume: bool = True,
    workers: int = 1,
) -> dict[str, Any]:
    """The JSON-safe form of one campaign job.

    Spec filters are arbitrary callables and cannot cross a process
    boundary, so the payload carries the *expanded* coordinate list —
    the executor replays exactly these points via
    :func:`~repro.campaign.runner.run_campaign`'s ``points`` override.
    """
    return {
        "spec": {
            "name": spec.name,
            "kind": spec.kind,
            "axes": {axis: list(values) for axis, values in spec.axes.items()},
            "fixed": dict(spec.fixed),
        },
        "points": [dict(point.coords) for point in points],
        "store_name": store_name,
        "store_root": store_root,
        "resume": resume,
        "workers": workers,
    }


def campaign_job_id(payload: dict[str, Any]) -> str:
    """Content-hash job id of a campaign payload (``svc-`` prefixed)."""
    return f"svc-{content_hash(payload)[:12]}"


# --------------------------------------------------------------------------
# Worker-side job execution (module-level: must be picklable)
# --------------------------------------------------------------------------


def _run_experiment_job(unit: dict[str, Any]) -> dict[str, Any]:
    experiment = experiment_from_payload(unit["payload"])
    if experiment.backend == "service":
        # The daemon *is* the service backend; a job must execute its
        # campaigns directly or submission would recurse forever.
        experiment = replace(experiment, backend=None)
    session = Session(store_dir=unit.get("store_dir"))
    handle = session.run(experiment)
    records = handle.records
    failures = handle.failures()
    summary: dict[str, Any] = {
        "status": "failed" if failures else "ok",
        "kind": "experiment",
        "run_id": session.run_id_for(experiment),
        "n_points": len(records),
        "n_failed": len(failures),
    }
    if failures:
        summary["error"] = f"{len(failures)} point(s) failed"
    telemetry = getattr(handle, "_telemetry", None) or {}
    if telemetry.get("trace_path"):
        summary["trace_path"] = telemetry["trace_path"]
    return summary


def _run_campaign_job(unit: dict[str, Any]) -> dict[str, Any]:
    payload = unit["payload"]
    spec = _spec_from_payload(payload["spec"])
    points = [
        CampaignPoint(kind=spec.kind, coords=dict(coords),
                      fixed=dict(spec.fixed))
        for coords in payload.get("points", [])
    ]
    store = None
    if payload.get("store_name"):
        store = ResultStore.for_campaign(
            payload["store_name"], root=payload.get("store_root")
        )
    job_id = unit["job_id"]
    # Campaign jobs have no Session around them, so the worker does the
    # session's trace/registry dance itself: open a sink keyed by the
    # job id, register under this worker's pid, finalise on the way out.
    owns_trace = obs.start_run(
        job_id, name=spec.name,
        attrs={"kind": "campaign", "service": True},
    )
    registry = None
    trace_path = obs.trace_path()
    if owns_trace and trace_path is not None:
        registry = obs.RunRegistry(Path(trace_path).parent)
        registry.register(
            job_id, name=spec.name, kind="campaign",
            spec_digest=content_hash(payload["spec"]),
            trace_path=trace_path,
        )
    status = "ok"
    error_text: str | None = None
    started = time.perf_counter()
    try:
        result = run_campaign(
            spec,
            store=store,
            n_workers=int(payload.get("workers", 1)),
            resume=bool(payload.get("resume", True)),
            points=points,
        )
        if result.n_failed:
            status = "failed"
            error_text = f"{result.n_failed} point(s) failed"
        return {
            "status": status,
            "kind": "campaign",
            "run_id": job_id,
            "n_points": len(result.records),
            "n_executed": result.n_executed,
            "n_cached": result.n_cached,
            "n_failed": result.n_failed,
            **({"error": error_text} if error_text else {}),
        }
    except BaseException as exc:
        status = (
            "interrupted"
            if isinstance(exc, (KeyboardInterrupt, RunInterrupted))
            else "failed"
        )
        error_text = f"{type(exc).__name__}: {exc}"
        raise
    finally:
        if owns_trace:
            obs.disable()
        if registry is not None:
            registry.finalize(
                job_id, status,
                wall_s=time.perf_counter() - started,
                error=error_text,
            )


def _job_worker(unit: dict[str, Any]) -> dict[str, Any]:
    """Fleet worker body: execute one job, return its JSON-safe summary.

    Exceptions deliberately propagate — the supervised pool's
    retry/backoff/quarantine machinery is the service's job-level fault
    handling, exactly as for campaign points.
    """
    if unit.get("kind") == "campaign":
        return _run_campaign_job(unit)
    return _run_experiment_job(unit)


# --------------------------------------------------------------------------
# The daemon
# --------------------------------------------------------------------------


class ExperimentService:
    """The experiment service daemon: socket front, fleet back.

    Args:
        root: service root directory (journal + socket + discovery
            file); default :func:`default_service_root`.
        workers: fleet size — jobs executing concurrently.
        store_dir: campaign-store root jobs write results into
            (default: the ordinary store root, honouring
            ``REPRO_CAMPAIGN_DIR``).
        trace_dir: trace/registry directory (default: the configured
            trace dir, falling back to the repo default) — exported to
            the environment so jobs and their workers trace into it.
        shards: result-store shard count exported via
            :data:`~repro.campaign.store.SHARDS_ENV`; new stores
            created by service jobs are sharded this way.  ``<= 1``
            leaves the environment alone.
        policy: fleet retry policy (default honours ``REPRO_RETRY_*``).
        poll_s: supervision/scheduling cadence.
        max_inflight: jobs handed to the fleet at once (default
            ``2 * workers`` — enough to keep every worker busy without
            claiming the whole queue, so late high-priority submissions
            still jump ahead).
    """

    def __init__(
        self,
        root: Path | str | None = None,
        workers: int = 2,
        store_dir: Path | str | None = None,
        trace_dir: Path | str | None = None,
        shards: int = 4,
        policy: RetryPolicy | None = None,
        poll_s: float = 0.05,
        max_inflight: int | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if shards < 0:
            raise ServiceError(f"shards must be >= 0, got {shards}")
        self.root = Path(root) if root is not None else default_service_root()
        self.workers = workers
        self.store_dir = (
            Path(store_dir) if store_dir is not None else default_store_root()
        )
        self.trace_dir = (
            Path(trace_dir)
            if trace_dir is not None
            else (obs.configured_dir() or obs.default_trace_dir())
        )
        self.shards = shards
        self.policy = policy
        self.poll_s = poll_s
        self.max_inflight = (
            max_inflight if max_inflight is not None else 2 * workers
        )
        self.queue = JobQueue(self.root)
        self.registry = obs.RunRegistry(self.trace_dir)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._closing = threading.Event()
        self._inflight: dict[str, dict[str, Any]] = {}
        self._sock: socket.socket | None = None
        self._sock_thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- paths -------------------------------------------------------------

    @property
    def socket_path(self) -> Path:
        return self.root / SOCKET_BASENAME

    @property
    def meta_path(self) -> Path:
        return self.root / DAEMON_BASENAME

    # -- lifecycle ---------------------------------------------------------

    def serve(self) -> int:
        """Run the daemon until asked to stop; returns an exit code.

        Startup order is the crash-recovery contract: recover the
        journal first (requeue every job a dead daemon left in flight),
        then open the socket, then start scheduling.  Returns 0 after a
        graceful drain (a ``shutdown`` request), 130 when cancelled by
        SIGINT/SIGTERM (in-flight jobs are requeued for the next
        daemon).
        """
        existing = self.read_meta(self.root)
        if (
            existing is not None
            and existing.get("pid") != os.getpid()
            and _pid_alive(int(existing.get("pid", 0)))
        ):
            raise ServiceError(
                f"a service daemon is already running for {self.root} "
                f"(pid {existing['pid']})"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        if self.shards > 1:
            os.environ[SHARDS_ENV] = str(self.shards)
        obs.set_trace_dir(self.trace_dir)
        requeued = self.queue.recover()
        for job in requeued:
            # Re-own recovered jobs under this daemon's pid so watchers
            # see a live owner while they wait for re-execution.
            self._register(job)
        self._write_meta()
        self._open_socket()
        self._started_at = time.monotonic()
        interrupted = False
        pool = SupervisedPool(
            _job_worker,
            self.workers,
            policy=self.policy,
            name="service",
            tick_s=self.poll_s,
            daemon=False,
            on_claim=self._on_claim,
        )
        try:
            for batch in pool.serve(self._feed, self._stop.is_set):
                self._absorb(batch)
        except RunInterrupted:
            interrupted = True
            self._requeue_inflight()
        finally:
            self._close_socket()
        return 130 if interrupted else 0

    def request_stop(self) -> None:
        """Ask the scheduler to drain and exit (thread-safe)."""
        self._stop.set()

    # -- scheduling --------------------------------------------------------

    def _feed(self) -> list[tuple[str, dict[str, Any]]]:
        """Hand queued jobs to the fleet, capacity-limited, in order."""
        if self._stop.is_set():
            return []
        units: list[tuple[str, dict[str, Any]]] = []
        with self._lock:
            if len(self._inflight) >= self.max_inflight:
                return []
            for job in self.queue.pending():
                if len(self._inflight) >= self.max_inflight:
                    break
                if job.job_id in self._inflight:
                    continue
                unit = {
                    "job_id": job.job_id,
                    "kind": job.kind,
                    "name": job.name,
                    "payload": job.payload,
                    "store_dir": str(self.store_dir),
                }
                self.queue.mark(
                    job.job_id, "claimed", owner_pid=os.getpid()
                )
                self._inflight[job.job_id] = unit
                units.append((job.job_id, unit))
        return units

    def _on_claim(self, job_id: str, pid: int) -> None:
        """A fleet worker picked the job up: journal the transition."""
        with self._lock:
            try:
                self.queue.mark(job_id, "running", owner_pid=pid)
            except ServiceError:  # pragma: no cover - job vanished
                pass

    def _absorb(self, batch: list[Any]) -> None:
        """Record one tick's finished jobs in the journal/registry."""
        for outcome in batch:
            with self._lock:
                self._inflight.pop(outcome.key, None)
            if outcome.quarantined:
                last = outcome.history[-1] if outcome.history else {}
                error = (
                    f"quarantined after {outcome.attempts} attempt(s): "
                    f"{last.get('error', 'unknown fault')}"
                )
                self.queue.mark(
                    outcome.key, "failed", error=error,
                    result={"attempts": outcome.attempts},
                )
                # No worker survived to finalise the registry row.
                self.registry.finalize(outcome.key, "failed", error=error)
                continue
            summary = outcome.value if isinstance(outcome.value, dict) else {}
            status = "done" if summary.get("status") == "ok" else "failed"
            self.queue.mark(
                outcome.key, status,
                error=summary.get("error"), result=summary,
            )

    def _requeue_inflight(self) -> None:
        """Cancellation path: put interrupted jobs back in the queue."""
        with self._lock:
            for job_id in list(self._inflight):
                try:
                    self.queue.mark(job_id, "queued", requeued=True)
                except ServiceError:  # pragma: no cover - journal torn
                    pass
            self._inflight.clear()

    # -- discovery ---------------------------------------------------------

    def _write_meta(self) -> None:
        payload = {
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "socket": str(self.socket_path),
            "root": str(self.root),
            "workers": self.workers,
            "shards": self.shards,
            "store_dir": str(self.store_dir),
            "trace_dir": str(self.trace_dir),
            "started_at": time.time(),
        }
        tmp = self.meta_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.meta_path)

    @staticmethod
    def read_meta(root: Path | str) -> dict[str, Any] | None:
        """The discovery record of a service root, or ``None``."""
        path = Path(root) / DAEMON_BASENAME
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    # -- registry ----------------------------------------------------------

    def _register(self, job: JobRecord) -> None:
        """Register a job's run-registry row under the daemon's pid.

        Submit-time registration is what makes ``repro runs``/``watch``
        aware of queued work — and the recorded owner pid is the
        daemon's, so a dead daemon makes its queued jobs report
        ``stale`` instead of silently running forever.
        """
        self.registry.register(
            job.job_id,
            name=job.name,
            kind=job.kind,
            spec_digest=job.meta.get("spec_digest", ""),
            trace_path=job.meta.get("trace_path", ""),
            pid=os.getpid(),
        )

    # -- socket front ------------------------------------------------------

    def _open_socket(self) -> None:
        self.socket_path.unlink(missing_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(str(self.socket_path))
        sock.listen(16)
        sock.settimeout(0.2)
        self._sock = sock
        self._sock_thread = threading.Thread(
            target=self._accept_loop, name="repro-service-sock", daemon=True
        )
        self._sock_thread.start()

    def _close_socket(self) -> None:
        self._closing.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if self._sock_thread is not None:
            self._sock_thread.join(timeout=1.0)
        self.socket_path.unlink(missing_ok=True)

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._closing.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                with conn:
                    self._handle_connection(conn)
            except Exception:  # noqa: BLE001 - a bad client must not
                pass  # kill the daemon

    def _handle_connection(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        chunks: list[bytes] = []
        size = 0
        while b"\n" not in (chunks[-1] if chunks else b""):
            data = conn.recv(65536)
            if not data:
                break
            chunks.append(data)
            size += len(data)
            if size > _MAX_REQUEST_BYTES:
                raise ServiceError("request exceeds the size limit")
        raw = b"".join(chunks)
        if not raw.strip():
            return
        try:
            request = json.loads(raw.decode("utf-8").splitlines()[0])
            response = self._dispatch(request)
        except ReproError as exc:
            response = {"ok": False, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        conn.sendall(
            (json.dumps(response, sort_keys=True) + "\n").encode("utf-8")
        )

    def _dispatch(self, request: Any) -> dict[str, Any]:
        if not isinstance(request, dict) or "op" not in request:
            raise ServiceError("a request must be a JSON object with an 'op'")
        op = request["op"]
        handler = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "status": self._op_status,
            "jobs": self._op_jobs,
            "cancel": self._op_cancel,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            raise ServiceError(f"unknown service op {op!r}")
        return handler(request)

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        by_status: dict[str, int] = {}
        for job in self.queue.load().values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "ok": True,
            "pid": os.getpid(),
            "protocol": PROTOCOL_VERSION,
            "workers": self.workers,
            "shards": self.shards,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "inflight": len(self._inflight),
            "jobs": by_status,
        }

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request.get("kind", "experiment")
        priority = int(request.get("priority", 0))
        payload = request.get("payload")
        if not isinstance(payload, dict):
            raise ServiceError("submit needs a 'payload' object")
        if kind == "experiment":
            experiment = experiment_from_payload(payload)
            job_id = f"{experiment.name}-{experiment.content_hash()[:12]}"
            name = experiment.name
            payload = experiment.to_payload()
            spec_digest = experiment.content_hash()
        elif kind == "campaign":
            spec = _spec_from_payload(payload.get("spec", {}))
            if not isinstance(payload.get("points"), list):
                raise ServiceError(
                    "a campaign submission needs a 'points' list"
                )
            job_id = campaign_job_id(payload)
            name = spec.name
            spec_digest = content_hash(payload["spec"])
        else:
            raise ServiceError(
                f"submit kind must be 'experiment' or 'campaign', "
                f"got {kind!r}"
            )
        meta = {
            "store_dir": str(self.store_dir),
            "trace_path": str(self.trace_dir / f"{job_id}.jsonl"),
            "spec_digest": spec_digest,
        }
        with self._lock:
            record, created = self.queue.submit(
                job_id, kind, payload,
                name=name, priority=priority, meta=meta,
            )
        if created:
            self._register(record)
        return {"ok": True, "job": record.to_dict(), "created": created}

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self.queue.get(str(request.get("job_id", "")))
        if job is None:
            raise ServiceError(
                f"unknown job id {request.get('job_id')!r}"
            )
        return {"ok": True, "job": job.to_dict()}

    def _op_jobs(self, request: dict[str, Any]) -> dict[str, Any]:
        jobs = self.queue.jobs(
            status=request.get("status"), kind=request.get("kind"),
            limit=request.get("limit"),
        )
        return {"ok": True, "jobs": [job.to_dict() for job in jobs]}

    def _op_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = str(request.get("job_id", ""))
        with self._lock:
            if job_id in self._inflight:
                raise ServiceError(
                    f"job {job_id} is already executing; only queued "
                    "jobs can be cancelled"
                )
            record = self.queue.cancel(job_id)
        self.registry.finalize(
            job_id, "interrupted", error="cancelled before execution"
        )
        return {"ok": True, "job": record.to_dict()}

    def _op_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self._stop.set()
        with self._lock:
            draining = len(self._inflight)
        return {"ok": True, "draining": draining}


def _pid_alive(pid: int) -> bool:
    from ..obs.registry import pid_alive

    return pid > 0 and pid_alive(pid)
