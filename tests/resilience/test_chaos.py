"""Tests for the deterministic chaos layer: grammar, draws, sites."""

from __future__ import annotations

import pytest

from repro.errors import ChaosError, ResilienceError, RunInterrupted
from repro.resilience import (
    ChaosSpec,
    active_chaos,
    chaos_draw,
    parse_chaos,
)


class TestDraws:
    def test_uniform_deterministic_and_independent(self):
        a = chaos_draw(7, "kill", "work-1", 1)
        assert a == chaos_draw(7, "kill", "work-1", 1)
        assert 0.0 <= a < 1.0
        # Any coordinate change re-draws.
        assert a != chaos_draw(8, "kill", "work-1", 1)
        assert a != chaos_draw(7, "raise", "work-1", 1)
        assert a != chaos_draw(7, "kill", "work-2", 1)
        assert a != chaos_draw(7, "kill", "work-1", 2)

    def test_draws_are_roughly_uniform(self):
        draws = [chaos_draw(0, "kill", f"k{i}", 1) for i in range(2000)]
        assert 0.4 < sum(d < 0.5 for d in draws) / len(draws) < 0.6


class TestGrammar:
    def test_full_spec_parses(self):
        spec = parse_chaos(
            "kill:0.2, raise:0.1, delay:0.5:0.01, enospc:0.3, "
            "interrupt:4, seed:11"
        )
        assert spec == ChaosSpec(
            kill_p=0.2, raise_p=0.1, delay_p=0.5, delay_s=0.01,
            enospc_p=0.3, interrupt_after=4, seed=11,
        )
        assert spec.active

    def test_empty_spec_is_inactive(self):
        assert not parse_chaos("").active
        assert not parse_chaos("  ").active
        assert not ChaosSpec().active

    @pytest.mark.parametrize(
        "bad",
        ["kill", "kill:2.0", "kill:-0.1", "delay:0.5", "boom:1",
         "interrupt:-1", "kill:abc", "delay:0.1:-1"],
    )
    def test_malformed_clause_raises_with_grammar_hint(self, bad):
        with pytest.raises(ResilienceError, match="expected kill:P"):
            parse_chaos(bad)


class TestActiveChaos:
    def test_env_roundtrip_and_memoization(self, monkeypatch):
        assert not active_chaos().active
        monkeypatch.setenv("REPRO_CHAOS", "raise:0.5,seed:3")
        first = active_chaos()
        assert first.raise_p == 0.5
        assert active_chaos() is first  # memoized on the raw value
        monkeypatch.setenv("REPRO_CHAOS", "raise:0.25")
        assert active_chaos().raise_p == 0.25
        monkeypatch.delenv("REPRO_CHAOS")
        assert not active_chaos().active


class TestSites:
    def test_raise_site_fires_deterministically(self):
        spec = ChaosSpec(raise_p=1.0)
        with pytest.raises(ChaosError, match="injected transient"):
            spec.inject_worker("w", 1)

    def test_clean_draw_is_a_no_op(self):
        ChaosSpec(raise_p=0.0, kill_p=0.0).inject_worker("w", 1)

    def test_kill_site_respects_allow_kill(self):
        # With allow_kill=False a certain kill draw must NOT SIGKILL the
        # calling process (this test process).
        ChaosSpec(kill_p=1.0).inject_worker("w", 1, allow_kill=False)

    def test_enospc_site_raises_oserror(self):
        import errno

        spec = ChaosSpec(enospc_p=1.0)
        with pytest.raises(OSError) as err:
            spec.inject_store_write("deadbeef", 1)
        assert err.value.errno == errno.ENOSPC
        ChaosSpec(enospc_p=0.0).inject_store_write("deadbeef", 1)

    def test_interrupt_site_threshold(self):
        spec = ChaosSpec(interrupt_after=3)
        spec.check_interrupt(2)
        with pytest.raises(RunInterrupted, match="injected interrupt"):
            spec.check_interrupt(3)
        ChaosSpec().check_interrupt(10**6)

    def test_delay_site_sleeps(self):
        import time

        spec = ChaosSpec(delay_p=1.0, delay_s=0.02)
        started = time.perf_counter()
        spec.inject_worker("w", 1)
        assert time.perf_counter() - started >= 0.02
