"""Tests for memory geometry, address scrambling and the faulty SRAM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryModelError
from repro.mem import (
    AddressMap,
    FaultySRAM,
    MemoryGeometry,
    empty_fault_map,
    position_fault_map,
    sample_fault_map,
)
from repro.mem.layout import PAPER_GEOMETRY


class TestGeometry:
    def test_paper_geometry_is_32kb(self):
        """Section V: 32 kB of 16-bit words in 16 banks."""
        assert PAPER_GEOMETRY.n_words * PAPER_GEOMETRY.word_bits == 32 * 1024 * 8
        assert PAPER_GEOMETRY.n_banks == 16
        assert PAPER_GEOMETRY.words_per_bank == 1024

    def test_bank_interleaving(self, small_geometry):
        addresses = np.arange(8)
        banks = small_geometry.bank_of(addresses)
        assert banks.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_of(self, small_geometry):
        rows = small_geometry.row_of(np.array([0, 4, 8, 255]))
        assert rows.tolist() == [0, 1, 2, 63]

    def test_rejects_bad_banks(self):
        with pytest.raises(ConfigurationError):
            MemoryGeometry(n_words=100, word_bits=16, n_banks=3)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            MemoryGeometry(n_words=0, word_bits=16, n_banks=1)
        with pytest.raises(ConfigurationError):
            MemoryGeometry(n_words=16, word_bits=0, n_banks=1)

    def test_address_range_check(self, small_geometry):
        with pytest.raises(MemoryModelError):
            small_geometry.bank_of(np.array([256]))

    def test_with_word_bits(self, small_geometry):
        widened = small_geometry.with_word_bits(22)
        assert widened.word_bits == 22
        assert widened.n_words == small_geometry.n_words


class TestAddressMap:
    def test_identity_map(self, small_geometry):
        amap = AddressMap(small_geometry, scramble=False)
        assert amap.is_identity
        addresses = np.arange(small_geometry.n_words)
        assert np.array_equal(amap.physical(addresses), addresses)

    def test_scramble_is_a_permutation(self, small_geometry, rng):
        amap = AddressMap(small_geometry, rng=rng)
        physical = amap.physical(np.arange(small_geometry.n_words))
        assert sorted(physical.tolist()) == list(range(small_geometry.n_words))
        assert not amap.is_identity

    def test_scramble_requires_rng(self, small_geometry):
        with pytest.raises(ConfigurationError):
            AddressMap(small_geometry, scramble=True)

    def test_out_of_range(self, small_geometry, rng):
        amap = AddressMap(small_geometry, rng=rng)
        with pytest.raises(MemoryModelError):
            amap.physical(np.array([small_geometry.n_words]))

    def test_different_seeds_differ(self, small_geometry):
        a = AddressMap(small_geometry, rng=np.random.default_rng(1))
        b = AddressMap(small_geometry, rng=np.random.default_rng(2))
        pa = a.physical(np.arange(small_geometry.n_words))
        pb = b.physical(np.arange(small_geometry.n_words))
        assert not np.array_equal(pa, pb)


class TestFaultySRAM:
    def test_clean_write_read(self, small_geometry, rng):
        sram = FaultySRAM(small_geometry)
        addresses = np.arange(64)
        patterns = rng.integers(0, 1 << 16, size=64, dtype=np.int64)
        sram.write(addresses, patterns)
        assert np.array_equal(sram.read(addresses), patterns)

    def test_stuck_bits_corrupt_on_readback(self, small_geometry):
        fm = position_fault_map(small_geometry.n_words, 16, 15, 1)
        sram = FaultySRAM(small_geometry, fm)
        sram.write(np.array([0]), np.array([0x0001]))
        assert int(sram.read(np.array([0]))[0]) == 0x8001

    def test_defective_cells_hold_stuck_value_before_first_write(
        self, small_geometry
    ):
        fm = position_fault_map(small_geometry.n_words, 16, 3, 1)
        sram = FaultySRAM(small_geometry, fm)
        assert int(sram.read(np.array([5]))[0]) == 0b1000

    def test_repeated_reads_are_stable(self, small_geometry, rng):
        fm = sample_fault_map(small_geometry.n_words, 16, 0.05, rng)
        sram = FaultySRAM(small_geometry, fm)
        addresses = np.arange(small_geometry.n_words)
        sram.write(addresses, rng.integers(0, 1 << 16, small_geometry.n_words))
        first = sram.read(addresses)
        second = sram.read(addresses)
        assert np.array_equal(first, second)

    def test_access_counters(self, small_geometry):
        sram = FaultySRAM(small_geometry)
        sram.write(np.arange(10), np.zeros(10, dtype=np.int64))
        sram.read(np.arange(4))
        assert sram.write_count == 10
        assert sram.read_count == 4
        sram.reset_counters()
        assert sram.write_count == 0 and sram.read_count == 0

    def test_scrambled_addressing_moves_faults(self, small_geometry):
        # One stuck cell at physical word 0; scrambling relocates which
        # logical address sees it.
        fm = empty_fault_map(small_geometry.n_words, 16)
        set_mask = fm.set_mask.copy()
        set_mask[0] = 0x8000
        fm = type(fm)(word_bits=16, set_mask=set_mask, clear_mask=fm.clear_mask)
        amap = AddressMap(small_geometry, rng=np.random.default_rng(7))
        sram = FaultySRAM(small_geometry, fm, amap)
        logical = np.arange(small_geometry.n_words)
        sram.write(logical, np.zeros(small_geometry.n_words, dtype=np.int64))
        data = sram.read(logical)
        hit = np.flatnonzero(data == 0x8000)
        assert len(hit) == 1
        physical = amap.physical(hit)
        assert int(physical[0]) == 0

    def test_write_shape_mismatch(self, small_geometry):
        sram = FaultySRAM(small_geometry)
        with pytest.raises(MemoryModelError):
            sram.write(np.arange(3), np.zeros(2, dtype=np.int64))

    def test_write_pattern_too_wide(self, small_geometry):
        sram = FaultySRAM(small_geometry)
        with pytest.raises(MemoryModelError):
            sram.write(np.array([0]), np.array([1 << 16]))

    def test_address_out_of_range(self, small_geometry):
        sram = FaultySRAM(small_geometry)
        with pytest.raises(MemoryModelError):
            sram.read(np.array([small_geometry.n_words]))

    def test_fault_map_geometry_must_match(self, small_geometry, rng):
        wrong_words = sample_fault_map(small_geometry.n_words + 1, 16, 0.01, rng)
        with pytest.raises(MemoryModelError):
            FaultySRAM(small_geometry, wrong_words)
        wrong_width = sample_fault_map(small_geometry.n_words, 22, 0.01, rng)
        with pytest.raises(MemoryModelError):
            FaultySRAM(small_geometry, wrong_width)
