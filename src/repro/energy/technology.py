"""Technology node model: voltage scaling laws and the BER(V) table.

The paper (Section V): "The amount of permanent errors or stuck-at faults
injected depends on the Bit Error Rate (BER), obtained profiling the
memory for each voltage level for the selected technology node (32 nm)
with low-power memory cells."  The profiled table itself is not published,
so this module ships a calibration table chosen to reproduce the *shape*
of Fig 4 (see EXPERIMENTS.md):

* essentially error-free operation at and above 0.8 V,
* first visible degradation of unprotected memory around 0.70-0.75 V,
* the DREAM/ECC quality crossover near 0.55 V,
* multi-error collapse of SEC/DED at 0.50 V.

Between table points the BER is interpolated log-linearly in voltage,
which matches the near-exponential growth of bit-cell failure probability
as supply approaches threshold (Ganapathy et al., [2] in the paper).

Scaling laws:

* dynamic energy scales as ``(V / V_nom)**2`` (CV^2),
* leakage power scales as ``(V / V_nom) * exp((V - V_nom) / v_leak)`` —
  the supply-times-DIBL-driven-current model; ``v_leak`` calibrates how
  steeply leakage falls with voltage scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import EnergyModelError

__all__ = ["Technology", "TECH_32NM_LP", "PAPER_VOLTAGE_GRID"]


#: The supply grid of Fig 4: 0.50 V to 0.90 V in 50 mV steps.
PAPER_VOLTAGE_GRID = tuple(round(0.50 + 0.05 * i, 2) for i in range(9))


@dataclass(frozen=True)
class Technology:
    """A CMOS node's electrical behaviour for this study.

    Attributes:
        name: node label.
        v_nominal: nominal supply voltage (V).
        v_min: lowest supply the models are calibrated for (V).
        v_max: highest supply the models accept (V).
        temperature_k: operating temperature (the paper uses 343 K).
        v_leak: characteristic voltage of the leakage exponential (V).
        ber_table: ``(voltage, ber)`` calibration points, ascending in
            voltage; queried through :meth:`ber`.
    """

    name: str
    v_nominal: float
    v_min: float
    v_max: float
    temperature_k: float
    v_leak: float
    ber_table: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.v_min < self.v_nominal <= self.v_max:
            raise EnergyModelError(
                f"inconsistent voltage bounds: min {self.v_min}, "
                f"nominal {self.v_nominal}, max {self.v_max}"
            )
        if len(self.ber_table) < 2:
            raise EnergyModelError("BER table needs at least two points")
        voltages = [v for v, _ in self.ber_table]
        if voltages != sorted(voltages):
            raise EnergyModelError("BER table must be ascending in voltage")
        if any(b <= 0 for _, b in self.ber_table):
            raise EnergyModelError("BER table entries must be positive")

    def check_voltage(self, voltage: float) -> None:
        """Validate that ``voltage`` is inside the calibrated domain."""
        if not self.v_min <= voltage <= self.v_max:
            raise EnergyModelError(
                f"{voltage} V outside the calibrated range "
                f"[{self.v_min}, {self.v_max}] of {self.name}"
            )

    def ber(self, voltage: float) -> float:
        """Stuck-at Bit Error Rate of low-power cells at ``voltage``.

        Log-linear interpolation between calibration points; clamped to
        the end values outside the table (the table spans the calibrated
        voltage domain).
        """
        self.check_voltage(voltage)
        table = self.ber_table
        if voltage <= table[0][0]:
            return table[0][1]
        if voltage >= table[-1][0]:
            return table[-1][1]
        for (v_lo, b_lo), (v_hi, b_hi) in zip(table, table[1:]):
            if v_lo <= voltage <= v_hi:
                frac = (voltage - v_lo) / (v_hi - v_lo)
                log_ber = (1 - frac) * math.log10(b_lo) + frac * math.log10(b_hi)
                return 10.0**log_ber
        raise EnergyModelError(  # pragma: no cover - table spans the domain
            f"BER table does not cover {voltage} V"
        )

    def dynamic_scale(self, voltage: float) -> float:
        """Dynamic-energy multiplier relative to nominal supply (CV^2)."""
        self.check_voltage(voltage)
        return (voltage / self.v_nominal) ** 2

    def leakage_scale(self, voltage: float) -> float:
        """Leakage-power multiplier relative to nominal supply."""
        self.check_voltage(voltage)
        ratio = voltage / self.v_nominal
        return ratio * math.exp((voltage - self.v_nominal) / self.v_leak)


#: Calibrated 32 nm low-power node (paper Section V: 32 nm, 343 K).
#:
#: The BER points are the reproduction's stand-in for the paper's memory
#: profiling; EXPERIMENTS.md discusses the calibration against Fig 4.
TECH_32NM_LP = Technology(
    name="32nm-lp",
    v_nominal=0.90,
    v_min=0.50,
    v_max=1.00,
    temperature_k=343.0,
    v_leak=0.25,
    ber_table=(
        (0.50, 1.2e-2),
        (0.55, 3.0e-3),
        (0.60, 1.0e-3),
        (0.65, 1.5e-4),
        (0.70, 1.5e-5),
        (0.75, 1.5e-6),
        (0.80, 1.0e-7),
        (0.85, 1.0e-8),
        (0.90, 1.0e-9),
        (1.00, 1.0e-10),
    ),
)
