"""Command-line interface: regenerate any of the paper's artefacts.

Usage (installed as a module)::

    python -m repro fig2 --apps dwt,morphology
    python -m repro fig4 --runs 25 --apps dwt
    python -m repro energy
    python -m repro tradeoff --tolerance 5
    python -m repro overheads
    python -m repro record 106 --duration 10
    python -m repro lifetime --voltage 0.65 --emt dream

Every subcommand prints the same ASCII tables the benchmark harness
writes to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .energy.technology import PAPER_VOLTAGE_GRID
from .errors import ReproError

__all__ = ["main", "build_parser"]

PAPER_APP_NAMES = (
    "dwt",
    "matrix_filter",
    "compressed_sensing",
    "morphology",
    "delineation",
)


def _csv(raw: str) -> tuple[str, ...]:
    return tuple(item.strip() for item in raw.split(",") if item.strip())


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Energy vs. Reliability Trade-offs "
            "Exploration in Biomedical Ultra-Low Power Devices' "
            "(Duch et al., DATE 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--records", type=_csv, default=("100", "106"),
        help="comma-separated record names (default: 100,106)",
    )
    common.add_argument(
        "--duration", type=float, default=8.0,
        help="seconds of each record to process (default: 8)",
    )

    fig2 = sub.add_parser(
        "fig2", parents=[common],
        help="Fig 2: SNR vs bit position of injected stuck-at errors",
    )
    fig2.add_argument(
        "--apps", type=_csv, default=PAPER_APP_NAMES,
        help="comma-separated application names",
    )

    fig4 = sub.add_parser(
        "fig4", parents=[common],
        help="Fig 4a/b/c: SNR vs supply voltage per EMT",
    )
    fig4.add_argument("--apps", type=_csv, default=PAPER_APP_NAMES)
    fig4.add_argument(
        "--runs", type=int, default=12,
        help="Monte-Carlo runs per grid point (paper: 200)",
    )
    fig4.add_argument(
        "--emts", type=_csv, default=("none", "dream", "secded"),
        help="EMT registry names to sweep",
    )

    sub.add_parser("energy", help="Section VI-B energy/area analysis")

    tradeoff = sub.add_parser(
        "tradeoff", parents=[common],
        help="Section VI-C voltage/quality trade-off for one app",
    )
    tradeoff.add_argument("--app", default="dwt")
    tradeoff.add_argument("--runs", type=int, default=12)
    tradeoff.add_argument(
        "--tolerance", type=float, default=1.0,
        help="allowed output degradation in dB (paper: 1)",
    )

    sub.add_parser("overheads", help="Section V / Formula 2 bit overheads")

    record = sub.add_parser(
        "record", help="synthesise and describe one catalog record"
    )
    record.add_argument("name", help="record name, e.g. 106")
    record.add_argument("--duration", type=float, default=10.0)

    lifetime = sub.add_parser(
        "lifetime",
        help="battery-lifetime estimate for a monitoring node",
    )
    lifetime.add_argument("--voltage", type=float, default=0.65)
    lifetime.add_argument("--emt", default="dream")
    lifetime.add_argument(
        "--capacity-mah", type=float, default=230.0,
        help="battery capacity (default: CR2032-class, 230 mAh)",
    )
    return parser


def _cmd_fig2(args) -> int:
    from .exp.common import ExperimentConfig
    from .exp.fig2 import run_fig2
    from .exp.report import format_fig2

    config = ExperimentConfig(records=args.records, duration_s=args.duration)
    print(format_fig2(run_fig2(app_names=args.apps, config=config)))
    return 0


def _cmd_fig4(args) -> int:
    from .exp.common import ExperimentConfig
    from .exp.fig4 import run_fig4
    from .exp.report import format_fig4

    config = ExperimentConfig(
        records=args.records, duration_s=args.duration, n_runs=args.runs
    )
    result = run_fig4(
        app_names=args.apps, emt_names=args.emts, config=config
    )
    for emt_name in args.emts:
        print(format_fig4(result, emt_name))
        print()
    return 0


def _cmd_energy(args) -> int:
    from .exp.energy_table import run_energy_analysis
    from .exp.report import format_energy_analysis

    print(format_energy_analysis(run_energy_analysis()))
    return 0


def _cmd_tradeoff(args) -> int:
    from .exp.common import ExperimentConfig
    from .exp.fig4 import run_fig4
    from .exp.report import format_paper_example, format_tradeoff
    from .exp.tradeoff import paper_example_savings, run_tradeoff

    config = ExperimentConfig(
        records=args.records, duration_s=args.duration, n_runs=args.runs
    )
    fig4 = run_fig4(app_names=(args.app,), config=config)
    result = run_tradeoff(
        fig4, app_name=args.app, tolerance_db=args.tolerance
    )
    print(format_tradeoff(result))
    print()
    print(format_paper_example(paper_example_savings()))
    return 0


def _cmd_overheads(args) -> int:
    from .exp.overheads import overhead_table
    from .exp.report import format_overheads

    print(format_overheads(overhead_table()))
    return 0


def _cmd_record(args) -> int:
    from .signals.dataset import load_record

    record = load_record(args.name, duration_s=args.duration)
    labels = "".join(record.labels)
    print(f"record {record.name}: {record.duration_s:.1f} s @ "
          f"{record.fs_hz:.0f} Hz, {len(record.samples)} samples")
    print(f"  beats: {len(record.labels)}  rhythm: {labels}")
    print(f"  sample range: [{int(record.samples.min())}, "
          f"{int(record.samples.max())}]")
    return 0


def _cmd_lifetime(args) -> int:
    from .emt import make_emt
    from .energy.battery import BatteryModel, estimate_lifetime
    from .energy.technology import TECH_32NM_LP
    from .exp.energy_table import measure_workload

    battery = BatteryModel(capacity_mah=args.capacity_mah)
    workload = measure_workload("dwt")
    print(f"{args.capacity_mah:.0f} mAh battery, DWT monitoring workload")
    print(f"{'configuration':>24s} {'power':>10s} {'lifetime':>10s}")
    rows = [("none", TECH_32NM_LP.v_nominal), (args.emt, args.voltage)]
    for emt_name, voltage in rows:
        estimate = estimate_lifetime(
            make_emt(emt_name), voltage, battery, workload=workload
        )
        print(
            f"{emt_name + f' @ {voltage:.2f} V':>24s} "
            f"{estimate.average_power_uw:8.2f}uW "
            f"{estimate.lifetime_days:8.0f} d"
        )
    return 0


_HANDLERS = {
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "energy": _cmd_energy,
    "tradeoff": _cmd_tradeoff,
    "overheads": _cmd_overheads,
    "record": _cmd_record,
    "lifetime": _cmd_lifetime,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
