"""Cross-cutting property-based tests on the core invariants.

These complement the per-module suites with whole-stack properties the
paper's methodology relies on, driven by hypothesis.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._bitops import to_signed, to_unsigned
from repro.emt import DreamEMT, NoProtection, ParityEMT, SecDedEMT
from repro.mem import FaultMap, MemoryFabric, MemoryGeometry, sample_fault_map
from repro.signals.metrics import snr_db

ALL_EMTS = [NoProtection, ParityEMT, DreamEMT, SecDedEMT]
SMALL = MemoryGeometry(n_words=128, word_bits=16, n_banks=4)

signed_arrays = st.lists(
    st.integers(min_value=-32768, max_value=32767), min_size=1, max_size=32
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestEmtAlgebra:
    @settings(max_examples=30)
    @given(values=signed_arrays)
    def test_decode_encode_identity_for_all_emts(self, values):
        """decode(encode(x)) == x for every technique, any payload."""
        patterns = to_unsigned(values, 16)
        for emt_cls in ALL_EMTS:
            emt = emt_cls()
            stored, side = emt.encode(patterns)
            decoded = emt.decode(stored, side)
            assert np.array_equal(decoded, patterns), emt.name

    @settings(max_examples=30)
    @given(values=signed_arrays, seed=st.integers(min_value=0, max_value=999))
    def test_decoded_output_always_in_range(self, values, seed):
        """However the memory corrupts a word, decoders emit valid
        16-bit patterns (no out-of-band values reach the application)."""
        rng = np.random.default_rng(seed)
        for emt_cls in ALL_EMTS:
            emt = emt_cls()
            stored, side = emt.encode(to_unsigned(values, 16))
            corruption = rng.integers(
                0, 1 << emt.stored_bits, size=stored.shape, dtype=np.int64
            )
            decoded = emt.decode(stored ^ corruption, side)
            assert int(decoded.min()) >= 0
            assert int(decoded.max()) <= 0xFFFF

    @settings(max_examples=30)
    @given(
        values=signed_arrays,
        position=st.integers(min_value=0, max_value=15),
        stuck=st.integers(min_value=0, max_value=1),
    )
    def test_dream_never_worse_than_nothing_on_msb_runs(
        self, values, position, stuck
    ):
        """For stuck-at faults on any *data* bit position, DREAM's
        absolute per-word error is never larger than unprotected."""
        patterns = to_unsigned(values, 16)
        mask = np.int64(1 << position)

        def corrupt(words):
            if stuck:
                return np.bitwise_or(words, mask)
            return np.bitwise_and(words, ~mask)

        none = NoProtection()
        stored_n, _ = none.encode(patterns)
        out_none = to_signed(none.decode(corrupt(stored_n), None), 16)

        dream = DreamEMT()
        stored_d, side = dream.encode(patterns)
        out_dream = to_signed(dream.decode(corrupt(stored_d), side), 16)

        err_none = np.abs(out_none - values)
        err_dream = np.abs(out_dream - values)
        assert np.all(err_dream <= err_none)


class TestFaultMapAlgebra:
    @settings(max_examples=25)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ber=st.floats(min_value=0.0, max_value=0.3),
    )
    def test_sampled_maps_are_consistent(self, seed, ber):
        fm = sample_fault_map(64, 22, ber, np.random.default_rng(seed))
        # set and clear never overlap
        assert not np.any(np.bitwise_and(fm.set_mask, fm.clear_mask))
        # apply twice == apply once (permanent faults are stable)
        words = np.random.default_rng(seed + 1).integers(
            0, 1 << 22, size=64, dtype=np.int64
        )
        once = fm.apply(words)
        assert np.array_equal(fm.apply(once), once)

    @settings(max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_restriction_commutes_with_apply_on_low_bits(self, seed):
        """Restricting then applying == applying then masking: the
        fair-comparison construction cannot change low-column faults."""
        rng = np.random.default_rng(seed)
        fm22 = sample_fault_map(32, 22, 0.05, rng)
        fm16 = fm22.restricted_to(16)
        words16 = np.random.default_rng(seed + 5).integers(
            0, 1 << 16, size=32, dtype=np.int64
        )
        via16 = fm16.apply(words16)
        via22 = np.bitwise_and(fm22.apply(words16), 0xFFFF)
        assert np.array_equal(via16, via22)


class TestFabricProperties:
    @settings(max_examples=20)
    @given(values=signed_arrays, seed=st.integers(min_value=0, max_value=500))
    def test_dream_fabric_bounds_error_by_unprotected_tail(self, values, seed):
        """Through the full fabric, a DREAM-protected word's error is
        bounded by its unprotected low bits: |err| < 2**(16 - protected)."""
        rng = np.random.default_rng(seed)
        emt = DreamEMT()
        fm = sample_fault_map(SMALL.n_words, 16, 0.1, rng)
        fabric = MemoryFabric(emt, fault_map=fm, geometry=SMALL)
        out = fabric.roundtrip("x", values)

        _, side = emt.encode(to_unsigned(values, 16))
        protected = emt.protected_bits(side)
        bound = np.int64(1) << np.maximum(16 - protected, 0)
        assert np.all(np.abs(out - values) < np.maximum(bound, 1))

    @settings(max_examples=20)
    @given(values=signed_arrays)
    def test_snr_cap_reached_only_when_bit_exact(self, values):
        fabric = MemoryFabric(NoProtection(), geometry=SMALL)
        out = fabric.roundtrip("x", values)
        assert snr_db(values, out) == 96.0

    @settings(max_examples=15)
    @given(
        values=signed_arrays,
        seed=st.integers(min_value=0, max_value=200),
        ber=st.floats(min_value=1e-4, max_value=2e-3),
    )
    def test_secded_at_least_as_good_as_parity_single_error_regime(
        self, values, seed, ber
    ):
        """Shared defects in the single-error regime: SEC/DED output
        error never exceeds detection-only parity's on the same fault
        locations.  (Beyond ~1 fault per word this property genuinely
        breaks — >= 3-error miscorrection — which is the Fig 4c collapse,
        covered by the Fig 4 experiments instead.)"""
        rng = np.random.default_rng(seed)
        shared = sample_fault_map(SMALL.n_words, 22, ber, rng)
        outputs = {}
        for emt in (ParityEMT(), SecDedEMT()):
            fm = shared.restricted_to(emt.stored_bits)
            fabric = MemoryFabric(emt, fault_map=fm, geometry=SMALL)
            outputs[emt.name] = fabric.roundtrip("x", values)
        err_parity = np.abs(outputs["parity"] - values).sum()
        err_secded = np.abs(outputs["secded"] - values).sum()
        assert err_secded <= err_parity + 1
