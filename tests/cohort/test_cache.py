"""Tests for the process-safe disk calibration cache (repro.cache)."""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.cache import (
    DiskCache,
    computed_events,
    default_cache_root,
    shared_cache,
)
from repro.errors import ReproError


class TestDiskCache:
    def test_computes_once_then_hits_memory(self, tmp_path):
        cache = DiskCache(tmp_path)
        calls = []
        value = cache.get_or_compute({"k": 1}, lambda: calls.append(1) or 42)
        again = cache.get_or_compute({"k": 1}, lambda: calls.append(1) or 99)
        assert (value, again) == (42, 42)
        assert len(calls) == 1
        assert cache.stats.computed == 1
        assert cache.stats.memory_hits == 1

    def test_distinct_payloads_distinct_entries(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get_or_compute({"k": 1}, lambda: "a") == "a"
        assert cache.get_or_compute({"k": 2}, lambda: "b") == "b"
        assert cache.info()["entries"] == 2

    def test_fresh_instance_hits_disk(self, tmp_path):
        DiskCache(tmp_path).get_or_compute({"k": 1}, lambda: [1, 2])
        fresh = DiskCache(tmp_path)
        value = fresh.get_or_compute(
            {"k": 1}, lambda: pytest.fail("must not recompute")
        )
        assert value == [1, 2]
        assert fresh.stats.disk_hits == 1

    def test_key_order_does_not_matter(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_compute({"a": 1, "b": 2}, lambda: "x")
        value = cache.get_or_compute(
            {"b": 2, "a": 1}, lambda: pytest.fail("same content, same entry")
        )
        assert value == "x"

    def test_corrupt_entry_recomputed(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_compute({"k": 1}, lambda: 7)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text("{torn", encoding="utf-8")
        fresh = DiskCache(tmp_path)
        assert fresh.get_or_compute({"k": 1}, lambda: 8) == 8

    def test_unserialisable_value_raises(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ReproError, match="JSON-serialisable"):
            cache.get_or_compute({"k": 1}, lambda: object())

    def test_non_persistent_mode_stays_in_memory(self, tmp_path):
        cache = DiskCache(tmp_path, persistent=False)
        assert cache.get_or_compute({"k": 1}, lambda: 5) == 5
        assert cache.get_or_compute({"k": 1}, lambda: 9) == 5
        assert not list(tmp_path.glob("*.json"))

    def test_clear_and_info(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_compute({"k": 1}, lambda: 1)
        cache.get_or_compute({"k": 2}, lambda: 2)
        info = cache.info()
        assert info["entries"] == 2
        assert info["size_bytes"] > 0
        assert cache.clear() == 2
        assert cache.info()["entries"] == 0
        assert computed_events(tmp_path) == []
        # cleared from memory too: recomputes
        assert cache.get_or_compute({"k": 1}, lambda: 11) == 11

    def test_event_log_audits_computations(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_compute({"k": 1}, lambda: 1)
        cache.get_or_compute({"k": 2}, lambda: 2)
        cache.get_or_compute({"k": 1}, lambda: 3)
        events = computed_events(tmp_path)
        assert len(events) == 2
        assert len(set(events)) == 2


def _hammer(payload):
    """Worker body: many lookups of the same small key set."""
    root, worker = payload
    cache = DiskCache(root)
    return [
        cache.get_or_compute({"key": k}, lambda k=k: {"value": k * k})
        for k in (0, 1, 2, 0, 1, 2)
    ]


class TestProcessSafety:
    def test_exactly_once_across_processes(self, tmp_path):
        with multiprocessing.Pool(4) as pool:
            results = pool.map(_hammer, [(str(tmp_path), w) for w in range(8)])
        # Every worker saw identical values ...
        assert all(result == results[0] for result in results)
        # ... and each of the three keys was computed exactly once
        # fleet-wide, despite 8 workers racing for it.
        events = computed_events(tmp_path)
        assert sorted(events) == sorted(set(events))
        assert len(set(events)) == 3


class TestSharedCache:
    def test_follows_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        first = shared_cache()
        assert first.root == tmp_path / "a"
        assert shared_cache() is first  # stable while env is stable
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        assert shared_cache().root == tmp_path / "b"

    def test_disable_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        cache = shared_cache()
        assert not cache.persistent
        cache.get_or_compute({"k": 1}, lambda: 1)
        assert not list(tmp_path.glob("*.json"))

    def test_default_root_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_root() == tmp_path

    def test_entries_are_keyed_json(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.get_or_compute({"kind": "quality", "x": 1}, lambda: [0.5, 0.1])
        entry = json.loads(next(tmp_path.glob("*.json")).read_text())
        assert entry["key"] == {"kind": "quality", "x": 1}
        assert entry["value"] == [0.5, 0.1]
