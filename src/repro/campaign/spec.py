"""Declarative description of a design-space-exploration campaign.

A :class:`CampaignSpec` names the grid the paper's evaluation walks —
supply voltage x EMT x application x fault model x record x SoC
configuration — as a set of *named axes* whose Cartesian product, minus
any filtered combinations, is the campaign's point set.  Each
:class:`CampaignPoint` carries every parameter its evaluator needs and
derives a stable content hash from them, which is what the result store
keys cached results by: re-running a campaign whose points already have
stored results executes nothing.

Axis values must be JSON-serialisable (numbers, strings, booleans, or
nested lists/tuples/dicts of those) so points can cross process
boundaries and hash identically across runs and platforms.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

# Canonicalisation lives in the shared serde layer since the unified
# experiment API landed; it is re-exported here — its historical home —
# so campaign callers (and the calibration cache) keep importing it from
# this module.  The implementation is byte-identical: store keys and
# cache entries written before the move stay valid.
from ..api.serde import canonical_json, content_hash
from ..errors import CampaignError

__all__ = ["CampaignPoint", "CampaignSpec", "canonical_json", "content_hash"]


@dataclass(frozen=True)
class CampaignPoint:
    """One grid point of a campaign: an evaluator kind plus parameters.

    Attributes:
        kind: evaluator registry name (see
            :mod:`repro.campaign.evaluators`).
        coords: this point's axis values, keyed by axis name.
        fixed: parameters shared by every point of the campaign.
    """

    kind: str
    coords: Mapping[str, Any]
    fixed: Mapping[str, Any]

    @property
    def params(self) -> dict[str, Any]:
        """Merged evaluator parameters (axis coordinates override fixed)."""
        return {**self.fixed, **self.coords}

    def content_hash(self) -> str:
        """Stable identity of this point's full configuration.

        Two points hash equally iff their kind and merged parameters are
        equal, regardless of which parameters were axes and which were
        fixed — so reshaping a spec does not invalidate stored results.
        """
        return content_hash({"kind": self.kind, "params": self.params})


@dataclass(frozen=True)
class CampaignSpec:
    """A named parameter grid plus the evaluator that scores each point.

    Attributes:
        name: campaign identity; the result store file is named after it.
        kind: evaluator kind applied to every point.
        axes: ordered mapping of axis name to the values it sweeps; the
            point set is the Cartesian product in axis-declaration order.
        fixed: parameters shared by all points (e.g. records, run counts,
            a serialised technology node).
        filters: predicates over a point's ``coords``; a combination is
            kept only if every filter returns true.  Filters run at
            expansion time in the parent process, so they may be
            arbitrary (non-serialisable) callables.
    """

    name: str
    kind: str
    axes: Mapping[str, tuple]
    fixed: Mapping[str, Any] = field(default_factory=dict)
    filters: tuple[Callable[[Mapping[str, Any]], bool], ...] = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise CampaignError(
                f"campaign name must be a non-empty path-safe string, "
                f"got {self.name!r}"
            )
        if not self.kind:
            raise CampaignError("campaign kind must be non-empty")
        if not self.axes:
            raise CampaignError("a campaign needs at least one axis")
        for axis, values in self.axes.items():
            if not tuple(values):
                raise CampaignError(f"axis {axis!r} has no values")
            if axis in self.fixed:
                raise CampaignError(
                    f"axis {axis!r} collides with a fixed parameter"
                )

    @property
    def grid_size(self) -> int:
        """Number of points before filtering."""
        size = 1
        for values in self.axes.values():
            size *= len(tuple(values))
        return size

    def expand(self) -> list[CampaignPoint]:
        """Materialise the filtered point set, in axis-product order."""
        names = list(self.axes)
        points = []
        for combo in itertools.product(*(self.axes[n] for n in names)):
            coords = dict(zip(names, combo))
            if all(keep(coords) for keep in self.filters):
                points.append(
                    CampaignPoint(
                        kind=self.kind, coords=coords, fixed=dict(self.fixed)
                    )
                )
        return points
