"""Campaign engine benchmarks: parallel speedup, resume, store overhead.

Measures the subsystem the scaling roadmap builds on:

* wall-clock of one Fig 4-shaped Monte-Carlo campaign executed serially
  vs across a worker pool (the speedup table is written to the report
  sink), asserting result equivalence along the way;
* resume cost: a second run against a populated store must execute zero
  points and be store-I/O-bound.

Scale knobs: ``REPRO_RUNS``, ``REPRO_BENCH_RECORDS``,
``REPRO_BENCH_DURATION`` (see ``conftest.py``) and
``REPRO_BENCH_WORKERS`` (default 4) for the pool width.
"""

from __future__ import annotations

import os
import time

from repro.campaign import ResultStore, run_campaign
from repro.exp.common import ExperimentConfig
from repro.exp.fig4 import fig4_spec

VOLTAGES = (0.5, 0.6, 0.7, 0.8, 0.9)
APP_NAMES = ("dwt", "morphology", "delineation")


def bench_workers(default: int = 4) -> int:
    """Worker-pool width for the parallel leg."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", default))


def _spec(config: ExperimentConfig):
    return fig4_spec(
        app_names=APP_NAMES,
        voltages=VOLTAGES,
        config=config,
        name="bench-campaign",
    )


def test_campaign_parallel_speedup(benchmark, report_sink, bench_config):
    config = bench_config
    n_workers = bench_workers()

    started = time.perf_counter()
    serial = run_campaign(_spec(config))
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_campaign(_spec(config), n_workers=n_workers),
        rounds=1,
        iterations=1,
    )
    parallel_s = time.perf_counter() - started

    # The pool must not change a single number.
    assert [r["result"] for r in serial.records] == [
        r["result"] for r in parallel.records
    ]
    assert serial.n_executed == parallel.n_executed == len(VOLTAGES) * len(
        APP_NAMES
    )

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    report_sink.add(
        "campaign_speedup",
        "Campaign engine — parallel speedup "
        f"({len(serial.records)} Monte-Carlo points)\n"
        f"{'configuration':>16s}  {'wall s':>8s}  {'speedup':>8s}\n"
        f"{'-' * 16}  {'-' * 8}  {'-' * 8}\n"
        f"{'serial':>16s}  {serial_s:8.2f}  {1.0:8.2f}\n"
        f"{f'{n_workers} workers':>16s}  {parallel_s:8.2f}  {speedup:8.2f}",
    )


def test_campaign_resume_executes_nothing(benchmark, tmp_path, bench_config):
    config = ExperimentConfig(
        records=bench_config.records[:1], duration_s=4.0, n_runs=2
    )
    store = ResultStore(tmp_path / "bench-campaign.jsonl")
    first = run_campaign(_spec(config), store=store)
    assert first.n_executed == len(first.records)

    resumed = benchmark.pedantic(
        lambda: run_campaign(_spec(config), store=store),
        rounds=1,
        iterations=1,
    )
    assert resumed.n_executed == 0
    assert resumed.n_cached == len(first.records)
    assert [r["result"] for r in resumed.records] == [
        r["result"] for r in first.records
    ]
