"""Common protocol of the biomedical applications.

An application is a pure function from 16-bit samples to an integer
output buffer, *except* that every buffer it materialises along the way
round-trips through a :class:`~repro.mem.fabric.MemoryFabric` — the
voltage-scaled data memory.  Running the same app against a defect-free
fabric yields the "theoretical" output of the paper's Formula 1; running
it against a faulty fabric yields the "experimental" output, and
:meth:`BiomedicalApp.output_snr` compares the two.

Applications whose natural quality reference is not their own clean
output (compressed sensing measures quality on the *reconstructed*
signal) override :meth:`output_snr`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..emt.base import NoProtection
from ..errors import SignalError
from ..fixedpoint import Q15
from ..mem.fabric import MemoryFabric
from ..signals.metrics import SNR_CAP_DB, snr_db

__all__ = ["BiomedicalApp", "clean_fabric"]


def clean_fabric() -> MemoryFabric:
    """A defect-free, unprotected fabric for theoretical runs."""
    return MemoryFabric(NoProtection())


class BiomedicalApp(ABC):
    """Base class of the paper's case-study applications.

    Subclasses set :attr:`name` (registry key) and implement :meth:`run`.
    They must be *deterministic* given their constructor arguments: the
    experiment harness relies on a clean run and a faulty run computing
    the same thing apart from memory corruption.
    """

    #: Registry key; overridden by subclasses.
    name: str = "abstract"

    #: Human-readable summary for reports.
    description: str = ""

    def __init__(self) -> None:
        self._reference_cache: dict[bytes, np.ndarray] = {}

    # -- core ----------------------------------------------------------------

    @abstractmethod
    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        """Process ``samples`` with all buffers living in ``fabric``.

        Args:
            samples: signed 16-bit ECG samples (raw integers).
            fabric: the (possibly faulty) data-memory fabric.

        Returns:
            The application's output buffer as signed ``int64`` values.
        """

    def _check_samples(self, samples: np.ndarray) -> np.ndarray:
        arr = np.asarray(samples, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise SignalError("samples must be a non-empty 1-D array")
        if int(arr.min()) < Q15.min_int or int(arr.max()) > Q15.max_int:
            raise SignalError("samples must be 16-bit signed values")
        return arr

    # -- quality evaluation ----------------------------------------------------

    def reference_output(self, samples: np.ndarray) -> np.ndarray:
        """The error-free ("theoretical") output for ``samples``, cached."""
        arr = self._check_samples(samples)
        key = arr.tobytes()
        if key not in self._reference_cache:
            self._reference_cache[key] = self.run(arr, clean_fabric())
        return self._reference_cache[key]

    def output_snr(
        self,
        samples: np.ndarray,
        corrupted_output: np.ndarray,
        cap_db: float = SNR_CAP_DB,
    ) -> float:
        """Formula 1 SNR of a corrupted output against the clean one."""
        reference = self.reference_output(samples)
        return snr_db(reference, corrupted_output, cap_db=cap_db)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
