"""Adaptive-runtime benchmarks: mission-simulation throughput.

Measures what makes long missions tractable: after the one-off
calibration pass (real fault-injection runs per segment x operating
point), the streaming loop must push a 24 h mission's windows at
interactive rates for every shipped policy.

The table reports windows/second of the *streaming* phase (calibration
warmed up beforehand, as in any repeated exploration) plus each policy's
headline mission metrics, and lands in
``results/runtime_throughput.txt``.

Scale knobs: ``REPRO_MISSION_SCENARIO`` (default ``active_day``) and
``REPRO_MISSION_SCALE`` (default 1.0 — the full 24 h timeline).
"""

from __future__ import annotations

import os
import time

from repro.runtime import MissionSimulator, make_policy, scenario_spec
from repro.runtime.policy import StaticPolicy

POLICY_TOKENS = ("static", "quality", "soc", "hysteresis")


def bench_scenario() -> str:
    return os.environ.get("REPRO_MISSION_SCENARIO", "active_day")


def bench_scale() -> float:
    return float(os.environ.get("REPRO_MISSION_SCALE", "1.0"))


def _policies():
    return [
        StaticPolicy() if name == "static" else make_policy(name)
        for name in POLICY_TOKENS
    ]


def test_mission_streaming_throughput(benchmark, report_sink):
    spec = scenario_spec(bench_scenario())
    if bench_scale() != 1.0:
        spec = spec.scaled(bench_scale())
    simulator = MissionSimulator(spec)

    # Warm the calibration caches: every policy's first run pays for the
    # probe runs its trajectory needs; the measured passes then isolate
    # the streaming loop.
    for policy in _policies():
        simulator.run(policy)

    rows = []
    for name, policy in zip(POLICY_TOKENS, _policies()):
        if name == "hysteresis":
            result = benchmark.pedantic(
                lambda p=policy: simulator.run(p), rounds=1, iterations=1
            )
            elapsed = benchmark.stats.stats.mean
        else:
            started = time.perf_counter()
            result = simulator.run(policy)
            elapsed = time.perf_counter() - started
        rows.append((result, result.n_processed / elapsed))

    hours = spec.total_duration_s / 3600.0
    lines = [
        f"Adaptive runtime — streaming throughput, scenario "
        f"{spec.name!r} ({hours:.1f} h, {spec.n_windows} windows of "
        f"{spec.window_s:g} s)",
        f"{'policy':>22s}  {'windows/s':>10s}  {'lifetime':>9s}  "
        f"{'mean dB':>8s}  {'worst dB':>8s}  {'switches':>8s}",
        f"{'-' * 22}  {'-' * 10}  {'-' * 9}  {'-' * 8}  {'-' * 8}  "
        f"{'-' * 8}",
    ]
    for result, rate in rows:
        lines.append(
            f"{result.policy_name:>22s}  {rate:10.0f}  "
            f"{result.lifetime_days:7.2f} d  {result.mean_snr_db:8.1f}  "
            f"{result.worst_snr_db:8.1f}  {result.n_switches:8d}"
        )
    report_sink.add("runtime_throughput", "\n".join(lines))

    # A 24 h mission must stream at interactive rates for every policy.
    assert all(rate > 1_000 for _, rate in rows)
