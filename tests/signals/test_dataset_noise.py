"""Tests for the record catalog and the noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SignalError
from repro.signals import default_catalog, load_record
from repro.signals.dataset import CATALOG, MITBIH_FS_HZ
from repro.signals.noise import (
    baseline_wander,
    compose_noise,
    emg_noise,
    mains_interference,
)


class TestCatalog:
    def test_catalog_has_pathology_diversity(self):
        """Section III averages over different pathologies."""
        base_labels = {spec.rhythm.base_label for spec in CATALOG.values()}
        assert {"N", "L", "R", "/"} <= base_labels
        assert len(default_catalog()) >= 8

    def test_load_record_deterministic(self):
        a = load_record("106", duration_s=4.0)
        b = load_record("106", duration_s=4.0)
        assert np.array_equal(a.samples, b.samples)
        assert a.labels == b.labels

    def test_records_differ(self):
        a = load_record("100", duration_s=4.0)
        b = load_record("200", duration_s=4.0)
        assert not np.array_equal(a.samples, b.samples)

    def test_sample_properties(self, record_100):
        assert record_100.fs_hz == MITBIH_FS_HZ
        assert record_100.samples.dtype == np.int64
        assert int(record_100.samples.max()) <= 32767
        assert int(record_100.samples.min()) >= -32768
        assert record_100.duration_s == pytest.approx(5.0, abs=0.01)

    def test_annotations_are_consistent(self, record_106):
        assert len(record_106.labels) == len(record_106.r_samples)
        assert np.all(np.diff(record_106.r_samples) > 0)
        assert np.all(record_106.r_samples < len(record_106.samples))

    def test_pvc_record_contains_pvcs(self):
        record = load_record("106", duration_s=30.0)
        assert record.labels.count("V") >= 2

    def test_paced_record_label(self):
        record = load_record("107", duration_s=10.0)
        assert "/" in record.labels

    def test_unknown_record(self):
        with pytest.raises(SignalError):
            load_record("999")

    def test_bad_duration(self):
        with pytest.raises(SignalError):
            load_record("100", duration_s=0)

    def test_samples_have_long_sign_runs(self, record_100):
        """The DREAM premise: ADC headroom leaves constant MSBs."""
        from repro._bitops import sign_run_length

        runs = sign_run_length(record_100.samples, 16)
        assert float(runs.mean()) > 5.0

    def test_signal_is_roughly_zero_centred(self, record_100):
        """Section IV: biomedical values distribute around zero."""
        mean = float(record_100.samples.mean())
        peak = float(np.abs(record_100.samples).max())
        assert abs(mean) < 0.1 * peak


class TestNoise:
    def test_baseline_wander_is_low_frequency(self, rng):
        fs = 360.0
        wander = baseline_wander(7200, fs, 0.2, rng)
        spectrum = np.abs(np.fft.rfft(wander))
        freqs = np.fft.rfftfreq(7200, 1 / fs)
        power_below = float((spectrum[freqs <= 0.7] ** 2).sum())
        total = float((spectrum**2).sum())
        assert power_below / total > 0.95

    def test_baseline_wander_amplitude(self, rng):
        wander = baseline_wander(3600, 360.0, 0.25, rng)
        assert np.abs(wander).max() == pytest.approx(0.25, rel=1e-6)

    def test_mains_is_narrowband_at_mains_freq(self, rng):
        fs = 360.0
        mains = mains_interference(7200, fs, 0.05, rng, mains_hz=50.0)
        spectrum = np.abs(np.fft.rfft(mains))
        freqs = np.fft.rfftfreq(7200, 1 / fs)
        peak_freq = freqs[int(np.argmax(spectrum))]
        assert abs(peak_freq - 50.0) < 1.0

    def test_emg_rms(self, rng):
        noise = emg_noise(20000, 360.0, 0.03, rng)
        assert float(np.sqrt(np.mean(noise**2))) == pytest.approx(
            0.03, rel=0.02
        )

    def test_emg_rejects_bad_smoothing(self, rng):
        with pytest.raises(SignalError):
            emg_noise(100, 360.0, 0.01, rng, smoothing=0)

    def test_compose_zero_levels_is_silent(self, rng):
        total = compose_noise(100, 360.0, rng)
        assert np.all(total == 0)

    def test_compose_sums_components(self, rng):
        total = compose_noise(
            3600, 360.0, rng, wander_mv=0.1, mains_mv=0.02, emg_rms_mv=0.01
        )
        assert total.shape == (3600,)
        assert float(np.abs(total).max()) > 0.05

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(SignalError):
            baseline_wander(0, 360.0, 0.1, rng)
        with pytest.raises(SignalError):
            compose_noise(10, -1.0, rng)
