"""Setup shim enabling editable installs in offline environments.

The modern PEP 660 editable path requires the ``wheel`` package, which is
not available in this offline environment; ``setup.py develop`` is not
subject to that requirement.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
