"""Gate-equivalent models of the EMT encoder/decoder logic.

The paper sizes DREAM's and ECC's codec hardware from Synopsys Design
Compiler synthesis reports and states the outcome as ratios: "ECC requires
28 % of area overhead for the encoder and 120 % for the decoder, compared
to those of DREAM" (Section VI-B).  This module models each block as a
gate-equivalent (GE) count with per-GE switching energy and leakage; the
GE budgets below are first-principles estimates of the block structures
that land exactly on the paper's reported ratios:

* **DREAM encoder** (~60 GE): a 16-bit leading-run priority encoder
  (15 XNOR stages against the sign plus a thermometer-to-binary tree).
* **DREAM decoder** (~90 GE): the Fig 3 read path — a 16-entry mask LUT
  (4-to-16 decode plus mask OR-plane), 16 AND gates, 16 OR gates, the
  *Set one bit* inverter and a 16-bit 2-to-1 output multiplexer.
* **ECC encoder** (~77 GE = 1.28 x DREAM's): five parity trees over the
  16 data bits plus the overall-parity tree of the (22,16) code.
* **ECC decoder** (~198 GE = 2.2 x DREAM's): syndrome regeneration over
  22 bits, the 5-to-22 error-position decoder, 22 correction XORs and the
  double-error-detect logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EnergyModelError
from .technology import Technology

__all__ = [
    "LogicCalibration",
    "LOGIC_CALIB_32NM_LP",
    "LogicBlockModel",
    "GE_BUDGETS",
    "logic_blocks_for",
]


@dataclass(frozen=True)
class LogicCalibration:
    """Per-node constants for synthesised logic (values at nominal V)."""

    #: Switching energy per gate equivalent and activation, femtojoules.
    e_ge_fj: float = 3.4
    #: Leakage power per gate equivalent, picowatts.
    p_ge_leak_pw: float = 4.0
    #: Area per gate equivalent, square micrometres.
    area_ge_um2: float = 0.8


#: Calibration for the 32 nm low-power node.
LOGIC_CALIB_32NM_LP = LogicCalibration()


#: Gate-equivalent budgets per EMT: ``(encoder GE, decoder GE)``.
#: Chosen so the area ratios match the paper's synthesis results:
#: 77/60 = 1.28 (encoder, +28 %) and 198/90 = 2.2 (decoder, +120 %).
GE_BUDGETS: dict[str, tuple[int, int]] = {
    "none": (0, 0),
    "parity": (21, 23),
    "dream": (60, 90),
    "secded": (77, 198),
    # The conclusion's multi-error extension: both codecs in series.
    "dream_secded": (60 + 77, 90 + 198),
}


@dataclass(frozen=True)
class LogicBlockModel:
    """One synthesised block (an encoder or a decoder).

    Attributes:
        name: block label (for reports).
        gate_equivalents: synthesis-calibrated GE count.
        tech: technology node for voltage scaling.
        calibration: per-node logic constants.
    """

    name: str
    gate_equivalents: int
    tech: Technology
    calibration: LogicCalibration = LOGIC_CALIB_32NM_LP

    def __post_init__(self) -> None:
        if self.gate_equivalents < 0:
            raise EnergyModelError(
                f"gate count must be non-negative, got {self.gate_equivalents}"
            )

    def energy_per_op_pj(self, voltage: float) -> float:
        """Switching energy of one encode/decode operation, picojoules."""
        scale = self.tech.dynamic_scale(voltage)
        return self.gate_equivalents * self.calibration.e_ge_fj * scale / 1000.0

    def leakage_power_uw(self, voltage: float) -> float:
        """Block leakage power, microwatts."""
        scale = self.tech.leakage_scale(voltage)
        return (
            self.gate_equivalents * self.calibration.p_ge_leak_pw * scale / 1e6
        )

    def area_um2(self) -> float:
        """Block area in square micrometres."""
        return self.gate_equivalents * self.calibration.area_ge_um2


def logic_blocks_for(
    emt_name: str,
    tech: Technology,
    calibration: LogicCalibration = LOGIC_CALIB_32NM_LP,
) -> tuple[LogicBlockModel, LogicBlockModel]:
    """The ``(encoder, decoder)`` models for a registry EMT name."""
    if emt_name not in GE_BUDGETS:
        raise EnergyModelError(
            f"no gate budget for EMT {emt_name!r}; known: {sorted(GE_BUDGETS)}"
        )
    enc_ge, dec_ge = GE_BUDGETS[emt_name]
    return (
        LogicBlockModel(f"{emt_name}-encoder", enc_ge, tech, calibration),
        LogicBlockModel(f"{emt_name}-decoder", dec_ge, tech, calibration),
    )
