"""Closed-loop mission simulation: policy -> memory -> battery -> policy.

:class:`MissionSimulator` runs a :class:`~repro.runtime.mission.MissionSpec`
under an operating-point policy.  A naive implementation would run the
full fault-injection pipeline for every window — hours of wall-clock for
a 24 h mission.  Instead the simulator factors the loop into

* a **calibration layer** (cached per process): for each distinct
  ``(app, segment signature, operating point)`` the real pipeline runs —
  segment trace synthesised by :mod:`repro.signals`, stuck-at fault maps
  drawn at the segment's effective BER, application executed against the
  faulty fabric — yielding a quality model (mean/std SNR).  Since the
  trial-batched pipeline landed, :class:`BatchCalibrator` runs all
  ``n_probe`` Monte-Carlo probes of one model as a single stacked
  ``(n_probe, n_words)`` pass (bit-identical to the historical probe
  loop, so cached models never shift).  Energy per window is likewise
  priced once per operating point with the Section VI-B accounting
  model, with leakage integrated over the whole window;
* a **streaming layer**: each of the mission's thousands of windows then
  costs one policy decision, one truncated-Gaussian quality draw from
  the calibrated model, and one battery withdrawal.

Both layers are deterministic: calibration seeds derive from the
configuration's content (CRC-32, like the campaign grid seeds), the
streaming draws from the mission seed — so the same mission under the
same policy always produces the same :class:`MissionResult`, regardless
of which process ran it or what was cached.

Calibrations are cached at two levels: a per-process ``lru_cache`` memo
for the hot path, backed by the shared on-disk
:class:`~repro.cache.DiskCache` so repeated ``repro mission`` runs — and
every worker of a :class:`~repro.cohort.FleetSimulator` fleet — compute
each (segment signature, operating point) model exactly once machine-wide
(``REPRO_CACHE_DIR`` moves the cache, ``REPRO_CACHE_DISABLE=1`` turns
the disk layer off).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import replace
from functools import lru_cache
from typing import Any

import numpy as np

from .. import obs
from ..cache import shared_cache
from ..emt import make_emt
from ..energy.accounting import EnergySystemModel
from ..energy.battery import BatteryState
from ..energy.technology import TECH_32NM_LP, Technology
from ..errors import MissionError
from ..exp.common import validate_registry_names
from ..mem.fabric import MemoryFabric
from ..mem.faults import sample_fault_map, sample_fault_map_batch
from ..signals.dataset import CATALOG, synthesize_record
from ..signals.metrics import SNR_CAP_DB
from .mission import MissionResult, MissionSpec, SegmentSpec
from .policy import LadderPoint, Observation, Policy, PolicyContext

__all__ = ["BatchCalibrator", "MissionSimulator", "calibration_cache_info"]

#: Fault maps are Bernoulli per bit; past ~0.4 the array is noise and the
#: calibration result saturates, so effective BERs clamp there.
_MAX_BER = 0.4

#: Seed domain of the calibration layer (disjoint from mission seeds so
#: calibrations are shared by every mission that needs the same model).
_CALIBRATION_SEED = 20160131

#: Quality draws are truncated at +/-2.5 sigma: the calibration std comes
#: from a handful of probes, and an unbounded tail would let a single
#: synthetic outlier dominate a mission's worst-window statistic.
_TRUNCATE_SIGMA = 2.5


# Per-process application instances (their reference-output caches make
# repeated calibration against the same probe trace cheap); shared with
# every other driver through the registry-level memo.
from ..apps.registry import cached_app as _cached_app  # noqa: E402


@lru_cache(maxsize=64)
def _probe_samples(
    record: str, noise_gain: float, duration_s: float
) -> np.ndarray:
    """Synthesise a segment's probe trace (noise-scaled catalog record)."""
    if record not in CATALOG:
        raise MissionError(
            f"unknown segment record {record!r}; "
            f"available: {sorted(CATALOG)}"
        )
    base = CATALOG[record]
    spec = replace(
        base,
        wander_mv=base.wander_mv * noise_gain,
        mains_mv=base.mains_mv * noise_gain,
        emg_rms_mv=base.emg_rms_mv * noise_gain,
    )
    samples = synthesize_record(spec, duration_s=duration_s).samples
    samples.setflags(write=False)
    return samples


@lru_cache(maxsize=4096)
def _calibrated_quality(
    app_name: str,
    record: str,
    noise_gain: float,
    emt_name: str,
    ber: float,
    n_probe: int,
    probe_duration_s: float,
    snr_cap_db: float,
) -> tuple[float, float]:
    """Quality model of one (segment signature, operating point) pair.

    The ``lru_cache`` is the per-process memory layer; behind it the
    shared disk cache (:func:`repro.cache.shared_cache`) makes the
    underlying fault-injection run (:func:`_probe_quality`) a
    once-per-machine event, shared by every mission, fleet worker and
    CLI invocation that needs the same model.
    """
    payload = {
        "kind": "mission-quality",
        "v": 1,
        "app": app_name,
        "record": record,
        "noise_gain": noise_gain,
        "emt": emt_name,
        "ber": ber,
        "n_probe": n_probe,
        "probe_duration_s": probe_duration_s,
        "snr_cap_db": snr_cap_db,
    }
    mean, std = shared_cache().get_or_compute(
        payload,
        lambda: list(
            _probe_quality(
                app_name, record, noise_gain, emt_name, ber,
                n_probe, probe_duration_s, snr_cap_db,
            )
        ),
    )
    return float(mean), float(std)


#: Words of the calibration probe array (the paper's 32 kB geometry).
_PROBE_WORDS = 16384


class BatchCalibrator:
    """Trial-batched calibration of one (segment, operating-point) model.

    Replaces the historical per-probe Python loop: all ``n_probe``
    stuck-at fault maps are drawn as one stacked batch (consuming the
    calibration RNG stream in the exact per-probe order) and the whole
    Monte-Carlo batch flows through EMT encode -> faulty SRAM -> decode
    as 2-D ``(n_probe, n_words)`` arrays, one vectorised pass per
    pipeline stage.  The (mean, std) it returns is bit-identical to the
    sequential loop (property-tested), so disk-cache entries written by
    either implementation are interchangeable — and the cache *keys*
    never see the implementation at all.

    Args:
        n_probe: fault-injection probes per quality model.
        probe_duration_s: seconds of segment signal per probe.
        snr_cap_db: SNR ceiling for bit-exact windows.

    Example:
        >>> cal = BatchCalibrator(n_probe=2, probe_duration_s=2.0)
        >>> mean, std = cal.calibrate("dwt", "100", 1.0, "none", 0.0)
        >>> (mean, std) == (96.0, 0.0)
        True
    """

    def __init__(
        self,
        n_probe: int = 3,
        probe_duration_s: float = 4.0,
        snr_cap_db: float = SNR_CAP_DB,
    ) -> None:
        if n_probe < 1:
            raise MissionError(f"n_probe must be >= 1, got {n_probe}")
        if probe_duration_s <= 0:
            raise MissionError(
                f"probe duration must be positive, got {probe_duration_s}"
            )
        self.n_probe = n_probe
        self.probe_duration_s = probe_duration_s
        self.snr_cap_db = snr_cap_db

    def calibrate(
        self,
        app_name: str,
        record: str,
        noise_gain: float,
        emt_name: str,
        ber: float,
    ) -> tuple[float, float]:
        """(mean, std) window SNR of one (segment, operating point)."""
        samples = _probe_samples(record, noise_gain, self.probe_duration_s)
        app = _cached_app(app_name)
        emt = make_emt(emt_name)
        key = f"{app_name}:{record}:{noise_gain!r}:{emt_name}:{ber!r}"
        rng = np.random.default_rng(
            (_CALIBRATION_SEED, zlib.crc32(key.encode()))
        )
        fault_map = sample_fault_map_batch(
            self.n_probe, _PROBE_WORDS, emt.stored_bits,
            min(ber, _MAX_BER), rng,
        )
        fabric = MemoryFabric(
            emt, fault_map=fault_map, collect_decode_stats=False
        )
        outputs = app.run_batch(samples, fabric)
        snrs = app.output_snr_batch(samples, outputs, cap_db=self.snr_cap_db)
        return float(snrs.mean()), float(snrs.std())

    def calibrate_sequential(
        self,
        app_name: str,
        record: str,
        noise_gain: float,
        emt_name: str,
        ber: float,
    ) -> tuple[float, float]:
        """The historical probe-by-probe loop, kept as the executable
        reference the property suite pins :meth:`calibrate` against."""
        samples = _probe_samples(record, noise_gain, self.probe_duration_s)
        app = _cached_app(app_name)
        emt = make_emt(emt_name)
        key = f"{app_name}:{record}:{noise_gain!r}:{emt_name}:{ber!r}"
        rng = np.random.default_rng(
            (_CALIBRATION_SEED, zlib.crc32(key.encode()))
        )
        snrs = []
        for _ in range(self.n_probe):
            fault_map = sample_fault_map(
                _PROBE_WORDS, emt.stored_bits, min(ber, _MAX_BER), rng
            )
            fabric = MemoryFabric(
                emt, fault_map=fault_map, collect_decode_stats=False
            )
            output = app.run(samples, fabric)
            snrs.append(app.output_snr(samples, output, cap_db=self.snr_cap_db))
        arr = np.asarray(snrs)
        return float(arr.mean()), float(arr.std())


def _probe_quality(
    app_name: str,
    record: str,
    noise_gain: float,
    emt_name: str,
    ber: float,
    n_probe: int,
    probe_duration_s: float,
    snr_cap_db: float,
) -> tuple[float, float]:
    """The real calibration work behind :func:`_calibrated_quality`.

    Runs the paper's Section V fault-injection protocol — fresh fault
    map per probe — as one :class:`BatchCalibrator` batch and returns
    the (mean, std) window SNR.  Keyed by the *effective* BER, so
    segments whose stress lands two lattice voltages on the same BER
    share one calibration.
    """
    calibrator = BatchCalibrator(
        n_probe=n_probe,
        probe_duration_s=probe_duration_s,
        snr_cap_db=snr_cap_db,
    )
    # This only runs on a full cache miss, so the span marks exactly
    # the expensive fault-injection work a trace should surface.
    with obs.span(
        "calibrate", app=app_name, record=record, emt=emt_name,
        ber=ber, n_probe=n_probe,
    ):
        return calibrator.calibrate(
            app_name, record, noise_gain, emt_name, ber
        )


@lru_cache(maxsize=512)
def _window_energy_pj(
    app_name: str,
    emt_name: str,
    voltage: float,
    window_s: float,
    tech: Technology,
) -> float:
    """Memory-system energy of one window at one operating point.

    ``tech`` is a frozen (and therefore hashable) dataclass, so two
    nodes differing in any constant cache separately even if they share
    a name; its full serialised form is part of the disk-cache key for
    the same reason.
    """
    from ..campaign.evaluators import technology_to_dict

    payload = {
        "kind": "window-energy",
        "v": 1,
        "app": app_name,
        "emt": emt_name,
        "voltage": voltage,
        "window_s": window_s,
        "tech": technology_to_dict(tech),
    }
    return float(
        shared_cache().get_or_compute(
            payload,
            lambda: _price_window(app_name, emt_name, voltage, window_s, tech),
        )
    )


def _price_window(
    app_name: str,
    emt_name: str,
    voltage: float,
    window_s: float,
    tech: Technology,
) -> float:
    """The real pricing work behind :func:`_window_energy_pj`.

    The access counts come from a measured run of the application on one
    window's worth of signal; leakage integrates over the *full* window
    (the array retains state between bursts), so energy keeps its supply
    dependence even for sparse workloads.
    """
    from ..campaign.evaluators import measured_workload

    with obs.span(
        "price_window", app=app_name, emt=emt_name, voltage=voltage
    ):
        workload = replace(
            measured_workload(
                app_name=app_name, record="100", duration_s=window_s
            ),
            duration_s=window_s,
        )
        model = EnergySystemModel(make_emt(emt_name), tech=tech)
        return model.evaluate(voltage, workload).total_pj


def calibration_cache_info() -> dict[str, Any]:
    """Diagnostic view of the calibration caches.

    ``quality``/``energy``/``probes`` are the per-process memory memos;
    ``shared`` is the machine-wide disk layer both are backed by.
    """
    return {
        "quality": str(_calibrated_quality.cache_info()),
        "energy": str(_window_energy_pj.cache_info()),
        "probes": str(_probe_samples.cache_info()),
        "shared": shared_cache().info(),
    }


class MissionSimulator:
    """Run missions: one calibration pass, then streaming windows.

    Args:
        spec: the mission to simulate.
        tech: technology node (default: the paper's 32 nm LP node).
        n_probe: fault-injection probes per calibrated quality model.
        probe_duration_s: seconds of segment signal per probe run.
        snr_cap_db: SNR ceiling for bit-exact windows.
        keep_trace: attach per-window records to the result (memory
            scales with mission length; off by default).

    Example:
        >>> from repro.runtime import MissionSimulator, make_policy
        >>> from repro.runtime.scenarios import scenario_spec
        >>> sim = MissionSimulator(scenario_spec("overnight").scaled(0.02))
        >>> result = sim.run(make_policy("hysteresis"))
        >>> result.n_processed == result.n_windows
        True
    """

    def __init__(
        self,
        spec: MissionSpec,
        tech: Technology = TECH_32NM_LP,
        n_probe: int = 3,
        probe_duration_s: float = 4.0,
        snr_cap_db: float = SNR_CAP_DB,
        keep_trace: bool = False,
    ) -> None:
        if n_probe < 1:
            raise MissionError(f"n_probe must be >= 1, got {n_probe}")
        if probe_duration_s <= 0:
            raise MissionError(
                f"probe duration must be positive, got {probe_duration_s}"
            )
        validate_registry_names(
            app_names=(spec.app,), emt_names=tuple(spec.emts)
        )
        for voltage in spec.voltages:
            tech.check_voltage(voltage)
        for segment in spec.segments:
            if segment.record not in CATALOG:
                raise MissionError(
                    f"segment {segment.name!r} names unknown record "
                    f"{segment.record!r}; available: {sorted(CATALOG)}"
                )
        self.spec = spec
        self.tech = tech
        self.n_probe = n_probe
        self.probe_duration_s = probe_duration_s
        self.snr_cap_db = snr_cap_db
        self.keep_trace = keep_trace
        self._ladder = self._build_ladder()
        self._schedule = self._build_schedule()

    # -- construction ------------------------------------------------------

    def _build_ladder(self) -> tuple[LadderPoint, ...]:
        """The energy-sorted operating-point ladder of this mission."""
        spec = self.spec
        seen: dict[tuple[str, float], float] = {}
        for emt_name in spec.emts:
            for voltage in spec.voltages:
                seen.setdefault(
                    (emt_name, voltage),
                    _window_energy_pj(
                        spec.app, emt_name, voltage, spec.window_s,
                        self.tech,
                    ),
                )
        ordered = sorted(seen.items(), key=lambda item: item[1])
        return tuple(
            LadderPoint(
                index=i,
                emt_name=emt_name,
                voltage=voltage,
                energy_per_window_pj=energy,
            )
            for i, ((emt_name, voltage), energy) in enumerate(ordered)
        )

    def _build_schedule(self) -> tuple[SegmentSpec, ...]:
        """Active segment per window, resolved once up front."""
        spec = self.spec
        schedule = tuple(
            spec.segment_at(w * spec.window_s)
            for w in range(spec.n_windows)
        )
        # Hot-path companions: the stress vector feeds the batched hint
        # draw; the per-window segment ids key the per-run quality-model
        # memo without hashing SegmentSpec objects window by window.
        self._stress = np.asarray([seg.stress for seg in schedule])
        unique: dict[int, int] = {}
        self._segment_ids = tuple(
            unique.setdefault(id(seg), len(unique)) for seg in schedule
        )
        return schedule

    @property
    def ladder(self) -> tuple[LadderPoint, ...]:
        """The mission's operating-point ladder (cheapest rung first)."""
        return self._ladder

    def context(self) -> PolicyContext:
        """The :class:`PolicyContext` policies are reset with."""
        return PolicyContext(
            ladder=self._ladder,
            window_s=self.spec.window_s,
            quality_floor_db=self.spec.quality_floor_db,
            snr_cap_db=self.snr_cap_db,
        )

    # -- the loop ----------------------------------------------------------

    def _quality_model(
        self, segment: SegmentSpec, point: LadderPoint
    ) -> tuple[float, float]:
        """The calibrated (mean, std) SNR of one (segment, rung) pair."""
        ber = self.tech.ber(point.voltage) * segment.ber_multiplier
        return _calibrated_quality(
            self.spec.app,
            segment.record,
            segment.noise_gain,
            point.emt_name,
            min(ber, _MAX_BER),
            self.n_probe,
            self.probe_duration_s,
            self.snr_cap_db,
        )

    def _draw_quality(self, mean: float, std: float, z: float) -> float:
        """One truncated-Gaussian quality draw from a calibrated model."""
        quality = mean + std * float(
            np.clip(z, -_TRUNCATE_SIGMA, _TRUNCATE_SIGMA)
        )
        return min(quality, self.snr_cap_db)

    def _window_quality(
        self, segment: SegmentSpec, point: LadderPoint, z: float
    ) -> float:
        """One window's output quality at one operating point."""
        mean, std = self._quality_model(segment, point)
        return self._draw_quality(mean, std, z)

    def run(self, policy: Policy) -> MissionResult:
        """Simulate the full mission under ``policy``.

        The environment's random draws are seeded from the mission alone
        (not the policy), so every policy faces the *same* stress-hint
        and quality-noise streams — cross-policy comparisons are paired,
        and a dominance result reflects the controller, not draw luck.
        """
        with obs.span(
            "mission",
            mission=self.spec.name,
            policy=policy.describe(),
            windows=self.spec.n_windows,
        ):
            traced = obs.enabled()
            started = time.perf_counter() if traced else 0.0
            result = self._simulate(policy)
            if traced:
                elapsed = time.perf_counter() - started
                obs.counter("mission.windows", result.n_processed)
                obs.counter("mission.violations", result.n_violations)
                obs.counter("battery.steps", result.n_processed)
                obs.counter(
                    "mission.rng_draws", 2 * self.spec.n_windows
                )
                if elapsed > 0:
                    obs.gauge(
                        "mission.windows_per_s",
                        result.n_processed / elapsed,
                    )
            return result

    def _simulate(self, policy: Policy) -> MissionResult:
        """The streaming loop of :meth:`run` (under its mission span)."""
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        policy.reset(self.context())
        battery = BatteryState(spec.battery)
        top = len(self._ladder) - 1

        # The environment's draws are batched up front — two per window,
        # in the same order scalar calls would consume them, so results
        # are bit-identical to the window-by-window formulation at a
        # fraction of the RNG cost.  Window pricing is likewise resolved
        # to a per-rung vector once, and quality models to a per-run
        # memo keyed by (segment id, rung).
        draws = rng.standard_normal(2 * spec.n_windows)
        hints = np.clip(
            self._stress + draws[0::2] * spec.hint_noise, 0.0, 1.0
        )
        zs = draws[1::2]
        window_pj_by_rung = tuple(
            point.energy_per_window_pj
            + spec.platform_power_uw * spec.window_s * 1e6
            for point in self._ladder
        )
        models: dict[tuple[int, int], tuple[float, float]] = {}

        current = top  # boot on the most capable rung, like real firmware
        last_snr: float | None = None
        qualities: list[float] = []
        dwell = np.zeros(len(self._ladder), dtype=np.int64)
        trace: list[dict] = []
        n_switches = 0
        n_violations = 0
        energy_j = 0.0
        survived = True
        depleted_at_s = 0.0

        for w, segment in enumerate(self._schedule):
            time_s = w * spec.window_s
            hint = float(hints[w])
            z = zs[w]
            decision = int(
                policy.decide(
                    Observation(
                        window_index=w,
                        time_s=time_s,
                        soc=battery.state_of_charge,
                        last_snr_db=last_snr,
                        stress_hint=hint,
                        current_index=current,
                    )
                )
            )
            decision = max(0, min(top, decision))
            point = self._ladder[decision]
            window_pj = window_pj_by_rung[decision]
            # A window the cell cannot fully fund is never processed:
            # the node browns out at this window's start.
            if battery.remaining_j < window_pj * 1e-12:
                survived = False
                depleted_at_s = time_s
                break
            if w > 0 and decision != current:
                n_switches += 1
            current = decision
            dwell[current] += 1

            model_key = (self._segment_ids[w], decision)
            model = models.get(model_key)
            if model is None:
                model = self._quality_model(segment, point)
                models[model_key] = model
            quality = self._draw_quality(*model, z)
            qualities.append(quality)
            if quality < spec.quality_floor_db:
                n_violations += 1
            last_snr = quality

            energy_j += window_pj * 1e-12
            battery.drain(window_pj * 1e-12)
            if self.keep_trace:
                trace.append(
                    {
                        "window": w,
                        "time_s": time_s,
                        "segment": segment.name,
                        "op_point": point.label,
                        "snr_db": quality,
                        "soc": battery.state_of_charge,
                        "stress_hint": hint,
                    }
                )

        n_processed = len(qualities)
        if n_processed == 0:
            raise MissionError(
                f"battery of mission {spec.name!r} cannot fund a single "
                f"window at the policy's starting operating point"
            )
        processed_s = n_processed * spec.window_s
        average_power_w = energy_j / processed_s
        if survived:
            lifetime_s = spec.battery.usable_energy_j / average_power_w
        else:
            lifetime_s = depleted_at_s
        arr = np.asarray(qualities)
        return MissionResult(
            mission_name=spec.name,
            policy_name=policy.describe(),
            n_windows=spec.n_windows,
            n_processed=n_processed,
            survived=survived,
            lifetime_days=lifetime_s / 86_400.0,
            mean_snr_db=float(arr.mean()),
            worst_snr_db=float(arr.min()),
            p5_snr_db=float(np.percentile(arr, 5.0)),
            n_switches=n_switches,
            n_violations=n_violations,
            energy_mj=energy_j * 1e3,
            average_power_uw=average_power_w * 1e6,
            op_point_share={
                self._ladder[i].label: float(dwell[i]) / n_processed
                for i in range(len(self._ladder))
                if dwell[i]
            },
            trace=tuple(trace) if self.keep_trace else None,
        )
