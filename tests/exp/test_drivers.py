"""Tests for the experiment drivers (small, fast configurations).

The full paper-scale sweeps live in ``benchmarks/``; these tests verify
the drivers' mechanics and the *directional* claims on reduced grids.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exp import (
    ExperimentConfig,
    run_energy_analysis,
    run_fig2,
    run_fig4,
    run_tradeoff,
    overhead_table,
)
from repro.exp.common import default_runs, load_corpus, run_monte_carlo
from repro.exp.overheads import formula2_dream, formula2_secded
from repro.exp.tradeoff import paper_example_savings
from repro.emt import make_emt
from repro.errors import ExperimentError

FAST = ExperimentConfig(records=("100",), duration_s=4.0, n_runs=3)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(records=())
        with pytest.raises(ExperimentError):
            ExperimentConfig(duration_s=0)
        with pytest.raises(ExperimentError):
            ExperimentConfig(n_runs=0)

    def test_default_runs_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS", raising=False)
        assert default_runs() == 200  # the paper's count
        monkeypatch.setenv("REPRO_RUNS", "17")
        assert default_runs() == 17
        monkeypatch.setenv("REPRO_RUNS", "abc")
        with pytest.raises(ExperimentError):
            default_runs()
        monkeypatch.setenv("REPRO_RUNS", "0")
        with pytest.raises(ExperimentError):
            default_runs()

    def test_load_corpus(self):
        corpus = load_corpus(FAST)
        assert set(corpus) == {"100"}
        assert corpus["100"].size == int(4.0 * 360)


class TestMonteCarlo:
    def test_same_fault_locations_across_emts(self):
        """Section V fairness: run r shares defects across EMTs."""
        from repro.apps import make_app

        app = make_app("morphology")
        corpus = load_corpus(FAST)
        emts = {n: make_emt(n) for n in ("none", "dream", "secded")}
        a = run_monte_carlo(app, emts, 1e-3, FAST, corpus, grid_seed=5)
        b = run_monte_carlo(app, emts, 1e-3, FAST, corpus, grid_seed=5)
        for name in emts:
            assert a.snr_mean_db[name] == pytest.approx(b.snr_mean_db[name])

    def test_requires_emts(self):
        from repro.apps import make_app

        with pytest.raises(ExperimentError):
            run_monte_carlo(
                make_app("dwt"), {}, 1e-3, FAST, load_corpus(FAST), 0
            )


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(app_names=("dwt", "matrix_filter"), config=FAST)

    def test_structure(self, result):
        assert result.positions == list(range(16))
        assert set(result.snr_db) == {"dwt", "matrix_filter"}
        for app in result.snr_db.values():
            assert len(app[0]) == 16 and len(app[1]) == 16

    def test_msb_errors_hurt_more(self, result):
        """The headline of Fig 2: SNR decreases toward the MSBs."""
        for app in ("dwt", "matrix_filter"):
            for stuck in (0, 1):
                series = result.series(app, stuck)
                assert series[15] < series[0] - 30

    def test_matrix_filter_below_dwt(self, result):
        """Fig 2's gap: matmul spreads single errors everywhere."""
        dwt = result.series("dwt", 1)
        mat = result.series("matrix_filter", 1)
        mid = slice(4, 12)
        assert np.mean(mat[mid]) < np.mean(dwt[mid])

    def test_series_unknown_app(self, result):
        with pytest.raises(ExperimentError):
            result.series("fft", 0)


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(
            app_names=("morphology",),
            config=FAST,
            voltages=(0.5, 0.6, 0.7, 0.8, 0.9),
        )

    def test_structure(self, result):
        assert result.voltages == [0.5, 0.6, 0.7, 0.8, 0.9]
        point = result.points["morphology"][0.9]
        assert set(point.snr_mean_db) == {"none", "dream", "secded"}
        assert point.n_runs == 3

    def test_high_voltage_is_error_free(self, result):
        for emt in ("none", "dream", "secded"):
            assert result.points["morphology"][0.9].snr_mean_db[emt] == 96.0

    def test_snr_degrades_with_voltage(self, result):
        series = result.series("morphology", "none")
        assert series[0] < series[-1] - 40

    def test_protection_ordering_at_mid_voltage(self, result):
        """At 0.7 V (single-error regime): ECC >= DREAM > none —
        the Fig 4 mid-range ordering."""
        point = result.points["morphology"][0.7]
        assert (
            point.snr_mean_db["secded"]
            >= point.snr_mean_db["dream"]
            > point.snr_mean_db["none"]
        )

    def test_dream_beats_ecc_at_deep_scaling(self, result):
        """Below 0.55 V multi-bit errors defeat SEC/DED (Fig 4c)."""
        point = result.points["morphology"][0.5]
        assert point.snr_mean_db["dream"] > point.snr_mean_db["secded"]

    def test_min_voltage_meeting(self, result):
        v = result.min_voltage_meeting("morphology", "none", 95.0)
        assert v is not None and v >= 0.7
        assert result.min_voltage_meeting("morphology", "none", 1e9) is None

    def test_reproducible(self):
        kwargs = dict(
            app_names=("morphology",), config=FAST, voltages=(0.6,)
        )
        a = run_fig4(**kwargs)
        b = run_fig4(**kwargs)
        assert (
            a.points["morphology"][0.6].snr_mean_db
            == b.points["morphology"][0.6].snr_mean_db
        )


class TestEnergyAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self):
        return run_energy_analysis()

    def test_headline_overheads(self, analysis):
        assert analysis.mean_overhead("dream") == pytest.approx(0.34, abs=0.02)
        assert analysis.mean_overhead("secded") == pytest.approx(0.55, abs=0.02)

    def test_overhead_reduction_21_points(self, analysis):
        assert analysis.overhead_reduction_points() == pytest.approx(
            0.21, abs=0.02
        )

    def test_area_ratios(self, analysis):
        assert analysis.encoder_area_ratio == pytest.approx(1.28, abs=0.01)
        assert analysis.decoder_area_ratio == pytest.approx(2.20, abs=0.01)

    def test_requires_baseline(self):
        with pytest.raises(ExperimentError):
            run_energy_analysis(emt_names=("dream", "secded"))

    def test_energy_decreases_with_voltage(self, analysis):
        totals = [analysis.total_pj["none"][v] for v in analysis.voltages]
        assert all(a < b for a, b in zip(totals, totals[1:]))


class TestTradeoff:
    @pytest.fixture(scope="class")
    def fig4(self):
        cfg = ExperimentConfig(records=("100",), duration_s=4.0, n_runs=3)
        return run_fig4(
            app_names=("dwt",),
            config=cfg,
            voltages=(0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9),
        )

    def test_policy_structure(self, fig4):
        result = run_tradeoff(fig4, app_name="dwt", tolerance_db=30.0)
        assert result.operating_points
        # Stronger protection sustains equal-or-deeper voltage scaling.
        floors = {p.emt_name: p.v_min_safe for p in result.operating_points}
        assert floors["secded"] <= floors["dream"] <= floors["none"]
        for point in result.operating_points:
            assert 0.0 <= point.saving_vs_nominal < 1.0
        # Policy ranges tile downward from the nominal voltage.
        assert result.policy[0].v_max == pytest.approx(0.9)
        for a, b in zip(result.policy, result.policy[1:]):
            assert a.v_min == pytest.approx(b.v_max)

    def test_unknown_app(self, fig4):
        with pytest.raises(ExperimentError):
            run_tradeoff(fig4, app_name="fft")

    def test_negative_tolerance(self, fig4):
        with pytest.raises(ExperimentError):
            run_tradeoff(fig4, tolerance_db=-1.0)

    def test_paper_example_savings_match_shape(self):
        """Measured savings at the paper's illustrative points must
        reproduce the published ordering and rough magnitudes
        (12.7 % / 30.6 % / 39.5 %)."""
        points = paper_example_savings()
        by_name = {p.emt_name: p.saving_vs_nominal * 100 for p in points}
        assert 5 < by_name["none"] < 20
        assert 22 < by_name["dream"] < 40
        assert 30 < by_name["secded"] < 52
        assert by_name["none"] < by_name["dream"] < by_name["secded"]


class TestOverheads:
    def test_paper_values_for_16_bits(self):
        rows = {
            (r.emt_name, r.data_bits): r for r in overhead_table((16,))
        }
        assert rows[("dream", 16)].extra_bits == 5
        assert rows[("secded", 16)].extra_bits == 6
        assert rows[("dream", 16)].safe_bits == 5
        assert rows[("secded", 16)].faulty_bits == 6

    def test_formula2_matches_implementation(self):
        for bits in (8, 16, 32):
            rows = {r.emt_name: r for r in overhead_table((bits,))}
            assert rows["dream"].extra_bits == formula2_dream(bits)
            assert rows["secded"].extra_bits == formula2_secded(bits)

    def test_formula2_validation(self):
        with pytest.raises(ExperimentError):
            formula2_dream(12)
        with pytest.raises(ExperimentError):
            formula2_secded(0)
