"""Tests for the battery-lifetime model."""

from __future__ import annotations

import pytest

from repro.emt import DreamEMT, NoProtection, SecDedEMT
from repro.energy.accounting import Workload
from repro.energy.battery import BatteryModel, BatteryState, estimate_lifetime
from repro.errors import EnergyModelError

WORKLOAD = Workload(n_reads=200_000, n_writes=200_000, duration_s=5e-3)


class TestBatteryModel:
    def test_usable_energy(self):
        battery = BatteryModel(
            capacity_mah=100.0, cell_voltage=3.0, usable_fraction=1.0
        )
        # 100 mAh * 3.6 C/mAh * 3 V = 1080 J
        assert battery.usable_energy_j == pytest.approx(1080.0)

    def test_capacity_bounds(self):
        with pytest.raises(EnergyModelError, match="capacity"):
            BatteryModel(capacity_mah=0)
        with pytest.raises(EnergyModelError, match="capacity"):
            BatteryModel(capacity_mah=-10.0)
        # Micro-cell (uAh-class) capacities are legitimate.
        assert BatteryModel(capacity_mah=1e-4).usable_energy_j > 0

    def test_cell_voltage_bounds(self):
        with pytest.raises(EnergyModelError, match="cell voltage"):
            BatteryModel(cell_voltage=-1)
        with pytest.raises(EnergyModelError, match="cell voltage"):
            BatteryModel(cell_voltage=0.0)

    def test_usable_fraction_bounds(self):
        with pytest.raises(EnergyModelError, match="usable fraction"):
            BatteryModel(usable_fraction=1.5)
        with pytest.raises(EnergyModelError, match="usable fraction"):
            BatteryModel(usable_fraction=0.0)
        with pytest.raises(EnergyModelError, match="usable fraction"):
            BatteryModel(usable_fraction=-0.2)
        # The closed upper bound is included: an ideal cell is legal.
        full = BatteryModel(capacity_mah=1.0, usable_fraction=1.0)
        derated = BatteryModel(capacity_mah=1.0, usable_fraction=0.5)
        assert full.usable_energy_j == pytest.approx(
            2 * derated.usable_energy_j
        )


class TestBatteryState:
    def test_drain_tracks_state_of_charge(self):
        state = BatteryState(BatteryModel(capacity_mah=1.0))
        full = state.remaining_j
        assert state.state_of_charge == pytest.approx(1.0)
        assert state.drain(full / 4)
        assert state.state_of_charge == pytest.approx(0.75)
        assert state.remaining_j == pytest.approx(0.75 * full)
        assert not state.depleted

    def test_depletion_clamps_at_empty(self):
        state = BatteryState(BatteryModel(capacity_mah=1.0))
        assert not state.drain(state.remaining_j * 2)
        assert state.depleted
        assert state.remaining_j == 0.0
        assert state.state_of_charge == 0.0
        # Draining an empty cell stays empty, and stays reported dead.
        assert not state.drain(1.0)

    def test_exact_drain_depletes(self):
        state = BatteryState(BatteryModel(capacity_mah=1.0))
        assert not state.drain(state.remaining_j)
        assert state.depleted

    def test_negative_drain_rejected(self):
        state = BatteryState(BatteryModel(capacity_mah=1.0))
        with pytest.raises(EnergyModelError, match="non-negative"):
            state.drain(-1.0)

    def test_reset_restores_full_charge(self):
        state = BatteryState(BatteryModel(capacity_mah=1.0))
        state.drain(state.remaining_j)
        state.reset()
        assert state.state_of_charge == pytest.approx(1.0)
        assert not state.depleted


class TestLifetime:
    def test_bigger_battery_lasts_longer(self):
        small = BatteryModel(capacity_mah=100)
        large = BatteryModel(capacity_mah=600)
        emt = NoProtection()
        short = estimate_lifetime(emt, 0.9, small, WORKLOAD)
        long = estimate_lifetime(emt, 0.9, large, WORKLOAD)
        assert long.lifetime_days == pytest.approx(
            6 * short.lifetime_days, rel=1e-6
        )

    def test_voltage_scaling_extends_lifetime(self):
        battery = BatteryModel()
        emt = NoProtection()
        nominal = estimate_lifetime(emt, 0.9, battery, WORKLOAD)
        scaled = estimate_lifetime(emt, 0.6, battery, WORKLOAD)
        assert scaled.lifetime_days > nominal.lifetime_days

    def test_protection_ordering_at_fixed_voltage(self):
        """At the same voltage: none > DREAM > ECC lifetimes (energy
        overheads in reverse)."""
        battery = BatteryModel()
        days = {
            emt.name: estimate_lifetime(emt, 0.7, battery, WORKLOAD).lifetime_days
            for emt in (NoProtection(), DreamEMT(), SecDedEMT())
        }
        assert days["none"] > days["dream"] > days["secded"]

    def test_memory_power_scales_with_platform_share(self):
        battery = BatteryModel()
        heavy = estimate_lifetime(
            NoProtection(), 0.9, battery, WORKLOAD, platform_power_uw=100.0
        )
        light = estimate_lifetime(
            NoProtection(), 0.9, battery, WORKLOAD, platform_power_uw=1.0
        )
        assert light.lifetime_days > heavy.lifetime_days

    def test_validation(self):
        battery = BatteryModel()
        with pytest.raises(EnergyModelError):
            estimate_lifetime(
                NoProtection(), 0.9, battery, WORKLOAD,
                acquisition_window_s=0.0,
            )
        with pytest.raises(EnergyModelError):
            estimate_lifetime(
                NoProtection(), 0.9, battery, WORKLOAD,
                platform_power_uw=-1.0,
            )
