"""Tracing isolation: every obs test starts and ends untraced.

The tracer is process-global state exported through environment
variables (so worker processes can find the sink); tests must not leak
an active sink, a configured trace directory, or an armed profiler
into each other — or into the rest of the suite, which pins the
disabled fast path.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.obs.core import (
    ENV_DIR,
    ENV_FILE,
    ENV_FLAG,
    ENV_PARENT,
    ENV_RUN,
    ENV_TRACEMALLOC,
)
from repro.obs.profile import ENV_PROFILE, ENV_PROFILE_INTERVAL, stop_sampler

_TRACE_ENV = (
    ENV_FILE,
    ENV_RUN,
    ENV_PARENT,
    ENV_DIR,
    ENV_FLAG,
    ENV_TRACEMALLOC,
    ENV_PROFILE,
    ENV_PROFILE_INTERVAL,
)


def _reset() -> None:
    obs.disable()
    stop_sampler()
    for key in _TRACE_ENV:
        os.environ.pop(key, None)


@pytest.fixture(autouse=True)
def _untraced():
    _reset()
    yield
    _reset()
