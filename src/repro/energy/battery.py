"""Battery-lifetime estimation — the paper's motivating metric.

The introduction frames everything in terms of "longer battery
lifetimes"; this module closes the loop from the memory-system energy
model to days of operation for a wearable monitoring node.

Model: the node continuously acquires ECG and processes it in windows.
The *memory-system* energy of processing one second of signal comes from
the accounting model (access counts scaled to a one-second acquisition);
a platform overhead factor covers everything the paper holds constant
across EMTs (cores, radio, AFE), so *relative* lifetimes between EMT
configurations remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emt.base import EMT
from ..errors import EnergyModelError
from .accounting import EnergySystemModel, Workload
from .technology import TECH_32NM_LP, Technology

__all__ = [
    "BatteryModel",
    "BatteryState",
    "LifetimeEstimate",
    "estimate_lifetime",
]


@dataclass(frozen=True)
class BatteryModel:
    """An ideal primary cell.

    Attributes:
        capacity_mah: rated capacity in milliamp-hours.
        cell_voltage: terminal voltage in volts (3.0 V coin cell).
        usable_fraction: fraction of rated capacity available before the
            cut-off voltage (coin cells under pulsed load: ~0.8).
    """

    capacity_mah: float = 230.0
    cell_voltage: float = 3.0
    usable_fraction: float = 0.8

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise EnergyModelError(
                f"capacity must be positive, got {self.capacity_mah}"
            )
        if self.cell_voltage <= 0:
            raise EnergyModelError(
                f"cell voltage must be positive, got {self.cell_voltage}"
            )
        if not 0 < self.usable_fraction <= 1:
            raise EnergyModelError(
                f"usable fraction must be in (0, 1], got {self.usable_fraction}"
            )

    @property
    def usable_energy_j(self) -> float:
        """Extractable energy in joules."""
        return (
            self.capacity_mah * 3.6 * self.cell_voltage * self.usable_fraction
        )


class BatteryState:
    """Mutable discharge state of one :class:`BatteryModel` cell.

    The static model answers "how much energy does this cell hold"; the
    state tracks how much of it is left as a mission drains it window by
    window, which is what state-of-charge-aware runtime policies observe.

    Example:
        >>> state = BatteryState(BatteryModel(capacity_mah=1.0))
        >>> state.drain(state.remaining_j / 2)
        True
        >>> round(state.state_of_charge, 2)
        0.5
    """

    def __init__(self, model: BatteryModel) -> None:
        self.model = model
        self._remaining_j = model.usable_energy_j

    @property
    def remaining_j(self) -> float:
        """Extractable energy still in the cell, in joules."""
        return self._remaining_j

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of the usable capacity, in ``[0, 1]``."""
        return self._remaining_j / self.model.usable_energy_j

    @property
    def depleted(self) -> bool:
        """True once the usable capacity is exhausted."""
        return self._remaining_j <= 0.0

    def drain(self, energy_j: float) -> bool:
        """Withdraw ``energy_j`` joules; return False once depleted.

        The final withdrawal clamps at empty (an ideal cell delivers its
        last joule, then cuts off), so ``remaining_j`` never goes
        negative.
        """
        if energy_j < 0:
            raise EnergyModelError(
                f"drained energy must be non-negative, got {energy_j}"
            )
        self._remaining_j = max(0.0, self._remaining_j - energy_j)
        return not self.depleted

    def reset(self) -> None:
        """Restore the cell to a full charge."""
        self._remaining_j = self.model.usable_energy_j

    def __repr__(self) -> str:
        return (
            f"BatteryState({self.model!r}, "
            f"soc={self.state_of_charge:.3f})"
        )


@dataclass(frozen=True)
class LifetimeEstimate:
    """Result of a lifetime computation."""

    energy_per_second_uj: float
    average_power_uw: float
    lifetime_days: float


def estimate_lifetime(
    emt: EMT,
    voltage: float,
    battery: BatteryModel,
    workload: Workload,
    tech: Technology = TECH_32NM_LP,
    acquisition_window_s: float = 8.0,
    platform_power_uw: float = 4.0,
) -> LifetimeEstimate:
    """Estimate node lifetime for one EMT/voltage configuration.

    Args:
        emt: the protection scheme in effect.
        voltage: data-memory supply voltage.
        battery: the energy source.
        workload: memory activity of processing one acquisition window
            (e.g. from :func:`repro.exp.energy_table.measure_workload`).
        tech: technology node.
        acquisition_window_s: seconds of signal the workload corresponds
            to (sets the duty cycle).
        platform_power_uw: continuous EMT-independent platform draw
            (duty-cycled cores + AFE + radio of an ULP monitoring node),
            held constant across the configurations being compared.

    Returns:
        A :class:`LifetimeEstimate`; lifetimes are *comparative* figures
        (the platform term is a fixed model), which is how the paper's
        battery argument is used.
    """
    if acquisition_window_s <= 0:
        raise EnergyModelError(
            f"acquisition window must be positive, got {acquisition_window_s}"
        )
    if platform_power_uw < 0:
        raise EnergyModelError(
            f"platform power must be non-negative, got {platform_power_uw}"
        )

    model = EnergySystemModel(emt, tech=tech)
    memory_pj = model.evaluate(voltage, workload).total_pj
    memory_power_uw = memory_pj * 1e-12 / acquisition_window_s * 1e6
    total_power_uw = memory_power_uw + platform_power_uw

    lifetime_s = battery.usable_energy_j / (total_power_uw * 1e-6)
    return LifetimeEstimate(
        energy_per_second_uj=total_power_uw,
        average_power_uw=total_power_uw,
        lifetime_days=lifetime_s / 86_400.0,
    )
