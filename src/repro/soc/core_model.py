"""Core model: turning application activity into per-core access streams.

The paper runs each application on the VirtualSOC platform; here the
equivalent is replaying the address stream an application pushed through
the :class:`~repro.mem.fabric.MemoryFabric` (with ``record_trace=True``)
on the simulated cores.  Batched buffer transfers are expanded into word
accesses and, for multi-core configurations, dealt out in contiguous
stripes — the block-partitioned parallelisation such kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError
from ..mem.fabric import MemoryFabric
from .config import SoCConfig
from .trace import MemoryAccess

__all__ = ["CoreTask", "tasks_from_fabric"]


@dataclass
class CoreTask:
    """The access stream one core replays."""

    core_id: int
    accesses: list[MemoryAccess] = field(default_factory=list)

    @property
    def n_accesses(self) -> int:
        """Total accesses in the stream."""
        return len(self.accesses)


def tasks_from_fabric(
    fabric: MemoryFabric,
    config: SoCConfig,
) -> list[CoreTask]:
    """Expand a fabric's recorded trace into per-core access streams.

    Args:
        fabric: a fabric constructed with ``record_trace=True`` that an
            application has already run against.
        config: platform configuration (core count, compute gaps).

    Returns:
        One :class:`CoreTask` per configured core.  Each batched
        :class:`~repro.mem.fabric.AccessEvent` is split into
        ``n_cores`` contiguous stripes, so cores work on disjoint parts
        of every buffer in parallel.
    """
    if fabric.trace is None:
        raise SimulationError(
            "fabric has no trace; construct it with record_trace=True"
        )
    tasks = [CoreTask(core_id=i) for i in range(config.n_cores)]
    gap = config.compute_gap_cycles
    for event in fabric.trace:
        stripe = max(1, event.length // config.n_cores)
        for core_id in range(config.n_cores):
            start = event.base + core_id * stripe
            if core_id == config.n_cores - 1:
                end = event.base + event.length
            else:
                end = min(start + stripe, event.base + event.length)
            for address in range(start, end):
                tasks[core_id].accesses.append(
                    MemoryAccess(
                        address=address,
                        is_write=event.is_write,
                        gap_cycles=gap,
                    )
                )
    return tasks
