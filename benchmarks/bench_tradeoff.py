"""E4 — regenerate the Section VI-C quality/energy trade-off.

Two complementary reproductions:

* the paper's *illustrative* operating points — no protection @ 0.85 V,
  DREAM @ 0.65 V, ECC @ 0.55 V — evaluated on our energy model against
  the published 12.7 % / 30.6 % / 39.5 % savings;
* the *data-derived* policy: a fine-grained DWT Fig 4 sweep determines
  each EMT's lowest safe voltage for a given tolerance, from which the
  hybrid voltage-range policy is stitched.
"""

from __future__ import annotations

import pytest

from repro.exp.fig4 import run_fig4
from repro.exp.report import format_paper_example, format_tradeoff
from repro.exp.tradeoff import paper_example_savings, run_tradeoff


def test_paper_example_points(benchmark, report_sink):
    points = benchmark.pedantic(paper_example_savings, rounds=1, iterations=1)
    report_sink.add("tradeoff_paper_points", format_paper_example(points))

    by_name = {p.emt_name: p.saving_vs_nominal * 100 for p in points}
    # Published: 12.7 / 30.6 / 39.5 — require the ordering and rough
    # magnitudes (the substrate is an analytical model, not their chip).
    assert by_name["none"] < by_name["dream"] < by_name["secded"]
    assert by_name["none"] == pytest.approx(12.7, abs=5.0)
    assert by_name["dream"] == pytest.approx(30.6, abs=5.0)
    assert by_name["secded"] == pytest.approx(39.5, abs=6.0)


def test_data_derived_policy(benchmark, report_sink, bench_config):
    """Derive the policy at two tolerances.

    At a literal -1 dB (the paper's example) our stricter 96 dB ceiling
    makes the requirement extremely tight; a -5 dB tolerance exposes the
    paper's three-range structure (none / DREAM / ECC tiles).  Both are
    reported; EXPERIMENTS.md discusses the calibration difference.
    """

    def derive():
        fig4 = run_fig4(app_names=("dwt",), config=bench_config)
        return (
            run_tradeoff(fig4, app_name="dwt", tolerance_db=1.0),
            run_tradeoff(fig4, app_name="dwt", tolerance_db=5.0),
            fig4,
        )

    (strict, relaxed, fig4) = benchmark.pedantic(derive, rounds=1, iterations=1)
    report_sink.add(
        "tradeoff_vi_c",
        format_tradeoff(strict) + "\n\n" + format_tradeoff(relaxed),
    )

    for result in (strict, relaxed):
        floors = {p.emt_name: p.v_min_safe for p in result.operating_points}
        # Protection strength must extend the safe range downward (or tie).
        if "dream" in floors and "none" in floors:
            assert floors["dream"] <= floors["none"]
        if "secded" in floors and "dream" in floors:
            assert floors["secded"] <= floors["dream"]
        # The policy tiles contiguously from the nominal voltage.
        if result.policy:
            assert result.policy[0].v_max == pytest.approx(max(fig4.voltages))
