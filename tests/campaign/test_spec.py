"""Tests for campaign spec expansion, filtering, and content hashing."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, canonical_json, content_hash
from repro.errors import CampaignError


def small_spec(**overrides) -> CampaignSpec:
    kwargs = dict(
        name="test",
        kind="energy",
        axes={"emt": ("none", "dream"), "voltage": (0.9, 0.65, 0.5)},
        fixed={"workload": {"n_reads": 1, "n_writes": 1, "duration_s": 1e-3}},
    )
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_rejects_empty_name_and_kind(self):
        with pytest.raises(CampaignError):
            small_spec(name="")
        with pytest.raises(CampaignError):
            small_spec(name="a/b")
        with pytest.raises(CampaignError):
            small_spec(kind="")

    def test_rejects_empty_axes(self):
        with pytest.raises(CampaignError):
            small_spec(axes={})
        with pytest.raises(CampaignError):
            small_spec(axes={"emt": ()})

    def test_rejects_axis_fixed_collision(self):
        with pytest.raises(CampaignError):
            small_spec(fixed={"emt": "none"})

    def test_rejects_unserialisable_parameter(self):
        spec = small_spec(fixed={"callback": object()})
        with pytest.raises(CampaignError):
            spec.expand()[0].content_hash()


class TestExpansion:
    def test_cartesian_product_in_axis_order(self):
        spec = small_spec()
        points = spec.expand()
        assert spec.grid_size == 6
        assert len(points) == 6
        assert [p.coords for p in points[:3]] == [
            {"emt": "none", "voltage": 0.9},
            {"emt": "none", "voltage": 0.65},
            {"emt": "none", "voltage": 0.5},
        ]
        assert points[3].coords == {"emt": "dream", "voltage": 0.9}

    def test_params_merge_fixed_and_coords(self):
        point = small_spec().expand()[0]
        assert point.params["emt"] == "none"
        assert point.params["workload"]["n_reads"] == 1

    def test_filters_drop_combinations(self):
        spec = small_spec(
            filters=(lambda c: c["emt"] == "dream" or c["voltage"] > 0.6,),
        )
        points = spec.expand()
        assert len(points) == 5
        assert {"emt": "none", "voltage": 0.5} not in [p.coords for p in points]

    def test_all_filters_must_pass(self):
        spec = small_spec(
            filters=(
                lambda c: c["emt"] == "none",
                lambda c: c["voltage"] == 0.9,
            ),
        )
        assert [p.coords for p in spec.expand()] == [
            {"emt": "none", "voltage": 0.9}
        ]


class TestContentHash:
    def test_same_params_same_hash(self):
        a, b = small_spec().expand()[0], small_spec().expand()[0]
        assert a.content_hash() == b.content_hash()

    def test_axis_vs_fixed_does_not_matter(self):
        """Reshaping a spec must not invalidate stored results."""
        wide = small_spec(axes={"emt": ("none",), "voltage": (0.9,)})
        narrow = small_spec(
            axes={"voltage": (0.9,)},
            fixed={
                "emt": "none",
                "workload": {"n_reads": 1, "n_writes": 1, "duration_s": 1e-3},
            },
        )
        assert (
            wide.expand()[0].content_hash() == narrow.expand()[0].content_hash()
        )

    def test_different_params_different_hash(self):
        points = small_spec().expand()
        hashes = {p.content_hash() for p in points}
        assert len(hashes) == len(points)

    def test_kind_is_part_of_identity(self):
        a = small_spec().expand()[0]
        b = small_spec(kind="montecarlo").expand()[0]
        assert a.content_hash() != b.content_hash()

    def test_canonical_json_normalises_containers_and_key_order(self):
        assert canonical_json({"b": (1, 2), "a": 1}) == '{"a":1,"b":[1,2]}'
        assert content_hash({"a": 1, "b": [1, 2]}) == content_hash(
            {"b": (1, 2), "a": 1}
        )

    def test_numpy_values_hash_like_python_values(self):
        """Axes built with np.linspace must hash (and store) identically
        to hand-written literals."""
        import numpy as np

        assert canonical_json(np.float64(0.65)) == canonical_json(0.65)
        assert canonical_json(np.int64(7)) == canonical_json(7)
        assert canonical_json(np.bool_(True)) == canonical_json(True)
        assert canonical_json(np.array([0.5, 0.9])) == canonical_json(
            [0.5, 0.9]
        )
        assert canonical_json(np.array(0.65)) == canonical_json(0.65)
        numeric = small_spec(
            axes={"emt": ("none",), "voltage": tuple(np.linspace(0.9, 0.9, 1))}
        )
        literal = small_spec(axes={"emt": ("none",), "voltage": (0.9,)})
        assert (
            numeric.expand()[0].content_hash()
            == literal.expand()[0].content_hash()
        )
