"""Tracer correctness: span trees, metric folding, worker propagation.

The load-bearing property is the last test: a 4-worker pool whose
children never call ``enable()`` still lands every span in the owner's
sink, parented onto the span the owner exported — that is what makes
``repro report`` draw one tree across the process boundary.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import load_trace, metric_totals, span_totals


def _events_by_kind(path):
    events = load_trace(path)
    return {
        kind: [e for e in events if e["event"] == kind]
        for kind in ("run", "span", "metric")
    }


def test_disabled_probes_are_no_ops(tmp_path):
    assert not obs.enabled()
    span = obs.span("anything", detail=1)
    assert span.span_id is None
    with span:
        obs.counter("ignored")
        obs.gauge("ignored", 1.0)
        obs.observe("ignored", 1.0)
    assert span.set(more=2) is span
    assert obs.current_span_id() is None
    assert obs.trace_path() is None
    assert list(tmp_path.iterdir()) == []


def test_nested_spans_parent_correctly(tmp_path):
    sink = tmp_path / "t.jsonl"
    obs.enable(sink, run_id="nesting", name="nesting")
    with obs.span("outer") as outer:
        with obs.span("inner") as inner:
            assert inner.parent_id == outer.span_id
            assert obs.current_span_id() == inner.span_id
        with obs.span("sibling") as sibling:
            assert sibling.parent_id == outer.span_id
    obs.disable()

    by_kind = _events_by_kind(sink)
    assert [e["name"] for e in by_kind["run"]] == ["nesting"]
    spans = {e["name"]: e for e in by_kind["span"]}
    assert spans["outer"]["parent"] is None
    assert spans["inner"]["parent"] == spans["outer"]["span"]
    assert spans["sibling"]["parent"] == spans["outer"]["span"]
    # Spans close inner-first, so the file orders children before
    # parents — the report's path resolver does not rely on order.
    totals = span_totals(load_trace(sink))
    assert totals[("outer", "inner")]["count"] == 1


def test_exception_marks_span_failed(tmp_path):
    sink = tmp_path / "t.jsonl"
    obs.enable(sink, run_id="failing")
    with pytest.raises(ValueError):
        with obs.span("doomed"):
            raise ValueError("boom")
    obs.disable()
    (span,) = _events_by_kind(sink)["span"]
    assert span["status"] == "failed"
    assert span["error"] == "ValueError: boom"


def test_metrics_fold_per_flush(tmp_path):
    sink = tmp_path / "t.jsonl"
    obs.enable(sink, run_id="metrics")
    with obs.span("work"):
        for _ in range(1000):
            obs.counter("ticks")
        obs.counter("bytes", 512.0)
        obs.observe("wait_s", 0.2)
        obs.observe("wait_s", 0.4)
        obs.gauge("rate", 10.0)
        obs.gauge("rate", 20.0)
    obs.disable()

    folded = metric_totals(load_trace(sink))
    assert folded["ticks"] == {"kind": "counter", "value": 1000.0}
    assert folded["bytes"]["value"] == 512.0
    assert folded["wait_s"]["value"] == {
        "count": 2, "sum": 0.6000000000000001, "min": 0.2, "max": 0.4,
    }
    # Gauges write through individually; the fold keeps the last write.
    assert folded["rate"] == {"kind": "gauge", "value": 20.0}
    # 1000 counter increments fold to one event per flush, not 1000.
    metric_events = _events_by_kind(sink)["metric"]
    assert len([e for e in metric_events if e["name"] == "ticks"]) == 1


def test_enable_guards(tmp_path):
    with pytest.raises(ObsError, match="non-empty"):
        obs.enable(tmp_path / "t.jsonl", run_id="")
    obs.enable(tmp_path / "t.jsonl", run_id="first")
    with pytest.raises(ObsError, match="already enabled"):
        obs.enable(tmp_path / "other.jsonl", run_id="second")
    obs.disable()


def test_start_run_is_gated_on_configuration(tmp_path):
    # Unconfigured: a library start_run must stay a no-op.
    assert obs.start_run("some-run") is False
    assert not obs.enabled()

    obs.set_trace_dir(tmp_path)
    assert obs.start_run("keyed-run", name="exp") is True
    assert obs.trace_path() == tmp_path / "keyed-run.jsonl"
    assert obs.trace_run_id() == "keyed-run"
    # A nested start_run joins the active trace instead of replacing it.
    assert obs.start_run("inner-run") is False
    assert obs.trace_run_id() == "keyed-run"
    obs.disable()
    obs.set_trace_dir(None)


def test_rerun_truncates_stale_trace(tmp_path):
    sink = tmp_path / "t.jsonl"
    for _ in range(2):
        obs.enable(sink, run_id="rerun")
        with obs.span("only"):
            pass
        obs.disable()
    assert len(_events_by_kind(sink)["span"]) == 1


def _pool_worker(index: int) -> tuple[int, str | None]:
    """Top-level for picklability; workers never call enable()."""
    with obs.span("unit", index=index) as span:
        obs.counter("units.done")
        return os.getpid(), span.parent_id


def test_four_worker_pool_spans_parent_onto_owner(tmp_path):
    sink = tmp_path / "pool.jsonl"
    obs.enable(sink, run_id="pool-run", name="pool")
    with obs.span("owner") as owner:
        with obs.worker_parent(owner.span_id):
            pool = multiprocessing.Pool(processes=4)
        with pool:
            results = pool.map(_pool_worker, range(12))
    obs.disable()

    # Every worker saw the exported parent id at span-open time.
    assert {parent for _pid, parent in results} == {owner.span_id}

    by_kind = _events_by_kind(sink)
    units = [e for e in by_kind["span"] if e["name"] == "unit"]
    assert len(units) == 12
    assert {e["parent"] for e in units} == {owner.span_id}
    assert sorted(e["attrs"]["index"] for e in units) == list(range(12))
    # Span ids embed the pid, so cross-process ids can never collide.
    assert len({e["span"] for e in by_kind["span"]}) == 13
    worker_pids = {e["pid"] for e in units}
    assert worker_pids == {pid for pid, _parent in results}
    assert os.getpid() not in worker_pids

    # Worker counters merged across processes at read time.
    folded = metric_totals(load_trace(sink))
    assert folded["units.done"]["value"] == 12.0
