"""The ``service`` execution backend and Session integration."""

from __future__ import annotations

import pytest

from repro.api.session import (
    BACKENDS,
    Session,
    backend_names,
    make_backend,
)
from repro.errors import ServiceError
from repro.service import ServiceBackend
from repro.service.backend import _store_identity

from test_daemon import canon, tiny_fig2


class TestRegistration:
    def test_service_backend_is_registered(self):
        assert "service" in backend_names()
        backend = make_backend("service", 3)
        assert isinstance(backend, ServiceBackend)
        assert backend.workers == 3

    def test_factory_is_lazy(self):
        # The BACKENDS entry must not import repro.service at session
        # import time (service imports the session module back).
        factory = BACKENDS["service"]
        assert callable(factory)
        assert isinstance(factory(1), ServiceBackend)


class TestStoreIdentity:
    def test_plain_and_sharded_stores_resolve_alike(self, tmp_path):
        from repro.campaign.store import ResultStore, ShardedResultStore

        plain = ResultStore(tmp_path / "camp.jsonl")
        assert _store_identity(plain) == (str(tmp_path), "camp")
        sharded = ShardedResultStore.create(tmp_path / "camp.shards", 2)
        assert _store_identity(sharded) == (str(tmp_path), "camp")


class TestSessionRoundTrip:
    def test_session_run_routes_through_the_daemon(
        self, run_daemon, service_paths, tmp_path
    ):
        experiment = tiny_fig2(
            name="svc-via-session", store="svc-via-session",
            backend="service",
        )
        with run_daemon() as (service, _client):
            handle = Session(store_dir=service_paths["store"]).run(
                experiment
            )
            assert handle.ok
            assert handle.n_executed == 32
            assert handle.n_cached == 0

            # The daemon executed it as one campaign job.
            jobs = service.queue.jobs(kind="campaign")
            assert len(jobs) == 1
            assert jobs[0].status == "done"
            assert jobs[0].job_id.startswith("svc-")

            # Bit-identical to the same experiment run inline.
            inline = Session(store_dir=tmp_path / "inline").run(
                tiny_fig2(name="svc-via-session", store="svc-via-session")
            )
            assert canon(handle.records) == canon(inline.records)

    def test_second_session_run_resumes_from_the_store(
        self, run_daemon, service_paths
    ):
        experiment = tiny_fig2(
            name="svc-resume", store="svc-resume", backend="service",
        )
        with run_daemon() as (_service, client):
            session = Session(store_dir=service_paths["store"])
            first = session.run(experiment)
            assert first.n_executed == 32
            # The job is terminal, so the resubmission is requeued and
            # re-executed — but every point is already stored: the
            # service run resolves fully from cache.
            second = session.run(experiment)
            assert second.n_executed == 0
            assert second.n_cached == 32
            assert canon(second.records) == canon(first.records)

    def test_without_a_daemon_the_backend_says_how_to_start_one(self):
        experiment = tiny_fig2(name="svc-nodaemon", backend="service")
        with pytest.raises(ServiceError, match="repro serve"):
            Session().run(experiment)


class TestBackendErrors:
    def test_point_failures_surface_in_the_result(
        self, run_daemon, service_paths
    ):
        from repro.campaign.spec import CampaignSpec

        spec = CampaignSpec(
            name="svc-partial", kind="energy",
            axes={"emt": ("none", "bogus"), "voltage": (0.9,)},
            fixed={"workload": {
                "n_reads": 1_000, "n_writes": 1_000, "duration_s": 1e-3,
            }},
        )
        with run_daemon() as (_service, client):
            backend = ServiceBackend(root=service_paths["root"])
            result = backend.execute(spec)
            assert len(result.records) == 2
            assert result.n_failed == 1
            # The journal agrees: the job itself is marked failed.
            job = client.jobs(kind="campaign")[0]
            assert job.status == "failed"
            assert "failed" in (job.error or "")
