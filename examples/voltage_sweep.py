"""Voltage sweep — one application through the Fig 4 methodology.

Sweeps the data-memory supply from 0.90 V to 0.50 V for the DWT
application under all three EMTs, printing quality (mean SNR over
Monte-Carlo fault maps) next to the energy of each configuration — the
raw material of the paper's Section VI trade-off discussion.

Run:  python examples/voltage_sweep.py [n_runs]
"""

from __future__ import annotations

import sys

from repro.emt import make_emt
from repro.energy import EnergySystemModel, TECH_32NM_LP
from repro.exp.common import ExperimentConfig
from repro.exp.energy_table import measure_workload
from repro.exp.fig4 import run_fig4


def main(n_runs: int = 8) -> None:
    config = ExperimentConfig(
        records=("100", "106"), duration_s=8.0, n_runs=n_runs
    )
    print(f"sweeping 0.50-0.90 V, {n_runs} Monte-Carlo runs per point ...\n")
    fig4 = run_fig4(app_names=("dwt",), config=config)
    workload = measure_workload("dwt", duration_s=8.0)

    models = {
        name: EnergySystemModel(make_emt(name)) for name in
        ("none", "dream", "secded")
    }
    nominal = models["none"].evaluate(0.90, workload).total_pj

    header = f"{'V':>5s}  {'BER':>9s}"
    for name in models:
        header += f"  {name + ' SNR':>11s} {name + ' E':>9s}"
    print(header + "   (E = energy normalised to 0.9 V unprotected)")
    for voltage in fig4.voltages:
        row = f"{voltage:5.2f}  {TECH_32NM_LP.ber(voltage):9.1e}"
        point = fig4.points["dwt"][voltage]
        for name, model in models.items():
            energy = model.evaluate(voltage, workload).total_pj / nominal
            row += f"  {point.snr_mean_db[name]:9.1f}dB {energy:8.2f}x"
        print(row)

    print("\nReading the table (the paper's Section VI story):")
    print("  * >= 0.80 V: everything is error-free; protection only costs.")
    print("  * 0.60-0.70 V: SEC/DED corrects every single error; DREAM")
    print("    catches MSB faults only, but at ~21 points less overhead.")
    print("  * < 0.55 V: multi-bit errors defeat SEC/DED (detect-only),")
    print("    while DREAM keeps reconstructing the significant bits.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
