"""Common protocol of the biomedical applications.

An application is a pure function from 16-bit samples to an integer
output buffer, *except* that every buffer it materialises along the way
round-trips through a :class:`~repro.mem.fabric.MemoryFabric` — the
voltage-scaled data memory.  Running the same app against a defect-free
fabric yields the "theoretical" output of the paper's Formula 1; running
it against a faulty fabric yields the "experimental" output, and
:meth:`BiomedicalApp.output_snr` compares the two.

Applications whose natural quality reference is not their own clean
output (compressed sensing measures quality on the *reconstructed*
signal) override :meth:`output_snr`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..emt.base import NoProtection
from ..errors import SignalError
from ..fixedpoint import Q15
from ..mem.fabric import MemoryFabric
from ..signals.metrics import SNR_CAP_DB, snr_db, snr_db_batch

__all__ = ["BiomedicalApp", "clean_fabric"]


def clean_fabric() -> MemoryFabric:
    """A defect-free, unprotected fabric for theoretical runs."""
    return MemoryFabric(NoProtection())


class BiomedicalApp(ABC):
    """Base class of the paper's case-study applications.

    Subclasses set :attr:`name` (registry key) and implement :meth:`run`.
    They must be *deterministic* given their constructor arguments: the
    experiment harness relies on a clean run and a faulty run computing
    the same thing apart from memory corruption.
    """

    #: Registry key; overridden by subclasses.
    name: str = "abstract"

    #: Human-readable summary for reports.
    description: str = ""

    #: Whether :meth:`run` is written shape-agnostically — every
    #: intermediate treats the word index as the *last* axis, so handing
    #: it a trial-batched fabric processes all ``(n_trials, n_words)``
    #: rows in single numpy passes.  Applications with data-dependent
    #: control flow (delineation, classifier) leave this False and fall
    #: back to a per-trial loop in :meth:`run_batch`.
    supports_batch: bool = False

    def __init__(self) -> None:
        self._reference_cache: dict[bytes, np.ndarray] = {}

    # -- core ----------------------------------------------------------------

    @abstractmethod
    def run(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        """Process ``samples`` with all buffers living in ``fabric``.

        Args:
            samples: signed 16-bit ECG samples (raw integers).
            fabric: the (possibly faulty) data-memory fabric.

        Returns:
            The application's output buffer as signed ``int64`` values.
        """

    def run_batch(self, samples: np.ndarray, fabric: MemoryFabric) -> np.ndarray:
        """Process one sample stream under every trial of a batched fabric.

        The trial-batched hot path of the fault-injection pipeline: the
        fabric stacks ``n_trials`` independent fault maps, and the
        result row ``t`` is bit-identical to a sequential
        :meth:`run` against trial ``t``'s single fault map
        (property-tested across all EMTs).

        Returns:
            ``(n_trials, output_length)`` signed ``int64`` array.
        """
        if not fabric.is_batched:
            out = self.run(samples, fabric)
            return out[None, :]
        if self.supports_batch:
            return self.run(samples, fabric)
        # Sequential fallback for apps with data-dependent control flow:
        # one fresh single-trial fabric per row, exactly the historical
        # Monte-Carlo loop.
        return np.stack(
            [
                self.run(samples, fabric.trial(t))
                for t in range(fabric.n_trials)
            ]
        )

    @staticmethod
    def _window_stack(
        arr: np.ndarray, window: int, fabric: MemoryFabric
    ) -> tuple[np.ndarray | None, np.ndarray]:
        """Split samples into a stackable block of full windows + a tail.

        When the fabric supports window stacking (batched, untraced),
        returns ``(full, tail)`` where ``full`` is a ``(1, W, window)``
        array of the leading complete windows (``None`` when there are
        none) ready for a single stacked roundtrip, and ``tail`` is the
        remaining samples — processed through the classic path so
        partial windows keep their historical handling.
        """
        if not getattr(fabric, "window_stacking", False):
            return None, arr
        n_full = arr.shape[-1] // window
        if n_full < 1:
            return None, arr
        full = arr[: n_full * window].reshape(1, n_full, window)
        return full, arr[n_full * window :]

    def _run_in_windows(
        self,
        arr: np.ndarray,
        window: int,
        fabric: MemoryFabric,
        run_window,
        pad: bool = False,
        trim: bool = False,
    ) -> np.ndarray:
        """Drive ``run_window`` over ``arr`` in fixed windows.

        The shared chunking engine of the batchable applications: on a
        window-stacking fabric every complete window rides one stacked
        call, and the trailing partial window takes the historical
        per-window path — zero-padded first when ``pad`` is set, its
        padding trimmed from the output when ``trim`` is set.  Output
        windows concatenate along the last axis in window order,
        exactly as the historical loop emitted them.
        """
        full, tail = self._window_stack(arr, window, fabric)
        outputs = []
        if full is not None:
            stacked = run_window(full)
            outputs.append(stacked.reshape(stacked.shape[0], -1))
        for start in range(0, tail.shape[-1], window):
            chunk = tail[..., start : start + window]
            valid = chunk.shape[-1]
            if pad and valid < window:
                padded = np.pad(chunk, (0, window - valid))
                out = run_window(padded)
                outputs.append(out[..., :valid] if trim else out)
            else:
                outputs.append(run_window(chunk))
        if len(outputs) == 1:
            return outputs[0]
        return np.concatenate(outputs, axis=-1)

    def _check_samples(self, samples: np.ndarray) -> np.ndarray:
        arr = np.asarray(samples, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise SignalError("samples must be a non-empty 1-D array")
        if int(arr.min()) < Q15.min_int or int(arr.max()) > Q15.max_int:
            raise SignalError("samples must be 16-bit signed values")
        return arr

    # -- quality evaluation ----------------------------------------------------

    def reference_output(self, samples: np.ndarray) -> np.ndarray:
        """The error-free ("theoretical") output for ``samples``, cached."""
        arr = self._check_samples(samples)
        key = arr.tobytes()
        if key not in self._reference_cache:
            self._reference_cache[key] = self.run(arr, clean_fabric())
        return self._reference_cache[key]

    def output_snr(
        self,
        samples: np.ndarray,
        corrupted_output: np.ndarray,
        cap_db: float = SNR_CAP_DB,
    ) -> float:
        """Formula 1 SNR of a corrupted output against the clean one."""
        reference = self.reference_output(samples)
        return snr_db(reference, corrupted_output, cap_db=cap_db)

    def output_snr_batch(
        self,
        samples: np.ndarray,
        corrupted_outputs: np.ndarray,
        cap_db: float = SNR_CAP_DB,
    ) -> np.ndarray:
        """Per-trial Formula 1 SNR of a :meth:`run_batch` result.

        Row ``t`` equals ``output_snr(samples, corrupted_outputs[t])``
        exactly; the reduction runs once over the whole
        ``(n_trials, k)`` stack instead of once per trial.
        """
        reference = self.reference_output(samples)
        return snr_db_batch(reference, corrupted_outputs, cap_db=cap_db)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
