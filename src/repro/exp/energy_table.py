"""Experiment E3 — the Section VI-B energy and area analysis.

Reproduces the paper's quantified claims:

* "the system consumes approximately 55 % more energy for each voltage"
  with ECC SEC/DED versus no protection;
* "With DREAM, the overall energy overhead is only 34 %, reducing by
  21 % the overhead of ECC";
* "ECC requires 28 % of area overhead for the encoder and 120 % for the
  decoder, compared to those of DREAM".

The workload is a representative application run: the fabric's access
counters from executing an app on a record give the read/write volumes,
and the active-processing time comes from the MPSoC cycle model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..apps.base import clean_fabric
from ..apps.registry import make_app
from ..emt import make_emt
from ..energy.accounting import EnergySystemModel, Workload
from ..energy.technology import PAPER_VOLTAGE_GRID, TECH_32NM_LP, Technology
from ..errors import ExperimentError
from ..signals.dataset import load_record
from ..soc.config import SoCConfig

__all__ = ["EnergyAnalysis", "measure_workload", "run_energy_analysis"]


@dataclass
class EnergyAnalysis:
    """Energy overheads and area ratios across the voltage sweep."""

    voltages: list[float] = field(default_factory=list)
    #: ``total_pj[emt][voltage]`` — workload energy at each grid point.
    total_pj: dict[str, dict[float, float]] = field(default_factory=dict)
    #: ``overhead[emt][voltage]`` — fractional overhead vs no protection.
    overhead: dict[str, dict[float, float]] = field(default_factory=dict)
    #: area ratios vs DREAM's codec blocks (the paper's 1.28 / 2.20).
    encoder_area_ratio: float = 0.0
    decoder_area_ratio: float = 0.0
    workload: Workload | None = None

    def mean_overhead(self, emt_name: str) -> float:
        """Sweep-averaged overhead for one technique."""
        values = self.overhead.get(emt_name)
        if not values:
            raise ExperimentError(f"no overhead data for {emt_name!r}")
        return float(np.mean(list(values.values())))

    def dream_saving_vs_ecc(self) -> float:
        """Sweep-averaged energy saving of DREAM relative to ECC.

        The paper's abstract phrases the 21 % as overhead points (55 % to
        34 %); :meth:`overhead_reduction_points` gives that form.
        """
        dream = np.array(list(self.total_pj["dream"].values()))
        ecc = np.array(list(self.total_pj["secded"].values()))
        return float(np.mean(1.0 - dream / ecc))

    def overhead_reduction_points(self) -> float:
        """ECC overhead minus DREAM overhead, in fractional points."""
        return self.mean_overhead("secded") - self.mean_overhead("dream")


def measure_workload(
    app_name: str = "dwt",
    record: str = "100",
    duration_s: float = 10.0,
    soc: SoCConfig | None = None,
) -> Workload:
    """Derive the accounting workload from a real application run.

    Runs the application against a clean fabric, reads the access
    counters, and converts the access volume to active processing time
    with the SoC cycle model (accesses dominate the inner loops of these
    kernels, so cycles-per-access approximates the activity window).
    """
    soc = soc or SoCConfig()
    app = make_app(app_name)
    samples = load_record(record, duration_s=duration_s).samples
    fabric = clean_fabric()
    app.run(samples, fabric)
    n_reads = fabric.stats.data_reads
    n_writes = fabric.stats.data_writes
    cycles = (n_reads + n_writes) * soc.cycles_per_access
    return Workload(
        n_reads=n_reads,
        n_writes=n_writes,
        duration_s=cycles / soc.clock_hz,
    )


def run_energy_analysis(
    emt_names: tuple[str, ...] = ("none", "dream", "secded"),
    voltages: tuple[float, ...] = PAPER_VOLTAGE_GRID,
    workload: Workload | None = None,
    tech: Technology = TECH_32NM_LP,
    mask_memory_scaled: bool = True,
) -> EnergyAnalysis:
    """Evaluate the VI-B overhead/area comparison.

    Args:
        emt_names: techniques to compare; must include ``"none"`` (the
            baseline) and, for the area ratios, ``"dream"``/``"secded"``.
        voltages: supply grid.
        workload: memory activity; defaults to a measured DWT run.
        tech: technology node.
        mask_memory_scaled: design-decision D3 knob (see
            :mod:`repro.energy.accounting`).
    """
    if "none" not in emt_names:
        raise ExperimentError("the baseline 'none' must be included")
    workload = workload or measure_workload()

    models = {
        name: EnergySystemModel(
            make_emt(name), tech=tech, mask_memory_scaled=mask_memory_scaled
        )
        for name in emt_names
    }
    analysis = EnergyAnalysis(voltages=sorted(voltages), workload=workload)
    for name in emt_names:
        analysis.total_pj[name] = {}
        analysis.overhead[name] = {}
    for voltage in analysis.voltages:
        baseline = models["none"].evaluate(voltage, workload)
        for name, model in models.items():
            breakdown = model.evaluate(voltage, workload)
            analysis.total_pj[name][voltage] = breakdown.total_pj
            analysis.overhead[name][voltage] = breakdown.overhead_vs(baseline)

    if "dream" in models and "secded" in models:
        dream, ecc = models["dream"], models["secded"]
        analysis.encoder_area_ratio = (
            ecc.encoder_area_um2() / dream.encoder_area_um2()
        )
        analysis.decoder_area_ratio = (
            ecc.decoder_area_um2() / dream.decoder_area_um2()
        )
    return analysis
