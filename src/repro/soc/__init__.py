"""VirtualSOC-lite: the MPSoC platform substrate (paper Section V).

The paper models the INYU wearable device by extending VirtualSOC, a
cycle-accurate multi-processor simulator: "up to 16 ARM V6 cores with
local and shared memories, accessed at a clock frequency of 200 MHz", the
shared 32 kB data memory being "divided into 16 banks accessible by the
cores through a crossbar".

This package provides the cycle-approximate equivalent the reproduction
needs: cores replay memory-access traces (recorded by the
:class:`~repro.mem.fabric.MemoryFabric` or synthesised), a word-interleaved
crossbar arbitrates per-bank with round-robin priority, and the simulator
reports cycles, stalls, bank conflicts and utilisation — the performance
and activity numbers behind the energy accounting.
"""

from .config import SoCConfig
from .core_model import CoreTask, tasks_from_fabric
from .crossbar import Crossbar
from .simulator import SimulationReport, SoCSimulator
from .trace import MemoryAccess

__all__ = [
    "SoCConfig",
    "CoreTask",
    "tasks_from_fabric",
    "Crossbar",
    "SimulationReport",
    "SoCSimulator",
    "MemoryAccess",
]
